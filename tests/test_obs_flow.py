"""Integration tests: observability wired through the CAD flow.

The load-bearing contract: observation never changes results.  Traced
and untraced runs must produce bit-identical placements and routes, a
traced ``run_design`` writes one journal, and a traced parallel matrix
merges every worker's events into one coherent journal.
"""

import json


from repro.flow.flow import run_design
from repro.flow.options import FlowOptions
from repro.flow.parallel import run_cells
from repro.obs import export, journal

from conftest import make_ripple_design

FAST = FlowOptions(
    place_effort=0.05, place_iterations=1, pack_iterations=1, seed=11
)

MATRIX_CELLS = [
    ("alu", "granular"), ("alu", "lut"),
    ("netswitch", "granular"), ("netswitch", "lut"),
]


class TestObservationIsInert:
    def test_traced_run_bit_identical_to_untraced(self, tmp_path, monkeypatch):
        """Placements and routes must not move when tracing is on."""
        from dataclasses import replace

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=5, name="obsidentical")
        options = replace(FAST, use_cache=False)  # force full recompute
        plain = run_design(src.copy(), "granular", options)
        traced = run_design(
            src.copy(), "granular", replace(options, observe=True)
        )
        # Bit-identical placement: every instance on the same site.
        assert traced.physical.placement.sites == plain.physical.placement.sites
        # Bit-identical routing: same tree edge-for-edge on both flows.
        for flow in ("flow_a", "flow_b"):
            a = getattr(plain, flow).routing
            b = getattr(traced, flow).routing
            assert a.lengths() == b.lengths()
            assert {n: r.edges for n, r in a.nets.items()} == \
                   {n: r.edges for n, r in b.nets.items()}
        assert traced.flow_a.die_area == plain.flow_a.die_area
        assert traced.flow_b.average_slack == plain.flow_b.average_slack
        assert plain.journal_path is None
        assert traced.journal_path is not None

    def test_env_var_enables_tracing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE", "1")
        src = make_ripple_design(width=4, name="obsenv")
        run = run_design(src.copy(), "granular", FAST)
        assert run.journal_path is not None


class TestRunDesignJournal:
    def test_traced_run_writes_complete_journal(self, tmp_path, monkeypatch):
        from dataclasses import replace

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=5, name="obsjournal")
        run = run_design(src.copy(), "granular", replace(FAST, observe=True))
        events = journal.read_journal(run.journal_path)

        kinds = {e["ev"] for e in events}
        assert {"meta", "span", "point", "counter", "hist"} <= kinds

        meta = events[0]
        assert meta["ev"] == "meta"
        assert "python" in meta["attrs"]  # environment fingerprint

        spans = {e["name"] for e in events if e["ev"] == "span"}
        assert "run_design" in spans
        assert {"flow.synthesis", "flow.physical", "flow.route_a",
                "flow.packing", "flow.route_b"} <= spans
        assert {"sa.place", "pathfinder.route",
                "synth.map", "synth.compact"} <= spans

        # SA per-temperature and router per-iteration stats made it in.
        points = {e["name"] for e in events if e["ev"] == "point"}
        assert {"sa.temperature", "pathfinder.iteration", "cache"} <= points
        counters = {
            e["name"]: e["value"] for e in events if e["ev"] == "counter"
        }
        # 5 stage misses (plus realization-table misses if the table
        # memo was cold in this process).
        assert counters["cache.miss"] >= 5
        assert counters["sa.placements"] >= 1
        assert counters["pathfinder.routes"] >= 2  # flow a + flow b
        hists = export.merge_histograms(events)
        assert {"stage.seconds.synthesis", "sa.accept_rate",
                "pathfinder.overused_edges"} <= set(hists)

    def test_realization_table_span_recorded(self):
        """Table build/load is traced (behind the in-process lru_cache,
        so the memo must be cleared to see it fire)."""
        from repro.obs import core
        from repro.synth.realize import compaction_table, table_for_cells

        # Warm the *stage cache* under the current cache dir (the memo
        # may hold a table persisted under an earlier test's dir).
        table_for_cells.cache_clear()
        compaction_table("granular")
        table_for_cells.cache_clear()
        core.begin()
        compaction_table("granular")
        events = core.drain()
        spans = [
            e for e in events
            if e["ev"] == "span" and e["name"] == "realize.table"
        ]
        assert len(spans) == 1
        assert spans[0]["attrs"]["loaded"] is True
        assert spans[0]["attrs"]["entries"] > 0
        counters = {
            e["name"]: e["value"] for e in events if e["ev"] == "counter"
        }
        assert counters["realize.table.loads"] == 1

    def test_cache_hits_recorded_on_warm_run(self, tmp_path, monkeypatch):
        from dataclasses import replace

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=5, name="obswarm")
        run_design(src.copy(), "granular", FAST)  # populate cache
        warm = run_design(src.copy(), "granular", replace(FAST, observe=True))
        events = journal.read_journal(warm.journal_path)
        counters = {
            e["name"]: e["value"] for e in events if e["ev"] == "counter"
        }
        assert counters["cache.hit"] == len(warm.stage_cached)
        assert "cache.miss" not in counters
        cached_flags = [
            e["attrs"]["cached"]
            for e in events
            if e["ev"] == "span" and e["name"].startswith("flow.")
        ]
        assert cached_flags and all(cached_flags)

    def test_summary_is_json_ready(self, tmp_path, monkeypatch):
        from dataclasses import replace

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=4, name="obssummary")
        run = run_design(src.copy(), "granular", replace(FAST, observe=True))
        summary = json.loads(json.dumps(run.summary(), default=str))
        assert summary["design"] == "obssummary"
        assert summary["arch"] == "granular"
        assert set(summary["stage_seconds"]) == set(summary["stage_cached"])
        assert summary["flow_b"]["plbs_used"] > 0
        assert summary["journal"] is not None
        assert summary["cache"]["misses"] >= 0


class TestParallelMergedJournal:
    def test_matrix_produces_one_merged_journal(self, tmp_path, monkeypatch):
        from dataclasses import replace

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "journals"))
        # Pinned to the cell pool: its workers run whole run_design calls,
        # which is what this journal shape asserts.  The stage scheduler's
        # journal shape is covered in test_scheduler.py.
        options = replace(FAST, observe=True, schedule="cell")
        runs = run_cells(MATRIX_CELLS, 0.2, options, jobs=2)
        assert list(runs) == MATRIX_CELLS

        journals = list((tmp_path / "journals").glob("*.jsonl"))
        assert len(journals) == 1, "workers must not write their own journals"
        events = journal.read_journal(journals[0])

        # Events from the parent and >= 2 pool workers, one timeline.
        pids = {e["pid"] for e in events}
        assert len(pids) >= 3
        run_design_spans = [
            e for e in events
            if e["ev"] == "span" and e["name"] == "run_design"
        ]
        assert len(run_design_spans) == len(MATRIX_CELLS)
        assert any(
            e["ev"] == "span" and e["name"] == "run_cells" for e in events
        )

        # The merged journal renders and exports cleanly.
        tree = export.format_span_tree(events)
        assert tree.count("run_design") == len(MATRIX_CELLS)
        doc = json.loads(json.dumps(export.chrome_trace(events)))
        assert len(doc["traceEvents"]) > len(MATRIX_CELLS)

    def test_parallel_results_identical_with_observation(
        self, tmp_path, monkeypatch
    ):
        """Tracing across pool workers never changes the matrix results."""
        from dataclasses import replace

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "journals"))
        cells = MATRIX_CELLS[:2]
        options = replace(FAST, use_cache=False)
        plain = run_cells(cells, 0.2, options, jobs=2)
        traced = run_cells(cells, 0.2, replace(options, observe=True), jobs=2)
        for cell in cells:
            assert traced[cell].physical.placement.sites == \
                   plain[cell].physical.placement.sites
            assert traced[cell].flow_a.routing.lengths() == \
                   plain[cell].flow_a.routing.lengths()
            assert traced[cell].flow_b.die_area == plain[cell].flow_b.die_area


class TestCLI:
    def _flow_args(self, design="alu"):
        return [design, "--scale", "0.2", "--effort", "0.05"]

    def test_run_json_parses(self, capsys):
        from repro.cli import main

        assert main(["run"] + self._flow_args() + ["--json"]) == 0
        out = capsys.readouterr().out
        summary = json.loads(out)  # stdout must be pure JSON
        assert summary["design"] == "alu"
        assert summary["flow_a"]["die_area_um2"] > 0

    def test_flow_and_run_are_aliases(self):
        from repro.cli import build_parser

        parser = build_parser()
        a = parser.parse_args(["flow", "alu", "--json"])
        b = parser.parse_args(["run", "alu", "--json"])
        assert a.json and b.json
        assert a.design == b.design == "alu"

    def test_quiet_suppresses_narration(self, capsys):
        from repro.cli import main

        assert main(["-q", "flow"] + self._flow_args()) == 0
        out = capsys.readouterr().out
        assert "Running" not in out
        assert "flow a" in out and "flow b" in out  # results still print

    def test_trace_and_stats_roundtrip(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "journals"))
        chrome_path = tmp_path / "chrome.json"
        assert main(["run"] + self._flow_args() + ["--trace"]) == 0
        capsys.readouterr()

        assert main(["trace", "--chrome", str(chrome_path)]) == 0
        out = capsys.readouterr().out
        assert "run_design" in out and "flow.synthesis" in out
        doc = json.loads(chrome_path.read_text())
        assert doc["traceEvents"]

        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out and "histograms:" in out

        assert main(["stats", "--prometheus"]) == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_trace_without_journal_fails_cleanly(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "empty"))
        assert main(["trace"]) == 1
        assert "no journals" in capsys.readouterr().err

    def test_trace_explicit_missing_path(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "no journal at" in capsys.readouterr().err
