"""Tests for fixpoint compaction."""

import pytest

from repro.cells.library import granular_plb_library, lut_plb_library
from repro.netlist.simulate import outputs_equal
from repro.netlist.stats import total_area
from repro.netlist.validate import check
from repro.synth.compaction import compact, compact_to_fixpoint
from repro.synth.from_netlist import extract_core
from repro.synth.techmap import map_core

from conftest import make_ripple_design


@pytest.mark.parametrize("arch,libfn", [
    ("lut", lut_plb_library), ("granular", granular_plb_library),
])
class TestFixpoint:
    def test_at_least_single_pass(self, arch, libfn):
        src = make_ripple_design(width=6)
        library = libfn()
        mapped = map_core(extract_core(src), arch, library)
        _single, single_report = compact(mapped, arch, library)
        multi, multi_report = compact_to_fixpoint(mapped, arch, library)
        assert multi_report.area_after <= single_report.area_after
        assert multi_report.reduction >= single_report.reduction

    def test_equivalence_preserved(self, arch, libfn):
        src = make_ripple_design(width=6)
        library = libfn()
        mapped = map_core(extract_core(src), arch, library)
        compacted, report = compact_to_fixpoint(mapped, arch, library)
        check(compacted)
        assert outputs_equal(src, compacted, n_cycles=4)
        assert report.area_after == pytest.approx(total_area(compacted)) or (
            not report.applied
        )

    def test_converges(self, arch, libfn):
        src = make_ripple_design(width=5)
        library = libfn()
        mapped = map_core(extract_core(src), arch, library)
        once, _ = compact_to_fixpoint(mapped, arch, library, max_passes=5)
        again, report = compact_to_fixpoint(once, arch, library, max_passes=5)
        # A converged netlist does not improve further.
        assert not report.applied or report.reduction < 0.02
