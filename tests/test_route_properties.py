"""Property-based router and packing invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.route.grid import RoutingGrid
from repro.route.pathfinder import PathFinderRouter

bins8 = st.tuples(
    st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)
)


class TestRouterProperties:
    @given(st.lists(st.lists(bins8, min_size=2, max_size=5), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_every_net_tree_connects_its_terminals(self, nets):
        grid = RoutingGrid(cols=8, rows=8, bin_pitch=10.0, tracks=16)
        terminals = {f"n{i}": t for i, t in enumerate(nets)}
        result = PathFinderRouter(grid).route(terminals)
        for name, t in terminals.items():
            net = result.nets[name]
            for b in set(t):
                assert b in net.bins
            # Connectivity: all bins in one component.
            if not net.bins:
                continue
            adjacency = {}
            for a, c in net.edges:
                adjacency.setdefault(a, []).append(c)
                adjacency.setdefault(c, []).append(a)
            start = next(iter(net.bins))
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for nxt in adjacency.get(current, []):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            assert net.bins <= seen

    @given(st.lists(st.lists(bins8, min_size=2, max_size=3), min_size=1, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_wirelength_lower_bound(self, nets):
        """Routed length is never below the terminals' spanning bound."""
        grid = RoutingGrid(cols=8, rows=8, bin_pitch=1.0, tracks=16)
        terminals = {f"n{i}": t for i, t in enumerate(nets)}
        result = PathFinderRouter(grid).route(terminals)
        for name, t in terminals.items():
            unique = list(dict.fromkeys(t))
            if len(unique) < 2:
                continue
            # Lower bound: max pairwise manhattan distance.
            bound = max(
                abs(a[0] - b[0]) + abs(a[1] - b[1])
                for a in unique for b in unique
            )
            assert len(result.nets[name].edges) >= bound

    @given(st.lists(st.lists(bins8, min_size=2, max_size=4), min_size=2, max_size=10),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_usage_accounting_consistent(self, nets, tracks):
        """Present-usage bookkeeping equals the union of routed trees."""
        grid = RoutingGrid(cols=8, rows=8, bin_pitch=1.0, tracks=tracks)
        router = PathFinderRouter(grid)
        result = router.route({f"n{i}": t for i, t in enumerate(nets)})
        from collections import Counter

        expected = Counter()
        for net in result.nets.values():
            for edge in net.edges:
                expected[edge] += 1
        for edge, usage in router.present.items():
            assert usage == expected.get(edge, 0)
