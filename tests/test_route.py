"""Unit tests for the routing substrate."""

import random

import pytest

from repro.route.extract import route_and_extract, terminals_from_points
from repro.route.grid import RoutingGrid
from repro.route.pathfinder import PathFinderRouter


class TestGrid:
    def test_neighbors_interior(self):
        grid = RoutingGrid(cols=4, rows=4, bin_pitch=10.0)
        assert len(grid.neighbors((1, 1))) == 4
        assert len(grid.neighbors((0, 0))) == 2

    def test_bin_of_point_clamps(self):
        grid = RoutingGrid(cols=4, rows=4, bin_pitch=10.0)
        assert grid.bin_of_point(-5, 5) == (0, 0)
        assert grid.bin_of_point(999, 999) == (3, 3)
        assert grid.bin_of_point(15, 25) == (1, 2)

    def test_edge_canonical(self):
        grid = RoutingGrid(cols=4, rows=4, bin_pitch=10.0)
        assert grid.edge((1, 0), (0, 0)) == grid.edge((0, 0), (1, 0))


class TestRouter:
    def test_two_terminal_route_is_shortest(self):
        grid = RoutingGrid(cols=8, rows=8, bin_pitch=10.0, tracks=8)
        router = PathFinderRouter(grid)
        result = router.route({"n": [(0, 0), (5, 3)]})
        assert result.success
        net = result.nets["n"]
        assert len(net.edges) == 8  # manhattan distance

    def test_tree_connects_all_terminals(self):
        grid = RoutingGrid(cols=8, rows=8, bin_pitch=10.0, tracks=8)
        router = PathFinderRouter(grid)
        terminals = [(0, 0), (7, 7), (0, 7), (7, 0)]
        result = router.route({"n": terminals})
        net = result.nets["n"]
        for t in terminals:
            assert t in net.bins
        # Tree connectivity: every bin reachable from the first terminal.
        seen = {terminals[0]}
        frontier = [terminals[0]]
        adjacency = {}
        for a, b in net.edges:
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)
        while frontier:
            current = frontier.pop()
            for nxt in adjacency.get(current, []):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert set(net.bins) <= seen

    def test_congestion_negotiation(self):
        # Ten left-to-right nets with distinct endpoints across a 2-track
        # grid: feasible, but naive shortest paths overlap and must be
        # negotiated apart.
        grid = RoutingGrid(cols=6, rows=6, bin_pitch=10.0, tracks=2)
        nets = {
            f"n{i}": [(0, i % 6), (5, (i + 2) % 6)] for i in range(10)
        }
        router = PathFinderRouter(grid)
        result = router.route(nets)
        assert result.overused_edges == 0

    def test_impossible_congestion_reported(self):
        grid = RoutingGrid(cols=2, rows=1, bin_pitch=10.0, tracks=1)
        nets = {f"n{i}": [(0, 0), (1, 0)] for i in range(5)}
        result = PathFinderRouter(grid).route(nets)
        assert result.overused_edges > 0
        assert not result.success

    def test_wirelength_accounting(self):
        grid = RoutingGrid(cols=8, rows=8, bin_pitch=12.0, tracks=8)
        result = PathFinderRouter(grid).route({"n": [(0, 0), (3, 0)]})
        assert result.nets["n"].wirelength(grid) == pytest.approx(36.0)
        assert result.total_wirelength() == pytest.approx(36.0)

    def test_via_count_counts_bends(self):
        grid = RoutingGrid(cols=8, rows=8, bin_pitch=10.0, tracks=8)
        result = PathFinderRouter(grid).route({"n": [(0, 0), (4, 4)]})
        assert result.nets["n"].via_count() >= 1

    def test_via_count_pinned_on_known_trees(self):
        """Exact via counts for hand-built trees (the O(edges) rewrite)."""
        from repro.route.pathfinder import RoutedNet

        def tree(path):
            bins = set(path)
            edges = {
                tuple(sorted((path[i], path[i + 1])))
                for i in range(len(path) - 1)
            }
            return RoutedNet("t", bins=bins, edges=edges)

        # Straight horizontal line: no direction change, no vias.
        line = tree([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert line.via_count() == 0

        # L-shape: exactly one bin touches both orientations.
        ell = tree([(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)])
        assert ell.via_count() == 1

        # Cross: horizontal and vertical arms share only the center.
        cross = RoutedNet(
            "x",
            bins={(1, 1), (0, 1), (2, 1), (1, 0), (1, 2)},
            edges={
                ((0, 1), (1, 1)),
                ((1, 1), (2, 1)),
                ((1, 0), (1, 1)),
                ((1, 1), (1, 2)),
            },
        )
        assert cross.via_count() == 1

        # Staircase: every interior bin is a bend.
        stair = tree([(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)])
        assert stair.via_count() == 3


class TestExtraction:
    def test_terminals_skip_single_bin_nets(self):
        grid = RoutingGrid(cols=4, rows=4, bin_pitch=10.0)
        points = {
            "local": [(1.0, 1.0), (2.0, 2.0)],     # same bin
            "global": [(1.0, 1.0), (35.0, 35.0)],  # far apart
        }
        terminals = terminals_from_points(grid, points)
        assert "local" not in terminals
        assert "global" in terminals

    def test_extract_gives_wire_model(self):
        grid = RoutingGrid(cols=6, rows=6, bin_pitch=10.0, tracks=8)
        rng = random.Random(1)
        points = {
            f"n{i}": [
                (rng.uniform(0, 60), rng.uniform(0, 60)) for _ in range(3)
            ]
            for i in range(20)
        }
        result, model = route_and_extract(grid, points)
        for name in points:
            assert model.length(name) >= 0.0
        routed = [n for n in points if n in result.nets]
        assert routed
        for name in routed:
            assert model.length(name) == result.nets[name].wirelength(grid)

    def test_intra_bin_nets_get_nominal_length(self):
        grid = RoutingGrid(cols=4, rows=4, bin_pitch=10.0)
        _result, model = route_and_extract(
            grid, {"local": [(1.0, 1.0), (2.0, 2.0)]}
        )
        assert model.length("local") == pytest.approx(5.0)
