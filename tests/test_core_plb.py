"""Tests for PLB architectures, configurations, adder and Figure 5."""

import numpy as np
import pytest

from repro.core.adder import (
    AdderFunctions,
    carry_is_majority,
    carry_nd3wi_feasible,
    granular_configs_for_adder,
    granular_full_adder,
    lut_full_adder,
)
from repro.core.configs import (
    best_config,
    coverage_summary,
    granular_configs,
    lut_arch_configs,
    mx_functions,
    ndmx_functions,
    xoamx_functions,
)
from repro.core.explorer import (
    CandidatePLB,
    GranularityExplorer,
    paper_candidates,
)
from repro.core.lut_decompose import decompose_lut3, lut3_as_mux_netlist
from repro.core.plb import (
    COMB_AREA_RATIO,
    PLB_AREA_RATIO,
    granular_plb,
)
from repro.logic.truthtable import TruthTable, all_functions
from repro.netlist.simulate import random_vectors, simulate


class TestConfigurations:
    def test_coverage_counts(self):
        # Enumerated coverage of the five granular configurations.
        summary = coverage_summary()
        assert summary["ND3"] == 48
        assert summary["MX"] == 62
        assert summary["NDMX"] == 174
        assert summary["XOAMX"] == 224
        assert summary["XOANDMX"] == 254

    def test_union_covers_all_256(self):
        # The granular PLB needs no LUT: every 3-input function has a
        # configuration.
        union = set()
        for config in granular_configs():
            union |= config.functions
        assert len(union) == 256

    def test_configs_ordered_by_area(self):
        configs = granular_configs()
        assert configs[0].area <= configs[-1].area

    def test_xor3_in_xoamx(self):
        # "two 2:1 MUXes and an inverter"
        a, b, c = TruthTable.inputs(3)
        assert (a ^ b ^ c) in xoamx_functions()
        assert ~(a ^ b ^ c) in xoamx_functions()

    def test_ndmx_superset_of_mx(self):
        assert mx_functions() <= ndmx_functions()

    def test_best_config_prefers_cheap(self):
        a, b, c = TruthTable.inputs(3)
        chosen = best_config(~(a & b & c), granular_configs())
        assert chosen.name == "ND3"

    def test_best_config_none_for_wide(self):
        assert best_config(TruthTable(4, 0x6996), granular_configs()) is None

    def test_lut_arch_configs(self):
        names = {c.name for c in lut_arch_configs()}
        assert names == {"ND3", "LUT3"}
        lut3 = [c for c in lut_arch_configs() if c.name == "LUT3"][0]
        assert len(lut3.functions) == 256


class TestPLBArchitectures:
    def test_area_ratios_exact(self, lut_arch, gran_arch):
        # The paper's two published ratios hold exactly by calibration.
        assert gran_arch.area / lut_arch.area == pytest.approx(PLB_AREA_RATIO)
        assert gran_arch.combinational_area / lut_arch.combinational_area == (
            pytest.approx(COMB_AREA_RATIO)
        )

    def test_lut_plb_slots(self, lut_arch):
        assert lut_arch.slots["LUT3"] == 1
        assert lut_arch.slots["ND3WI"] == 2
        assert lut_arch.slots["DFF"] == 1

    def test_granular_plb_slots(self, gran_arch):
        # Three muxes (2 plain + XOA), one ND3WI, one DFF.
        assert gran_arch.slots["MUX2"] + gran_arch.slots["XOA"] == 3
        assert gran_arch.slots["ND3WI"] == 1
        assert gran_arch.slots["DFF"] == 1

    def test_nd2_flexibility(self, gran_arch, lut_arch):
        # The packing flexibility of Section 3.2: an ND2WI can occupy a
        # mux slot in the granular PLB.
        assert "MUX2" in gran_arch.hosting_slots("ND2WI")
        assert gran_arch.hosting_slots("ND2WI")[0] == "ND3WI"
        assert lut_arch.hosting_slots("ND2WI") == ("ND3WI",)

    def test_buffers_are_free_slots(self, gran_arch):
        assert gran_arch.hosting_slots("INV") == ("POLBUF",)
        assert gran_arch.slot_cells["POLBUF"].area == 0.0

    def test_unknown_cell_has_no_slots(self, gran_arch):
        assert gran_arch.hosting_slots("LUT3") == ()

    def test_tile_side(self, gran_arch):
        assert gran_arch.tile_side == pytest.approx(gran_arch.area ** 0.5)


class TestFullAdder:
    def test_functions(self):
        funcs = AdderFunctions.build()
        assert funcs.sum_table(1, 1, 1) == 1
        assert funcs.carry_table(1, 1, 0) == 1
        assert funcs.carry_table(1, 0, 0) == 0

    def test_carry_is_majority(self):
        assert carry_is_majority()

    def test_carry_not_nd3wi(self):
        # Why the LUT PLB cannot pack a full adder: carry needs the LUT.
        assert not carry_nd3wi_feasible()

    def test_granular_adder_simulates(self):
        net = granular_full_adder()
        vectors = random_vectors(net.inputs, n_words=1, seed=0)
        values = simulate(net, vectors)[0]
        a, b, cin = vectors["a"], vectors["b"], vectors["cin"]
        results = [values[o] for o in net.outputs]
        assert any(np.array_equal(r, a ^ b ^ cin) for r in results)
        assert any(
            np.array_equal(r, (a & b) | (cin & (a ^ b))) for r in results
        )

    def test_lut_adder_simulates(self):
        net = lut_full_adder()
        vectors = random_vectors(net.inputs, n_words=1, seed=1)
        values = simulate(net, vectors)[0]
        a, b, cin = vectors["a"], vectors["b"], vectors["cin"]
        results = [values[o] for o in net.outputs]
        assert any(np.array_equal(r, a ^ b ^ cin) for r in results)

    def test_granular_adder_fits_one_plb(self, gran_arch):
        # 3 mux-class cells + 1 ND3WI + polarity buffers.
        from collections import Counter

        net = granular_full_adder()
        counts = Counter(i.cell.name for i in net.instances.values())
        assert counts["MUX2"] + counts["XOA"] <= 3
        assert counts["ND3WI"] <= 1
        assert counts["INV"] <= gran_arch.slots["POLBUF"]

    def test_lut_adder_needs_two_luts(self):
        from collections import Counter

        net = lut_full_adder()
        counts = Counter(i.cell.name for i in net.instances.values())
        assert counts["LUT3"] == 2

    def test_adder_config_names(self):
        sum_config, carry_config = granular_configs_for_adder()
        assert sum_config == "XOAMX"
        assert carry_config in ("XOAMX", "XOANDMX", "NDMX")


class TestFigure5:
    def test_all_256_decompose(self):
        for table in all_functions(3):
            assert decompose_lut3(table).evaluate() == table

    def test_netlist_form_equivalent(self):
        for mask in (0x96, 0xE8, 0x17, 0x3C, 0x01, 0xFE):
            table = TruthTable(3, mask)
            net = lut3_as_mux_netlist(table)
            vectors = random_vectors(net.inputs, n_words=1, seed=mask)
            values = simulate(net, vectors)[0]
            expected = np.zeros_like(vectors["a"])
            for row in range(8):
                if not (table.mask >> row) & 1:
                    continue
                term = ~np.zeros_like(vectors["a"])
                for i, name in enumerate(("a", "b", "c")):
                    bit = vectors[name]
                    term &= bit if (row >> i) & 1 else ~bit
                expected |= term
            assert np.array_equal(values[net.outputs[0]], expected)

    def test_uses_exactly_three_muxes(self):
        from collections import Counter

        net = lut3_as_mux_netlist(TruthTable(3, 0x96))
        counts = Counter(i.cell.name for i in net.instances.values())
        assert counts["MUX2"] == 3

    def test_arity_guard(self):
        with pytest.raises(ValueError):
            decompose_lut3(TruthTable(2, 6))


class TestExplorer:
    def test_paper_architectures_evaluated(self):
        explorer = GranularityExplorer()
        ranked = explorer.rank(paper_candidates())
        names = [metrics.name for _c, metrics, _s in ranked]
        # The paper's conclusion: the granular PLB wins.
        assert names[0] == "granular_plb"

    def test_granular_covers_all_without_lut(self):
        explorer = GranularityExplorer()
        metrics = explorer.evaluate(
            CandidatePLB("g", {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 1})
        )
        assert metrics.lut_free_coverage == 256
        assert metrics.full_adder_in_one_plb

    def test_lut_plb_metrics(self):
        explorer = GranularityExplorer()
        metrics = explorer.evaluate(
            CandidatePLB("l", {"LUT3": 1, "ND3WI": 2, "DFF": 1})
        )
        assert metrics.lut_free_coverage == 48  # ND3WI only
        assert metrics.total_coverage == 256
        assert not metrics.full_adder_in_one_plb

    def test_mux_only_incomplete(self):
        explorer = GranularityExplorer()
        metrics = explorer.evaluate(CandidatePLB("m", {"MUX2": 2, "XOA": 1}))
        assert metrics.total_coverage < 256

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            CandidatePLB("bad", {"FOO": 1}).component_cells()

    def test_sequential_fraction(self):
        explorer = GranularityExplorer()
        light = explorer.evaluate(CandidatePLB("a", {"MUX2": 3, "DFF": 1}))
        heavy = explorer.evaluate(CandidatePLB("b", {"MUX2": 3, "DFF": 3}))
        assert heavy.sequential_fraction > light.sequential_fraction
