"""Unit tests for the netlist data structure and builder."""

import pytest

from repro.cells.celltypes import make_dff, make_inv, make_nd2wi
from repro.logic.truthtable import TruthTable
from repro.netlist.build import CONST0, CONST1, NetlistBuilder, capture_cell, is_capture
from repro.netlist.core import Netlist, NetlistError
from repro.netlist.stats import gather, nand2_equivalents
from repro.netlist.validate import check, validate


def and_config():
    a, b = TruthTable.inputs(2)
    return a & b


class TestNetlistCore:
    def test_add_input_and_instance(self):
        n = Netlist("t")
        a = n.add_input("a")
        b = n.add_input("b")
        inst = n.add_instance(make_nd2wi(), {"A": a, "B": b}, config=~and_config())
        assert n.nets[inst.output_net].driver == (inst.name, "Y")
        assert ("a" in n.nets) and n.nets["a"].is_input

    def test_double_drive_rejected(self):
        n = Netlist("t")
        a = n.add_input("a")
        n.add_instance(make_inv(), {"A": a, "Y": "y"}, config=~TruthTable.input_var(1, 0))
        with pytest.raises(NetlistError):
            n.add_instance(make_inv(), {"A": a, "Y": "y"}, config=~TruthTable.input_var(1, 0))

    def test_driving_an_input_rejected(self):
        n = Netlist("t")
        a = n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_instance(make_inv(), {"A": a, "Y": a}, config=~TruthTable.input_var(1, 0))

    def test_config_feasibility_enforced(self):
        n = Netlist("t")
        a = n.add_input("a")
        b = n.add_input("b")
        xor = TruthTable(2, 0b0110)
        with pytest.raises(NetlistError):
            n.add_instance(make_nd2wi(), {"A": a, "B": b}, config=xor)

    def test_sequential_takes_no_config(self):
        n = Netlist("t")
        a = n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_instance(make_dff(), {"D": a}, config=TruthTable(1, 2))

    def test_missing_pin_rejected(self):
        n = Netlist("t")
        n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_instance(make_nd2wi(), {"A": "a"}, config=~and_config())

    def test_remove_instance(self):
        n = Netlist("t")
        a = n.add_input("a")
        inst = n.add_instance(make_inv(), {"A": a}, config=~TruthTable.input_var(1, 0))
        out = inst.output_net
        n.remove_instance(inst.name)
        assert n.nets[out].driver is None
        assert not n.nets[a].sinks

    def test_remove_net_in_use_rejected(self):
        n = Netlist("t")
        a = n.add_input("a")
        with pytest.raises(NetlistError):
            n.remove_net(a)

    def test_rename_net(self):
        n = Netlist("t")
        a = n.add_input("a")
        inst = n.add_instance(make_inv(), {"A": a}, config=~TruthTable.input_var(1, 0))
        old = inst.output_net
        n.add_output(old)
        n.rename_net(old, "zz")
        assert "zz" in n.nets and old not in n.nets
        assert inst.pin_nets["Y"] == "zz"
        assert n.outputs == ["zz"]

    def test_rename_collision_rejected(self):
        n = Netlist("t")
        a = n.add_input("a")
        b = n.add_input("b")
        with pytest.raises(NetlistError):
            n.rename_net(a, b)

    def test_topological_order(self, ripple_design):
        order = ripple_design.topological_order()
        seen = set()
        for inst in order:
            for net in inst.input_nets():
                driver = ripple_design.driver_of(net)
                if driver is not None and not driver.is_sequential:
                    assert driver.name in seen
            seen.add(inst.name)

    def test_copy_is_deep(self, ripple_design):
        clone = ripple_design.copy()
        assert len(clone.instances) == len(ripple_design.instances)
        assert clone.inputs == ripple_design.inputs
        name = next(iter(clone.instances))
        clone.remove_instance(name)
        assert name in ripple_design.instances

    def test_sweep_dangling(self):
        n = Netlist("t")
        a = n.add_input("a")
        inv = ~TruthTable.input_var(1, 0)
        kept = n.add_instance(make_inv(), {"A": a}, config=inv)
        n.add_output(kept.output_net)
        dead1 = n.add_instance(make_inv(), {"A": a}, config=inv)
        n.add_instance(make_inv(), {"A": dead1.output_net}, config=inv)
        removed = n.sweep_dangling()
        assert removed == 2
        assert len(n.instances) == 1

    def test_transitive_fanin(self, ripple_design):
        cone = ripple_design.transitive_fanin("cout")
        assert cone  # non-trivial
        assert all(name in ripple_design.instances for name in cone)


class TestBuilder:
    def test_constant_folding_and(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        assert b.AND(x, CONST1) == x
        assert b.AND(x, CONST0) == CONST0

    def test_constant_folding_xor(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        assert b.XOR(x, CONST0) == x
        # XOR with 1 becomes an inverter instance.
        out = b.XOR(x, CONST1)
        assert out not in (CONST0, CONST1, x)

    def test_duplicate_operand_folding(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        assert b.AND(x, x) == x
        assert b.XOR(x, x) == CONST0
        assert b.OR(x, x) == x

    def test_not_of_constants(self):
        b = NetlistBuilder("t")
        assert b.NOT(CONST0) == CONST1
        assert b.NOT(CONST1) == CONST0

    def test_mux_folds_same_data(self):
        b = NetlistBuilder("t")
        s = b.input("s")
        x = b.input("x")
        assert b.MUX(s, x, x) == x

    def test_mux_collapses_to_and(self):
        b = NetlistBuilder("t")
        s = b.input("s")
        x = b.input("x")
        out = b.MUX(s, CONST0, x)
        inst = b.netlist.driver_of(out)
        assert inst.config == and_config()

    def test_wide_gates_tree(self):
        b = NetlistBuilder("t")
        xs = b.input_word("x", 9)
        out = b.AND(*xs)
        assert out in b.netlist.nets
        # Tree of 3-input gates: ceil(9/3) + ... some instances
        assert len(b.netlist.instances) >= 4

    def test_output_naming(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        y = b.NOT(x)
        b.output(y, "out")
        assert "out" in b.netlist.outputs[0] or b.netlist.outputs == ["out"]

    def test_output_of_constant_materializes(self):
        b = NetlistBuilder("t")
        b.input("x")
        b.output(CONST1, "one")
        check(b.netlist)

    def test_dff_roundtrip(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        q = b.DFF(x)
        b.output(q, "q")
        assert sum(1 for _ in b.netlist.sequential_instances()) == 1

    def test_capture_cell_cache(self):
        t = TruthTable(2, 0b0110)
        assert capture_cell(t) is capture_cell(t)
        assert is_capture(capture_cell(t))

    def test_capture_cell_arity_bounds(self):
        with pytest.raises(NetlistError):
            capture_cell(TruthTable(0, 1))

    def test_gate_arity_mismatch(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        with pytest.raises(NetlistError):
            b.gate(TruthTable(2, 0b0110), x)


class TestValidateAndStats:
    def test_clean_design_validates(self, ripple_design):
        assert validate(ripple_design) == []

    def test_undriven_net_flagged(self):
        n = Netlist("t")
        n.add_net("floating")
        problems = validate(n)
        assert any("undriven" in p for p in problems)

    def test_check_raises(self):
        n = Netlist("t")
        n.add_net("floating")
        with pytest.raises(NetlistError):
            check(n)

    def test_missing_output_net_flagged(self):
        n = Netlist("t")
        n.outputs.append("ghost")
        assert any("ghost" in p for p in validate(n))

    def test_stats(self, ripple_design):
        st = gather(ripple_design)
        assert st.n_instances == len(ripple_design.instances)
        assert st.n_sequential == 5
        assert st.total_area == st.combinational_area + st.sequential_area
        assert 0 < st.sequential_fraction < 1

    def test_nand2_equivalents_positive(self, ripple_design):
        assert nand2_equivalents(ripple_design) > 0
