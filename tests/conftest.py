"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cells import granular_plb_library, lut_plb_library, characterize_library
from repro.core import granular_plb, lut_plb
from repro.netlist import NetlistBuilder


def pytest_configure(config):
    """Install the lockwatch lock sanitizer when opted in.

    ``REPRO_LOCKWATCH=1`` swaps threading's lock factories for
    instrumented wrappers for the whole run; the aggregated report
    (acquisition orders, hold times, observed inversions) is written at
    session end to ``$REPRO_LOCKWATCH_OUT`` (or the journal directory)
    and summarized in the terminal report.  CI feeds that journal to
    ``repro check --lockwatch`` so an observed inversion fails the
    build through the normal findings machinery.
    """
    from repro.check import lockwatch

    if lockwatch.enabled():
        lockwatch.install()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    from repro.check import lockwatch

    if not lockwatch.installed():
        return
    lockwatch.uninstall()
    path = lockwatch.write_report()
    snap = lockwatch.watch().snapshot()
    terminalreporter.write_sep("-", "lockwatch")
    terminalreporter.write_line(
        f"lockwatch: {len(snap['sites'])} lock site(s), "
        f"{len(snap['edges'])} order edge(s), "
        f"{len(snap['inversions'])} inversion(s); report: {path}"
    )


@pytest.fixture(scope="session", autouse=True)
def _isolated_stage_cache(tmp_path_factory):
    """Point the flow stage cache at a per-session temp dir.

    Keeps test runs from reading or polluting the developer's
    ~/.cache/repro (fuzz tests alone would fill it with junk entries).
    """
    import os

    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield


@pytest.fixture(scope="session", autouse=True)
def _isolated_journal_dir(tmp_path_factory):
    """Point run journals at a per-session temp dir.

    Tests that enable observation would otherwise drop journal files
    into the repo's results/journals/.
    """
    import os

    if "REPRO_JOURNAL_DIR" not in os.environ:
        os.environ["REPRO_JOURNAL_DIR"] = str(
            tmp_path_factory.mktemp("repro-journals")
        )
    yield


@pytest.fixture(autouse=True)
def _reset_tracer():
    """Deactivate any leftover tracer between tests (obs state is global)."""
    from repro.obs import core as obs_core

    yield
    obs_core.reset()


def make_ripple_design(width: int = 4, name: str = "ripple"):
    """A small registered ripple adder (xor/mux/and mix) used widely."""
    b = NetlistBuilder(name)
    a = b.input_word("a", width)
    c = b.input_word("c", width)
    carry = b.input("cin")
    sums = []
    for i in range(width):
        p = b.XOR(a[i], c[i])
        s = b.XOR(p, carry)
        g = b.AND(a[i], c[i])
        carry = b.MUX(p, g, carry)
        sums.append(b.DFF(s))
    b.output_word(sums, "sum")
    b.output(b.DFF(carry), "cout")
    return b.netlist


def make_combinational_design(name: str = "comb"):
    """A purely combinational mixed-function block."""
    b = NetlistBuilder(name)
    x = b.input_word("x", 4)
    y = b.input_word("y", 4)
    b.output(b.AND(x[0], y[0], x[1]), "f0")
    b.output(b.XOR(x[1], y[1], x[2]), "f1")
    b.output(b.MUX(x[2], y[2], y[3]), "f2")
    b.output(b.AOI21(x[3], y[0], y[1]), "f3")
    b.output(b.MAJ(x[0], y[2], x[3]), "f4")
    b.output(b.NOR(x[0], x[1]), "f5")
    return b.netlist


@pytest.fixture(scope="session")
def ripple_design():
    return make_ripple_design()


@pytest.fixture(scope="session")
def comb_design():
    return make_combinational_design()


@pytest.fixture(scope="session")
def lut_lib():
    return lut_plb_library()


@pytest.fixture(scope="session")
def gran_lib():
    return granular_plb_library()


@pytest.fixture(scope="session")
def lut_arch():
    return lut_plb()


@pytest.fixture(scope="session")
def gran_arch():
    return granular_plb()


@pytest.fixture(scope="session")
def lut_timing(lut_lib):
    return characterize_library(lut_lib)


@pytest.fixture(scope="session")
def gran_timing(gran_lib):
    return characterize_library(gran_lib)
