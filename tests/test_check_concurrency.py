"""Tests for the CC concurrency rule family (repro.check.concurrency).

Each ERROR rule gets a corrupted-fixture test: a synthetic module with
a seeded defect (a known lock-order inversion, a lock held across a
subprocess launch, a guarded/unguarded attribute pair, a loopless
condition wait) that the analyzer must flag — plus clean twins it must
not flag, suppression-comment behavior, and the CLI integration
(`--self --rules CC`, family selectors, grouped --list-rules).
"""

import json

import pytest

from repro.check import REGISTRY, analyze_paths, analyze_source
from repro.cli import main


def rules_of(findings):
    return sorted(f.rule_id for f in findings)


# ----------------------------------------------------------------------
# CC001: lock-order inversions
# ----------------------------------------------------------------------

INVERSION = '''
import threading

class Service:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def one(self):
        with self._a:
            with self._b:
                pass

    def two(self):
        with self._b:
            with self._a:
                pass
'''

INVERSION_INTERPROCEDURAL = '''
import threading

class Service:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def one(self):
        with self._a:
            self._helper()

    def _helper(self):
        with self._b:
            pass

    def two(self):
        with self._b:
            with self._a:
                pass
'''

ORDERED = '''
import threading

class Service:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def one(self):
        with self._a:
            with self._b:
                pass

    def two(self):
        with self._a:
            with self._b:
                pass
'''

SELF_DEADLOCK = '''
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            with self._lock:
                pass
'''


class TestLockOrder:
    def test_inversion_is_flagged(self):
        findings = analyze_source(INVERSION, "inv.py")
        assert "CC001" in rules_of(findings)
        message = next(f for f in findings if f.rule_id == "CC001").message
        assert "Service._a" in message and "Service._b" in message

    def test_inversion_through_the_call_graph(self):
        findings = analyze_source(INVERSION_INTERPROCEDURAL, "inv2.py")
        assert "CC001" in rules_of(findings)

    def test_consistent_order_is_clean(self):
        assert analyze_source(ORDERED, "ok.py") == []

    def test_nonreentrant_self_acquire(self):
        findings = analyze_source(SELF_DEADLOCK, "self.py")
        assert "CC001" in rules_of(findings)
        assert "self-deadlock" in findings[0].message

    def test_rlock_self_acquire_is_fine(self):
        findings = analyze_source(
            SELF_DEADLOCK.replace("threading.Lock()", "threading.RLock()"),
            "rlock.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# CC002: blocking calls under a lock
# ----------------------------------------------------------------------

BLOCKING_SUBPROCESS = '''
import subprocess
import threading

class Runner:
    def __init__(self):
        self._lock = threading.Lock()

    def run(self):
        with self._lock:
            subprocess.run(["true"])
'''

BLOCKING_OPEN = '''
import threading

class Writer:
    def __init__(self):
        self._lock = threading.Lock()
        self.path = "out.txt"

    def write(self, text):
        with self._lock:
            with open(self.path, "a") as handle:
                handle.write(text)
'''


class TestBlockingUnderLock:
    def test_subprocess_under_lock(self):
        findings = analyze_source(BLOCKING_SUBPROCESS, "sub.py")
        assert rules_of(findings) == ["CC002"]
        assert "subprocess.run" in findings[0].message

    def test_file_io_under_lock(self):
        findings = analyze_source(BLOCKING_OPEN, "io.py")
        assert "CC002" in rules_of(findings)

    def test_blocking_outside_lock_is_clean(self):
        source = BLOCKING_SUBPROCESS.replace(
            'with self._lock:\n            subprocess.run(["true"])',
            'subprocess.run(["true"])',
        )
        assert analyze_source(source, "free.py") == []

    def test_interprocedural_held_context(self):
        source = '''
import subprocess
import threading

class Runner:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            self._inner()

    def _inner(self):
        subprocess.run(["true"])
'''
        findings = analyze_source(source, "ctx.py")
        assert "CC002" in rules_of(findings)

    def test_allow_comment_suppresses(self):
        source = BLOCKING_SUBPROCESS.replace(
            'subprocess.run(["true"])',
            'subprocess.run(["true"])  # check: allow(CC002)',
        )
        assert analyze_source(source, "ok.py") == []


# ----------------------------------------------------------------------
# CC003: guarded-somewhere must be guarded-everywhere
# ----------------------------------------------------------------------

MIXED_GUARD = '''
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def reset(self):
        self.count = 0
'''

TWO_ENTRY_POINTS = '''
import threading

class Pipeline:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def start(self):
        threading.Thread(target=self._produce).start()
        threading.Thread(target=self._consume).start()

    def _produce(self):
        self.items.append(1)

    def _consume(self):
        self.items.pop()
'''


class TestGuardConsistency:
    def test_mixed_guard_flags_the_unguarded_site(self):
        findings = analyze_source(MIXED_GUARD, "mix.py")
        assert rules_of(findings) == ["CC003"]
        assert "Counter.count" in findings[0].message
        assert "Counter.reset" in findings[0].message

    def test_construction_writes_are_exempt(self):
        source = MIXED_GUARD.replace(
            "    def reset(self):\n        self.count = 0\n", ""
        )
        assert analyze_source(source, "ok.py") == []

    def test_init_only_helpers_are_exempt(self):
        source = '''
import threading

class Replayed:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self._replay()

    def _replay(self):
        self.count = 1

    def bump(self):
        with self._lock:
            self.count += 1
'''
        assert analyze_source(source, "replay.py") == []

    def test_unguarded_writes_from_two_thread_entries(self):
        findings = analyze_source(TWO_ENTRY_POINTS, "pipe.py")
        assert set(rules_of(findings)) == {"CC003"}
        assert len(findings) == 2  # both unguarded sites reported

    def test_consistently_guarded_is_clean(self):
        source = TWO_ENTRY_POINTS.replace(
            "        self.items.append(1)",
            "        with self._lock:\n            self.items.append(1)",
        ).replace(
            "        self.items.pop()",
            "        with self._lock:\n            self.items.pop()",
        )
        assert analyze_source(source, "ok.py") == []


# ----------------------------------------------------------------------
# CC004: condition-variable discipline
# ----------------------------------------------------------------------

WAIT_NOT_IN_LOOP = '''
import threading

class Box:
    def __init__(self):
        self._cond = threading.Condition()
        self.ready = False

    def take(self):
        with self._cond:
            if not self.ready:
                self._cond.wait()
            return self.ready
'''

NOTIFY_WITHOUT_LOCK = '''
import threading

class Box:
    def __init__(self):
        self._cond = threading.Condition()
        self.ready = False

    def put(self):
        with self._cond:
            self.ready = True
        self._cond.notify_all()
'''


class TestConditionMisuse:
    def test_wait_outside_while_is_flagged(self):
        findings = analyze_source(WAIT_NOT_IN_LOOP, "wait.py")
        assert "CC004" in rules_of(findings)
        assert "while" in findings[0].message

    def test_wait_in_while_is_clean(self):
        source = WAIT_NOT_IN_LOOP.replace(
            "if not self.ready:", "while not self.ready:"
        )
        assert analyze_source(source, "ok.py") == []

    def test_wait_for_is_clean(self):
        source = WAIT_NOT_IN_LOOP.replace(
            "if not self.ready:\n                self._cond.wait()",
            "self._cond.wait_for(lambda: self.ready)",
        )
        assert analyze_source(source, "ok.py") == []

    def test_notify_without_lock_is_flagged(self):
        findings = analyze_source(NOTIFY_WITHOUT_LOCK, "notify.py")
        assert "CC004" in rules_of(findings)
        assert "notified without its lock" in str(
            [f.message for f in findings]
        )

    def test_notify_under_lock_is_clean(self):
        source = '''
import threading

class Box:
    def __init__(self):
        self._cond = threading.Condition()
        self.ready = False

    def put(self):
        with self._cond:
            self.ready = True
            self._cond.notify_all()
'''
        assert analyze_source(source, "ok.py") == []


# ----------------------------------------------------------------------
# Whole-repo + framework integration
# ----------------------------------------------------------------------

class TestRepoIsClean:
    def test_repro_package_has_no_cc_findings(self):
        assert analyze_paths() == []


class TestFamilySelection:
    def test_family_prefix_expands(self):
        selected = REGISTRY.validate_selection({"CC"})
        assert {"CC001", "CC002", "CC003", "CC004", "CC005"} <= selected

    def test_mixed_family_and_id(self):
        selected = REGISTRY.validate_selection({"CC", "DT001"})
        assert "CC002" in selected and "DT001" in selected
        assert "DT002" not in selected

    def test_unknown_selector_raises(self):
        with pytest.raises(KeyError, match="unknown rule id"):
            REGISTRY.validate_selection({"ZZ"})

    def test_families_listed(self):
        from repro.check import rule_catalog

        rule_catalog()
        assert {"CC", "DT"} <= set(REGISTRY.families())


class TestCheckCli:
    def test_self_with_cc_family_is_clean(self, capsys):
        assert main([
            "-q", "check", "--self", "--rules", "CC",
            "--fail-on", "warning",
        ]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_self_runs_both_families_clean(self, capsys):
        assert main(["-q", "check", "--self", "--fail-on", "warning"]) == 0

    def test_list_rules_groups_by_family(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        cc_header = next(
            i for i, line in enumerate(lines) if line.startswith("CC ")
        )
        assert "concurrency" in lines[cc_header]
        assert lines[cc_header + 1].strip().startswith("CC001")

    def test_sarif_carries_cc_rules(self, capsys):
        assert main([
            "-q", "check", "--self", "--rules", "CC", "--sarif",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        driver = doc["runs"][0]["tool"]["driver"]
        assert any(r["id"] == "CC001" for r in driver["rules"])
