"""Unit tests for placement, buffering and the physical-synthesis loop."""

import pytest

from repro.cells.library import granular_plb_library
from repro.netlist.simulate import outputs_equal
from repro.netlist.validate import check
from repro.place.buffers import insert_buffers
from repro.place.grid import PlacementGrid, grid_for_netlist
from repro.place.physical_synthesis import net_criticalities, run_physical_synthesis
from repro.place.sa import AnnealingPlacer

from conftest import make_ripple_design


class TestGrid:
    def test_sizing_fits_instances(self, ripple_design):
        grid = grid_for_netlist(ripple_design)
        assert grid.n_sites >= len(ripple_design.instances)
        assert grid.pitch > 0

    def test_coordinates(self):
        grid = PlacementGrid(cols=4, rows=3, pitch=10.0)
        assert grid.center_of((0, 0)) == (5.0, 5.0)
        assert grid.width_um == 40.0
        assert grid.area_um2 == 40.0 * 30.0
        assert grid.clamp(-3, 99) == (0, 2)

    def test_pads_on_perimeter(self):
        grid = PlacementGrid(cols=4, rows=4, pitch=10.0)
        pads = grid.pad_positions([f"p{i}" for i in range(12)])
        for x, y in pads.values():
            on_edge = (
                x in (0.0, grid.width_um) or y in (0.0, grid.height_um)
                or x == pytest.approx(0.0) or y == pytest.approx(0.0)
            )
            assert on_edge or x == grid.width_um or y == grid.height_um

    def test_sites_iteration(self):
        grid = PlacementGrid(cols=2, rows=2, pitch=1.0)
        assert len(list(grid.sites())) == 4


class TestAnnealer:
    def test_all_instances_placed_uniquely(self, ripple_design):
        grid = grid_for_netlist(ripple_design)
        placement = AnnealingPlacer(ripple_design, grid, seed=3, effort=0.1).place()
        assert set(placement.sites) == set(ripple_design.instances)
        assert len(set(placement.sites.values())) == len(placement.sites)

    def test_deterministic_for_seed(self, ripple_design):
        grid = grid_for_netlist(ripple_design)
        p1 = AnnealingPlacer(ripple_design, grid, seed=5, effort=0.1).place()
        p2 = AnnealingPlacer(ripple_design, grid, seed=5, effort=0.1).place()
        assert p1.sites == p2.sites

    def test_locked_instances_stay(self, ripple_design):
        grid = grid_for_netlist(ripple_design)
        name = next(iter(ripple_design.instances))
        locked = {name: (0, 0)}
        placement = AnnealingPlacer(
            ripple_design, grid, seed=1, locked=locked, effort=0.1
        ).place()
        assert placement.sites[name] == (0, 0)

    def test_improves_over_random(self, ripple_design):
        from repro.timing.wires import hpwl

        grid = grid_for_netlist(ripple_design)

        def total_wirelength(placement):
            return sum(
                hpwl(points)
                for points in placement.net_pin_points(ripple_design).values()
            )

        quick = AnnealingPlacer(ripple_design, grid, seed=2, effort=0.02).place()
        good = AnnealingPlacer(ripple_design, grid, seed=2, effort=1.0).place()
        assert total_wirelength(good) <= total_wirelength(quick) * 1.05

    def test_grid_too_small_rejected(self, ripple_design):
        with pytest.raises(ValueError):
            AnnealingPlacer(ripple_design, PlacementGrid(2, 2, 5.0))


class TestBuffers:
    def test_high_fanout_net_split(self):
        from repro.netlist.build import NetlistBuilder

        b = NetlistBuilder("fan")
        x = b.input("x")
        inv = b.NOT(x)
        outs = [b.DFF(b.NOT(inv)) for _ in range(24)]
        for i, q in enumerate(outs):
            b.output(q, f"q{i}")
        src = b.netlist.copy()
        added = insert_buffers(b.netlist, granular_plb_library(), max_fanout=8)
        assert added >= 1
        check(b.netlist)
        assert outputs_equal(src, b.netlist, n_cycles=3)

    def test_small_nets_untouched(self, ripple_design):
        work = ripple_design.copy()
        added = insert_buffers(work, granular_plb_library(), max_fanout=64)
        assert added == 0


class TestPhysicalSynthesis:
    def test_end_to_end(self, gran_lib, gran_timing):
        src = make_ripple_design(width=4)
        work = src.copy()
        result = run_physical_synthesis(
            work, gran_lib, gran_timing, period=0.5, seed=1, effort=0.1
        )
        check(result.netlist)
        assert outputs_equal(src, result.netlist, n_cycles=3)
        assert set(result.placement.sites) == set(result.netlist.instances)
        assert result.timing.critical_path_delay > 0

    def test_criticalities_normalized(self, gran_lib, gran_timing):
        src = make_ripple_design(width=4)
        result = run_physical_synthesis(
            src.copy(), gran_lib, gran_timing, period=0.5, seed=1,
            iterations=1, effort=0.1,
        )
        crit = net_criticalities(result.netlist, result.timing)
        assert crit
        assert all(0.0 <= v <= 1.0 for v in crit.values())
        assert max(crit.values()) == pytest.approx(1.0)
