"""Tests for the parallel matrix runner and the content-addressed cache.

Covers the performance layer's correctness contract: worker count never
changes results, a cache hit is value-equal to a cold computation, and a
corrupted cache entry is detected and recomputed rather than trusted.
"""

import warnings

import pytest

from repro.flow.cache import (
    CacheStats,
    NullCache,
    canonical_netlist,
    stable_hash,
)
from repro.flow.experiments import Matrix, design_scale, run_table1, run_table2
from repro.flow.flow import run_design
from repro.flow.options import FlowOptions
from repro.flow.parallel import resolve_jobs, run_cells

from conftest import make_ripple_design

FAST = FlowOptions(
    place_effort=0.05, place_iterations=1, pack_iterations=1, seed=11
)
CELLS = (("alu", "granular"), ("alu", "lut"))
SCALE = 0.2


def _table_text(runs) -> str:
    """Full-precision dump of both tables' rows (alu-only matrices can't
    use Table.format(), which expects all four designs)."""
    matrix = Matrix(runs=dict(runs))
    t1 = run_table1(matrix)
    t2 = run_table2(matrix)
    return "\n".join(
        [repr(t1.rows[d]) for d in sorted(t1.rows)]
        + [repr(t2.rows[d]) for d in sorted(t2.rows)]
    )


class TestCanonicalForm:
    def test_construction_order_irrelevant(self):
        a = canonical_netlist(make_ripple_design(width=3))
        b = canonical_netlist(make_ripple_design(width=3))
        assert a == b

    def test_distinguishes_netlists(self):
        a = canonical_netlist(make_ripple_design(width=3))
        b = canonical_netlist(make_ripple_design(width=4))
        assert a != b

    def test_stable_hash_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")
        assert stable_hash("a", "b") == stable_hash("a", "b")


class TestResolveJobs:
    def test_default_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(3) == 3

    def test_negative_means_all_cpus(self):
        assert resolve_jobs(-1) >= 1


class TestSerialParallelIdentical:
    def test_tables_identical_for_any_worker_count(self, tmp_path, monkeypatch):
        # Cache off so the parallel run actually recomputes everything;
        # any divergence between worker processes would show up in the
        # formatted tables.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        options = FlowOptions(
            place_effort=0.05, place_iterations=1, pack_iterations=1,
            seed=11, use_cache=False,
        )
        serial = run_cells(CELLS, SCALE, options, jobs=1)
        parallel = run_cells(CELLS, SCALE, options, jobs=2)
        assert list(serial) == list(parallel)
        assert _table_text(serial) == _table_text(parallel)


class TestStageCache:
    def test_hit_equals_cold_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=5, name="cachetest")
        cold = run_design(src.copy(), "granular", FAST)
        assert not any(cold.stage_cached.values())
        assert cold.cache_stats.misses > 0

        warm = run_design(src.copy(), "granular", FAST)
        assert all(warm.stage_cached.values())
        assert warm.cache_stats.hits == len(warm.stage_cached)
        assert warm.flow_a.die_area == cold.flow_a.die_area
        assert warm.flow_b.die_area == cold.flow_b.die_area
        assert warm.flow_a.average_slack == cold.flow_a.average_slack
        assert warm.flow_b.average_slack == cold.flow_b.average_slack
        assert warm.flow_b.plbs_used == cold.flow_b.plbs_used
        assert warm.synthesis.stats.total_area == cold.synthesis.stats.total_area

    def test_option_change_invalidates_downstream(self, tmp_path, monkeypatch):
        from dataclasses import replace

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=5, name="cachetest2")
        run_design(src.copy(), "granular", FAST)
        reseeded = run_design(src.copy(), "granular", replace(FAST, seed=99))
        # Synthesis is seed-independent and reused; everything placed or
        # packed depends on the seed and must recompute.
        assert reseeded.stage_cached["synthesis"]
        assert not reseeded.stage_cached["physical"]
        assert not reseeded.stage_cached["route_a"]

    def test_corrupt_entry_detected_and_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=5, name="corrupttest")
        cold = run_design(src.copy(), "granular", FAST)

        entries = list(tmp_path.rglob("*.pkl"))
        assert entries
        for path in entries:
            raw = bytearray(path.read_bytes())
            raw[-1] ^= 0xFF  # flip one payload byte; digest no longer matches
            path.write_bytes(bytes(raw))

        redo = run_design(src.copy(), "granular", FAST)
        assert not any(redo.stage_cached.values())
        assert redo.cache_stats.corrupt == len(redo.stage_cached)
        assert redo.flow_a.average_slack == cold.flow_a.average_slack
        assert redo.flow_b.die_area == cold.flow_b.die_area
        # The corrupt entries were dropped and rewritten with good data.
        rerun = run_design(src.copy(), "granular", FAST)
        assert all(rerun.stage_cached.values())

    @pytest.mark.parametrize(
        "mangle",
        [
            pytest.param(lambda raw: raw[: len(raw) // 2], id="truncated"),
            pytest.param(lambda raw: b"", id="empty"),
            pytest.param(
                lambda raw: raw.partition(b"\n")[0] + b"\n", id="no-payload"
            ),
        ],
    )
    def test_truncated_entry_detected_and_recomputed(
        self, tmp_path, monkeypatch, mangle
    ):
        """Truncated entries (torn write, full disk) recompute, never crash."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=5, name="trunctest")
        cold = run_design(src.copy(), "granular", FAST)

        entries = list(tmp_path.rglob("*.pkl"))
        assert entries
        for path in entries:
            path.write_bytes(mangle(path.read_bytes()))

        redo = run_design(src.copy(), "granular", FAST)
        assert not any(redo.stage_cached.values())
        assert redo.cache_stats.corrupt == len(redo.stage_cached)
        assert redo.flow_a.average_slack == cold.flow_a.average_slack
        assert redo.flow_b.die_area == cold.flow_b.die_area
        rerun = run_design(src.copy(), "granular", FAST)
        assert all(rerun.stage_cached.values())

    def test_corruption_increments_journal_counter(self, tmp_path, monkeypatch):
        """With observation on, corrupt reads surface as ``cache.corrupt``."""
        from dataclasses import replace

        from repro.obs import journal as obs_journal

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=5, name="corruptobs")
        run_design(src.copy(), "granular", FAST)
        for path in tmp_path.rglob("*.pkl"):
            path.write_bytes(path.read_bytes()[:10])

        observed = replace(FAST, observe=True)
        redo = run_design(src.copy(), "granular", observed)
        assert redo.journal_path is not None
        events = obs_journal.read_journal(redo.journal_path)
        counters = {
            e["name"]: e["value"] for e in events if e["ev"] == "counter"
        }
        assert counters["cache.corrupt"] == len(redo.stage_cached)
        outcomes = [
            e["attrs"]["outcome"]
            for e in events
            if e["ev"] == "point" and e["name"] == "cache"
        ]
        assert outcomes.count("corrupt") == len(redo.stage_cached)

    def test_disabled_cache_writes_nothing(self, tmp_path, monkeypatch):
        from dataclasses import replace

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=4, name="nocache")
        run_design(src.copy(), "granular", replace(FAST, use_cache=False))
        assert not list(tmp_path.rglob("*.pkl"))

    def test_null_cache_is_inert(self):
        cache = NullCache()
        cache.put("stage", "key", {"x": 1})
        assert cache.get("stage", "key") is None
        assert cache.stats.hits == 0

    def test_stats_merge(self):
        a = CacheStats(hits=1, misses=2, corrupt=0, bytes_read=10, bytes_written=20)
        b = CacheStats(hits=3, misses=1, corrupt=1, bytes_read=5, bytes_written=2)
        a.merge(b)
        assert (a.hits, a.misses, a.corrupt) == (4, 3, 1)
        assert "4 hits" in a.format()


class TestPerformanceReport:
    def test_design_run_reports_stages(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        src = make_ripple_design(width=4, name="perfreport")
        run = run_design(src.copy(), "granular", FAST)
        report = run.performance_report()
        for stage in ("synthesis", "physical", "route_a", "packing", "route_b"):
            assert stage in report
        assert "cache:" in report
        assert run.total_seconds > 0


class TestDesignScaleWarning:
    def test_bad_scale_warns_with_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "garbage-value")
        with pytest.warns(RuntimeWarning, match="garbage-value"):
            assert design_scale() == 1.0

    def test_good_scale_silent(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.75")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert design_scale() == 0.75
