"""Additional coverage for the RTL helper library and design behaviors."""

import numpy as np
import pytest

from repro.designs.firewire import build_firewire
from repro.designs.rtl import (
    crc_step,
    equality,
    increment,
    mux_tree,
    mux_word,
    register_word_enable,
    subtractor,
)
from repro.netlist.build import CONST0, CONST1, NetlistBuilder
from repro.netlist.simulate import random_vectors, simulate
from repro.netlist.validate import check


def input_value(vectors, name, width, lane=0):
    out = 0
    for i in range(width):
        out |= ((int(vectors[f"{name}[{i}]"][0]) >> lane) & 1) << i
    return out


def word_value(values, names, lane=0):
    out = 0
    for i, net in enumerate(names):
        out |= ((int(values[net][0]) >> lane) & 1) << i
    return out


class TestArithmeticHelpers:
    def test_subtractor(self):
        b = NetlistBuilder("t")
        xs = b.input_word("x", 5)
        ys = b.input_word("y", 5)
        diff, _ = subtractor(b, xs, ys)
        nets = b.output_word(diff, "d")
        vectors = random_vectors(b.netlist.inputs, 1, seed=0)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(32):
            x = input_value(vectors, "x", 5, lane)
            y = input_value(vectors, "y", 5, lane)
            assert word_value(values, nets, lane) == (x - y) & 0x1F

    def test_increment(self):
        b = NetlistBuilder("t")
        xs = b.input_word("x", 4)
        inc, carry = increment(b, xs)
        nets = b.output_word(inc, "y")
        b.output(carry, "co")
        vectors = random_vectors(b.netlist.inputs, 1, seed=1)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(16):
            x = input_value(vectors, "x", 4, lane)
            assert word_value(values, nets, lane) == (x + 1) & 0xF
            assert ((int(values["co"][0]) >> lane) & 1) == (x == 0xF)

    def test_width_mismatch_rejected(self):
        from repro.designs.rtl import ripple_adder

        b = NetlistBuilder("t")
        with pytest.raises(ValueError):
            ripple_adder(b, b.input_word("x", 3), b.input_word("y", 2))


class TestMuxHelpers:
    def test_mux_tree_four_way(self):
        b = NetlistBuilder("t")
        words = [b.input_word(f"w{i}", 3) for i in range(4)]
        sel = b.input_word("s", 2)
        out = mux_tree(b, sel, words)
        nets = b.output_word(out, "y")
        vectors = random_vectors(b.netlist.inputs, 1, seed=2)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(16):
            s = input_value(vectors, "s", 2, lane)
            expected = input_value(vectors, f"w{s}", 3, lane)
            assert word_value(values, nets, lane) == expected

    def test_mux_tree_odd_count(self):
        b = NetlistBuilder("t")
        words = [b.input_word(f"w{i}", 2) for i in range(3)]
        sel = b.input_word("s", 2)
        out = mux_tree(b, sel, words)
        assert len(out) == 2  # shape preserved even with a ragged level

    def test_mux_word_selects(self):
        b = NetlistBuilder("t")
        w0 = b.input_word("a", 2)
        w1 = b.input_word("c", 2)
        s = b.input("s")
        out = mux_word(b, s, w0, w1)
        nets = b.output_word(out, "y")
        ones = np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
        vectors = random_vectors(b.netlist.inputs, 1, seed=3)
        vectors["s"] = ones
        values = simulate(b.netlist, vectors)[0]
        assert word_value(values, nets) == input_value(vectors, "c", 2)


class TestSequentialHelpers:
    def test_register_word_enable_holds(self):
        b = NetlistBuilder("t")
        data = b.input_word("d", 3)
        enable = b.input("en")
        q = register_word_enable(b, data, enable, name="r")
        nets = b.output_word(q, "q")
        check(b.netlist)
        zeros = np.zeros(1, dtype=np.uint64)
        ones = np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
        stim = {f"d[{i}]": ones for i in range(3)}
        # Disabled: stays at reset value 0.
        history = simulate(b.netlist, {**stim, "en": zeros}, n_cycles=3)
        assert word_value(history[-1], nets) == 0
        # Enabled: captures the data.
        history = simulate(b.netlist, {**stim, "en": ones}, n_cycles=3)
        assert word_value(history[-1], nets) == 0b111

    def test_crc_step_shifts(self):
        b = NetlistBuilder("t")
        state = b.input_word("s", 4)
        data = b.input("d")
        nxt = crc_step(b, state, data, taps=(0,))
        nets = b.output_word(nxt, "n")
        vectors = random_vectors(b.netlist.inputs, 1, seed=4)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(16):
            s = input_value(vectors, "s", 4, lane)
            d = (int(vectors["d"][0]) >> lane) & 1
            feedback = ((s >> 3) & 1) ^ d
            expected = ((s << 1) & 0xF & ~1) | feedback
            assert word_value(values, nets, lane) == expected

    def test_equality_constant_word(self):
        b = NetlistBuilder("t")
        xs = b.input_word("x", 3)
        match = equality(b, xs, [CONST1, CONST0, CONST1])
        b.output(match, "m")
        vectors = random_vectors(b.netlist.inputs, 1, seed=5)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(8):
            x = input_value(vectors, "x", 3, lane)
            assert ((int(values["m"][0]) >> lane) & 1) == (x == 0b101)


class TestFirewireBehavior:
    def test_link_fsm_walks_to_active(self):
        netlist = build_firewire(fifo_depth=2)
        ones = np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
        zeros = np.zeros(1, dtype=np.uint64)
        stim = {name: zeros for name in netlist.inputs}
        stim.update(bus_request=ones, bus_grant=ones, tx_ready=ones)
        history = simulate(netlist, stim, n_cycles=5)
        # State encoding: IDLE=0 ARB=1 GRANTED=2 ACTIVE=3.
        states = [
            word_value(h, [f"link_state[{i}]" for i in range(3)])
            for h in history
        ]
        assert states[0] == 0
        assert 3 in states  # reaches ACTIVE within a few cycles

    def test_fifo_delays_data(self):
        depth = 3
        netlist = build_firewire(fifo_depth=depth)
        ones = np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
        zeros = np.zeros(1, dtype=np.uint64)
        stim = {name: zeros for name in netlist.inputs}
        stim["data[0]"] = ones
        history = simulate(netlist, stim, n_cycles=depth + 1)
        # The shift register needs `depth` cycles to surface the bit.
        assert int(history[depth - 1]["tx_data[0]"][0]) == 0
        assert int(history[depth]["tx_data[0]"][0]) != 0
