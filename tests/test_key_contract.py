"""Property tests for the cache-key / perf-knob contract.

The contract under test, driven off ``dataclasses.fields(FlowOptions)``
so a newly added field is covered automatically:

* every field NOT in PERF_KNOBS perturbs ``request_key`` — a semantic
  change can never be served a stale coalesced result;
* every field IN PERF_KNOBS leaves ``request_key`` unchanged — a knob
  flip can never force a spurious recompute;
* ``utilization`` (dead config before this audit existed) genuinely
  reaches flow-a die sizing and the physical stage key;
* the serve-side submittable list stays derived, not hand-listed.
"""

from dataclasses import fields as dataclass_fields
from dataclasses import replace

import pytest

from conftest import make_ripple_design

from repro.flow.cache import StageCache
from repro.flow.flow import request_key, stage_keys
from repro.flow.options import PERF_KNOBS, FlowOptions
from repro.place.grid import grid_for_netlist
from repro.serve.jobs import _SUBMITTABLE_OPTIONS


NETLIST = make_ripple_design()
CACHE = StageCache(enabled=False)
FIELD_NAMES = sorted(f.name for f in dataclass_fields(FlowOptions))


def perturbed(options, name):
    """A copy of ``options`` with field ``name`` changed to a new,
    still-valid value."""
    value = getattr(options, name)
    if name == "arch":
        return replace(options, arch="lut" if value != "lut" else "granular")
    if name == "schedule":
        return replace(
            options, schedule="cell" if value != "cell" else "stage"
        )
    if name == "sa_engine":
        return replace(
            options, sa_engine="object" if value != "object" else "array"
        )
    if isinstance(value, bool):
        return replace(options, **{name: not value})
    if isinstance(value, int):
        return replace(options, **{name: value + 1})
    if isinstance(value, float):
        return replace(options, **{name: value * 2 + 0.125})
    raise AssertionError(
        f"no perturbation strategy for field {name!r} "
        f"({type(value).__name__}); extend perturbed()"
    )


class TestRequestKeyContract:
    @pytest.mark.parametrize("name", FIELD_NAMES)
    def test_field_perturbs_key_iff_semantic(self, name):
        base = FlowOptions()
        before = request_key(CACHE, NETLIST, base)
        after = request_key(CACHE, NETLIST, perturbed(base, name))
        if name in PERF_KNOBS:
            assert after == before, (
                f"perf knob {name!r} changed request_key; a knob flip "
                f"would force a spurious recompute"
            )
        else:
            assert after != before, (
                f"semantic field {name!r} left request_key unchanged; "
                f"a stale coalesced result could be served"
            )

    def test_knob_set_names_real_fields(self):
        assert PERF_KNOBS <= set(FIELD_NAMES)

    def test_request_key_is_deterministic(self):
        base = FlowOptions()
        assert request_key(CACHE, NETLIST, base) == request_key(
            CACHE, NETLIST, FlowOptions()
        )


class TestUtilizationIsLive:
    def test_utilization_sizes_the_flow_a_die(self):
        relaxed = grid_for_netlist(NETLIST, utilization=0.5)
        packed = grid_for_netlist(NETLIST, utilization=0.9)
        assert relaxed.area_um2 > packed.area_um2

    def test_utilization_perturbs_physical_key_onward(self):
        base = FlowOptions()
        before = stage_keys(CACHE, NETLIST, base)
        after = stage_keys(
            CACHE, NETLIST, replace(base, utilization=0.55)
        )
        assert before["synthesis"] == after["synthesis"]
        for stage in ("physical", "route_a", "packing", "route_b"):
            assert before[stage] != after[stage], stage


class TestSubmittableDerivation:
    def test_submittable_options_follow_the_contract(self):
        expected = sorted(
            (set(FIELD_NAMES) - PERF_KNOBS - {"arch"}) | {"check"}
        )
        assert sorted(_SUBMITTABLE_OPTIONS) == expected

    def test_check_knob_is_resubmittable(self):
        # The regression this family exists for: 'check' is a perf
        # knob (excluded from keys) yet explicitly submittable.
        assert "check" in PERF_KNOBS
        assert "check" in _SUBMITTABLE_OPTIONS
