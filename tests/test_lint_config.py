"""The lint toolchain config shipped for CI (ruff/mypy/pyproject).

ruff and mypy are CI-only tools; when they happen to be installed
locally the tests below run them for real, otherwise they skip and only
the configuration itself is validated.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
PYPROJECT = (REPO / "pyproject.toml").read_text(encoding="utf-8")


class TestConfigPresence:
    def test_ruff_sections_exist(self):
        assert "[tool.ruff]" in PYPROJECT
        assert "[tool.ruff.lint]" in PYPROJECT

    def test_mypy_is_strict_on_check_package(self):
        assert "[tool.mypy]" in PYPROJECT
        assert '"repro.check.*"' in PYPROJECT
        assert "disallow_untyped_defs = true" in PYPROJECT

    def test_ci_runs_lint_and_self_check(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text(
            encoding="utf-8"
        )
        assert "ruff check" in ci
        assert "mypy" in ci
        assert "check --self" in ci


class TestToolsWhenAvailable:
    @pytest.mark.skipif(
        shutil.which("ruff") is None, reason="ruff not installed"
    )
    def test_ruff_clean(self):
        proc = subprocess.run(
            ["ruff", "check", "."],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(
        shutil.which("mypy") is None, reason="mypy not installed"
    )
    def test_mypy_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
