"""CLI tests for ``repro check`` and the ``--check`` flow flag."""

import json

import pytest

from repro.cli import main


class TestListRules:
    def test_catalog_lists_every_family(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("NL001", "LB003", "PK005", "PL002", "RT001",
                        "EQ001", "DT001"):
            assert rule_id in out

    def test_catalog_carries_paper_refs(self, capsys):
        main(["check", "--list-rules"])
        out = capsys.readouterr().out
        assert "Figure" in out or "Section" in out


class TestSelfLint:
    def test_self_lint_is_clean(self, capsys):
        assert main(["-q", "check", "--self", "--fail-on", "warning"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_self_lint_json(self, capsys):
        assert main(["-q", "check", "--self", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"] == {"error": 0, "warning": 0, "info": 0}

    def test_self_lint_sarif(self, capsys):
        assert main(["-q", "check", "--self", "--sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-check"
        assert any(r["id"] == "DT001" for r in driver["rules"])


class TestArtifactCheck:
    def test_one_design_checks_clean(self, capsys):
        code = main([
            "-q", "check", "alu", "--arch", "granular",
            "--scale", "0.25", "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["error"] == 0

    def test_stage_and_rule_selection(self, capsys):
        code = main([
            "-q", "check", "alu", "--arch", "granular", "--scale", "0.25",
            "--stage", "equivalence", "--rules", "EQ001,EQ002,EQ003",
            "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in doc["findings"]}
        assert rules <= {"EQ001", "EQ002", "EQ003"}

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError, match="unknown rule id"):
            main(["-q", "check", "--self", "--rules", "XX999"])

    def test_unknown_design_rejected(self, capsys):
        assert main(["-q", "check", "nonesuch"]) == 2
        assert "unknown design" in capsys.readouterr().err


class TestFlowCheckFlag:
    def test_flow_check_passes_clean_design(self, capsys):
        code = main([
            "-q", "flow", "alu", "--arch", "granular",
            "--scale", "0.25", "--check", "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["design"] == "alu"
