"""Golden-findings tests: every rule id fires on a corrupted artifact.

Each test deliberately corrupts one invariant in an otherwise-clean
artifact and asserts that exactly the targeted rule reports it; clean
artifacts must produce no error findings.  This is the proof that the
analyzers actually detect the defect class they claim to.
"""

import copy
from dataclasses import replace

import pytest

from repro.check import (
    Severity,
    check_equivalence,
    check_netlist,
    check_packing,
    check_placement,
    check_realization,
    check_realization_table,
    check_routing,
    lint_source,
)
from repro.flow.flow import FlowOptions, run_design
from repro.logic.truthtable import TruthTable
from repro.netlist import NetlistBuilder
from repro.pack.quadrisection import SlotAssignment
from repro.route.grid import RoutingGrid
from repro.route.pathfinder import RoutedNet, RoutingResult
from repro.synth.realize import compaction_table

from conftest import make_ripple_design

FAST = FlowOptions(place_effort=0.05, place_iterations=1, pack_iterations=1)


@pytest.fixture(scope="module")
def run():
    """One full granular flow run whose artifacts the tests corrupt."""
    src = make_ripple_design(width=6, name="checkfix")
    return run_design(src, "granular", FAST)


def rule_ids(findings):
    return {f.rule_id for f in findings}


def two_gate_netlist():
    b = NetlistBuilder("tg")
    x = b.input("x")
    y = b.input("y")
    u = b.AND(x, y)
    v = b.XOR(u, y)
    b.output(v, "f")
    return b.netlist


def pin_of(inst, net_name):
    return next(p for p, n in inst.pin_nets.items() if n == net_name)


# ---------------------------------------------------------------------------
# NL: netlist structure
# ---------------------------------------------------------------------------
class TestNetlistRules:
    def test_clean_netlist_has_no_findings(self):
        assert check_netlist(two_gate_netlist()) == []

    def test_nl001_undriven_net(self):
        n = two_gate_netlist()
        n.add_net("floating")
        assert "NL001" in rule_ids(check_netlist(n))

    def test_nl002_driven_input(self):
        n = two_gate_netlist()
        driven = next(
            name for name, net in n.nets.items() if net.driver is not None
        )
        n.nets[driven].is_input = True
        assert "NL002" in rule_ids(check_netlist(n))

    def test_nl003_broken_driver_ref(self):
        n = two_gate_netlist()
        driven = next(
            name for name, net in n.nets.items() if net.driver is not None
        )
        n.nets[driven].driver = ("ghost", "Y")
        assert "NL003" in rule_ids(check_netlist(n))

    def test_nl004_broken_sink_ref(self):
        n = two_gate_netlist()
        n.nets["x"].sinks.append(("ghost", "A"))
        assert "NL004" in rule_ids(check_netlist(n))

    def test_nl005_pin_on_unknown_net(self):
        n = two_gate_netlist()
        inst = next(iter(n.instances.values()))
        pin = next(iter(inst.pin_nets))
        inst.pin_nets[pin] = "missing"
        assert "NL005" in rule_ids(check_netlist(n))

    def test_nl006_missing_output_net(self):
        n = two_gate_netlist()
        n.outputs.append("ghost")
        assert "NL006" in rule_ids(check_netlist(n))

    def test_nl007_combinational_cycle(self):
        n = two_gate_netlist()
        g_and = next(
            i for i in n.instances.values()
            if "x" in i.pin_nets.values()
        )
        # Rewire the AND's 'x' input to the XOR's output net (which
        # consumes the AND's output): a two-gate loop with consistent
        # back-references everywhere.
        xor_out = next(
            name for name, net in n.nets.items()
            if net.driver is not None
            and n.instances[net.driver[0]] is not g_and
        )
        pin = pin_of(g_and, "x")
        n.nets["x"].sinks.remove((g_and.name, pin))
        g_and.pin_nets[pin] = xor_out
        n.nets[xor_out].sinks.append((g_and.name, pin))
        assert "NL007" in rule_ids(check_netlist(n))

    def test_nl008_multi_driven_net(self):
        n = two_gate_netlist()
        insts = list(n.instances.values())
        out_pin = insts[1].cell.output_pin
        insts[1].pin_nets[out_pin] = insts[0].output_net
        assert "NL008" in rule_ids(check_netlist(n))

    def test_nl009_missing_config(self, run):
        n = run.synthesis.netlist.copy()
        inst = next(
            i for i in n.instances.values() if not i.is_sequential
        )
        inst.config = None
        assert "NL009" in rule_ids(check_netlist(n))

    def test_nl009_infeasible_config(self, run):
        n = run.synthesis.netlist.copy()
        inst = next(
            i for i in n.instances.values()
            if not i.is_sequential
            and i.cell.feasible is not None
            and i.config is not None
        )
        bad = TruthTable(inst.config.n_inputs, 0b01)
        if bad in inst.cell.feasible:
            bad = ~bad
        assert bad not in inst.cell.feasible
        inst.config = bad
        assert "NL009" in rule_ids(check_netlist(n))

    def test_nl010_dead_cone_is_warning(self):
        b = NetlistBuilder("dead")
        x = b.input("x")
        y = b.input("y")
        b.AND(x, y)                      # never consumed: dead cone
        b.output(b.XOR(x, y), "f")
        findings = check_netlist(b.netlist)
        assert rule_ids(findings) == {"NL010"}
        assert all(f.severity is Severity.WARNING for f in findings)


# ---------------------------------------------------------------------------
# LB: realization tables
# ---------------------------------------------------------------------------
class TestLibraryRules:
    @pytest.fixture(scope="class")
    def table(self):
        return compaction_table("granular")

    def test_clean_entry(self, table):
        key = next(iter(sorted(table)))
        assert check_realization(key, table[key]) == []

    def test_lb001_key_function_mismatch(self, table):
        key = next(k for k in sorted(table) if k[0] == 2)
        wrong_key = (2, key[1] ^ 0b1111)
        findings = check_realization(wrong_key, table[key])
        assert "LB001" in rule_ids(findings)

    def test_lb001_steps_compute_other_function(self, table):
        # Flip one step's config to another feasible config of the same
        # cell so only the composition check can catch it.
        key = next(
            k for k in sorted(table)
            if k[0] == 2 and len(table[k].steps) == 1
            and table[k].steps[0].config.n_inputs == 2
        )
        real = table[key]
        step = real.steps[0]
        corrupt = replace(real, steps=(
            replace(step, config=step.config.flip_input(0)),
        ))
        assert "LB001" in rule_ids(check_realization(key, corrupt))

    def test_lb002_unknown_cell(self, table):
        key = next(iter(sorted(table)))
        real = table[key]
        corrupt = replace(real, steps=(
            replace(real.steps[0], cell_name="BOGUS"),
        ) + real.steps[1:])
        assert "LB002" in rule_ids(check_realization(key, corrupt))

    def test_lb002_out_of_range_ref(self, table):
        key = next(
            k for k in sorted(table)
            if k[0] == 2 and len(table[k].steps) == 1
        )
        real = table[key]
        step = real.steps[0]
        corrupt = replace(real, steps=(
            replace(step, refs=(("leaf", 7),) + step.refs[1:]),
        ))
        assert "LB002" in rule_ids(check_realization(key, corrupt))

    def test_lb003_missing_coverage(self):
        findings = check_realization_table(
            {}, require_full_3input_coverage=True, label="empty",
        )
        assert "LB003" in rule_ids(findings)

    def test_lb003_full_table_passes(self, table):
        findings = check_realization_table(
            table, require_full_3input_coverage=True, label="granular",
        )
        assert "LB003" not in rule_ids(findings)

    def test_lb004_area_mismatch(self, table):
        key = next(iter(sorted(table)))
        corrupt = replace(table[key], area=table[key].area + 1.0)
        findings = check_realization(key, corrupt)
        assert "LB004" in rule_ids(findings)
        assert all(
            f.severity is Severity.WARNING
            for f in findings if f.rule_id == "LB004"
        )


# ---------------------------------------------------------------------------
# PK: packing legality
# ---------------------------------------------------------------------------
class TestPackingRules:
    def test_clean_packing(self, run):
        findings = check_packing(run.packed.netlist, run.packed.packing)
        assert [f for f in findings if f.severity is Severity.ERROR] == []

    def test_pk001_overfull_plb_and_pk006_pin_budget(self, run):
        packing = copy.deepcopy(run.packed.packing)
        # Pile every instance into PLB (0, 0), keeping each one's slot
        # type, so only budgets are violated.
        for name, a in packing.assignments.items():
            packing.assignments[name] = SlotAssignment(
                plb=(0, 0), slot=a.slot,
            )
        ids = rule_ids(check_packing(run.packed.netlist, packing))
        assert "PK001" in ids
        assert "PK006" in ids

    def test_pk002_incompatible_slot(self, run):
        packing = copy.deepcopy(run.packed.packing)
        arch = packing.arch
        name, a = next(iter(sorted(packing.assignments.items())))
        cell = run.packed.netlist.instances[name].cell
        bad_slot = next(
            s for s in arch.slots if s not in arch.hosting_slots(cell.name)
        )
        packing.assignments[name] = SlotAssignment(plb=a.plb, slot=bad_slot)
        assert "PK002" in rule_ids(
            check_packing(run.packed.netlist, packing)
        )

    def test_pk003_out_of_array(self, run):
        packing = copy.deepcopy(run.packed.packing)
        name, a = next(iter(sorted(packing.assignments.items())))
        packing.assignments[name] = SlotAssignment(
            plb=(packing.cols + 5, 0), slot=a.slot,
        )
        assert "PK003" in rule_ids(
            check_packing(run.packed.netlist, packing)
        )

    def test_pk004_missing_and_ghost_assignments(self, run):
        packing = copy.deepcopy(run.packed.packing)
        name, a = next(iter(sorted(packing.assignments.items())))
        del packing.assignments[name]
        packing.assignments["ghost"] = a
        findings = check_packing(run.packed.netlist, packing)
        pk004 = [f for f in findings if f.rule_id == "PK004"]
        assert len(pk004) == 2

    def test_pk005_non_nand_config_in_wi_slot(self, run):
        netlist = run.packed.netlist.copy()
        packing = copy.deepcopy(run.packed.packing)
        name = next(
            n for n, a in sorted(packing.assignments.items())
            if a.slot in ("ND2WI", "ND3WI")
            and netlist.instances[n].config is not None
            and netlist.instances[n].config.n_inputs == 2
        )
        netlist.instances[name].config = TruthTable(2, 0b0110)  # XOR
        assert "PK005" in rule_ids(check_packing(netlist, packing))


# ---------------------------------------------------------------------------
# PL: placement
# ---------------------------------------------------------------------------
class TestPlacementRules:
    def test_clean_placement(self, run):
        assert check_placement(
            run.physical.netlist, run.physical.placement
        ) == []

    def test_pl001_site_outside_grid(self, run):
        placement = copy.deepcopy(run.physical.placement)
        name = next(iter(sorted(placement.sites)))
        placement.sites[name] = (placement.grid.cols + 7, 0)
        assert "PL001" in rule_ids(
            check_placement(run.physical.netlist, placement)
        )

    def test_pl002_shared_site(self, run):
        placement = copy.deepcopy(run.physical.placement)
        a, b = sorted(placement.sites)[:2]
        placement.sites[b] = placement.sites[a]
        assert "PL002" in rule_ids(
            check_placement(run.physical.netlist, placement)
        )

    def test_pl003_missing_and_ghost_sites(self, run):
        placement = copy.deepcopy(run.physical.placement)
        name = next(iter(sorted(placement.sites)))
        placement.sites["ghost"] = placement.sites.pop(name)
        findings = check_placement(run.physical.netlist, placement)
        pl003 = [f for f in findings if f.rule_id == "PL003"]
        assert len(pl003) == 2


# ---------------------------------------------------------------------------
# RT: routing
# ---------------------------------------------------------------------------
def _routed_case():
    """A clean synthetic routing outcome: one 4-bin straight net."""
    grid = RoutingGrid(cols=4, rows=4, bin_pitch=10.0, tracks=2)
    bins = {(0, 0), (1, 0), (2, 0), (3, 0)}
    edges = {((0, 0), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (3, 0))}
    result = RoutingResult(
        grid=grid,
        nets={"n1": RoutedNet(name="n1", bins=set(bins), edges=set(edges))},
        iterations=1,
        overused_edges=0,
    )
    net_points = {"n1": [(5.0, 5.0), (35.0, 5.0)]}
    return result, net_points


class TestRoutingRules:
    def test_clean_routing(self):
        result, points = _routed_case()
        assert check_routing(result, points) == []

    def test_clean_flow_routing(self, run):
        points = run.packed.packing.net_pin_points(run.packed.netlist)
        assert check_routing(run.flow_b.routing, points) == []

    def test_rt001_residual_overuse(self):
        result, points = _routed_case()
        result.overused_edges = 3
        assert "RT001" in rule_ids(check_routing(result, points))

    def test_rt002_routed_net_without_pins(self):
        result, points = _routed_case()
        result.nets["ghost"] = RoutedNet(name="ghost", bins={(0, 0)})
        assert "RT002" in rule_ids(check_routing(result, points))

    def test_rt002_unrouted_multibin_net(self):
        result, points = _routed_case()
        del result.nets["n1"]
        assert "RT002" in rule_ids(check_routing(result, points))

    def test_rt003_terminal_not_covered(self):
        result, points = _routed_case()
        net = result.nets["n1"]
        net.bins.discard((3, 0))
        net.edges.discard(((2, 0), (3, 0)))
        assert "RT003" in rule_ids(check_routing(result, points))

    def test_rt003_disconnected_tree(self):
        result, points = _routed_case()
        result.nets["n1"].edges.discard(((1, 0), (2, 0)))
        assert "RT003" in rule_ids(check_routing(result, points))

    def test_rt004_non_adjacent_edge(self):
        result, points = _routed_case()
        result.nets["n1"].edges.add(((0, 0), (2, 2)))
        assert "RT004" in rule_ids(check_routing(result, points))

    def test_rt004_edge_off_grid(self):
        result, points = _routed_case()
        result.nets["n1"].edges.add(((3, 0), (4, 0)))
        assert "RT004" in rule_ids(check_routing(result, points))


# ---------------------------------------------------------------------------
# EQ: formal equivalence
# ---------------------------------------------------------------------------
def _comb(name, fn):
    b = NetlistBuilder(name)
    x = b.input("x")
    y = b.input("y")
    b.output(fn(b, x, y), "f")
    return b.netlist


class TestEquivalenceRules:
    def test_equivalent_pair_reports_exhaustive_info(self):
        ref = _comb("ref", lambda b, x, y: b.AND(x, y))
        impl = _comb("impl", lambda b, x, y: b.NOR(b.NOT(x), b.NOT(y)))
        findings = check_equivalence(ref, impl)
        assert rule_ids(findings) == {"EQ003"}
        assert "exhaustive" in findings[0].message

    def test_eq001_functional_mismatch(self):
        ref = _comb("ref", lambda b, x, y: b.AND(x, y))
        impl = _comb("impl", lambda b, x, y: b.OR(x, y))
        assert "EQ001" in rule_ids(check_equivalence(ref, impl))

    def test_eq002_port_mismatch(self):
        ref = _comb("ref", lambda b, x, y: b.AND(x, y))
        b = NetlistBuilder("impl")
        x = b.input("x")
        y = b.input("y")
        z = b.input("z")
        b.output(b.AND(x, b.AND(y, z)), "f")
        assert rule_ids(check_equivalence(ref, b.netlist)) == {"EQ002"}

    def test_wide_designs_fall_back_to_sampling(self):
        def wide(name):
            b = NetlistBuilder(name)
            word = b.input_word("w", 10)
            acc = word[0]
            for bit in word[1:]:
                acc = b.XOR(acc, bit)
            b.output(acc, "f")
            return b.netlist

        findings = check_equivalence(wide("a"), wide("b"))
        assert rule_ids(findings) == {"EQ003"}
        assert "sampled" in findings[0].message

    def test_flow_run_equivalence(self, run):
        reference = run.synthesis.pre_compaction_netlist
        assert reference is not None
        findings = check_equivalence(reference, run.packed.netlist)
        assert not any(f.severity is Severity.ERROR for f in findings)


# ---------------------------------------------------------------------------
# DT: determinism self-lint
# ---------------------------------------------------------------------------
class TestSelfLint:
    def test_dt001_global_rng(self):
        src = "import random\nx = random.random()\n"
        assert "DT001" in rule_ids(lint_source(src, "m.py"))

    def test_dt001_unseeded_instance(self):
        assert "DT001" in rule_ids(
            lint_source("import random\nr = random.Random()\n", "m.py")
        )
        assert lint_source(
            "import random\nr = random.Random(7)\n", "m.py"
        ) == []

    def test_dt001_unseeded_default_rng(self):
        src = "import numpy as np\ng = np.random.default_rng()\n"
        assert "DT001" in rule_ids(lint_source(src, "m.py"))
        assert lint_source(
            "import numpy as np\ng = np.random.default_rng(3)\n", "m.py"
        ) == []

    def test_dt002_wall_clock(self):
        src = "import time\nt = time.perf_counter()\n"
        assert "DT002" in rule_ids(lint_source(src, "src/repro/flow/x.py"))

    def test_dt002_obs_modules_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, "src/repro/obs/x.py") == []

    def test_dt003_set_iteration(self):
        assert "DT003" in rule_ids(
            lint_source("for v in set(xs):\n    pass\n", "m.py")
        )
        assert "DT003" in rule_ids(
            lint_source("ys = [v for v in {a for a in xs}]\n", "m.py")
        )
        assert "DT003" in rule_ids(
            lint_source("ys = list(set(xs))\n", "m.py")
        )

    def test_dt003_sorted_is_clean(self):
        assert lint_source(
            "for v in sorted(set(xs)):\n    pass\n", "m.py"
        ) == []
        assert lint_source(
            "for v in dict.fromkeys(xs):\n    pass\n", "m.py"
        ) == []

    def test_dt004_mutable_default(self):
        src = "def f(a, b=[]):\n    return b\n"
        findings = lint_source(src, "m.py")
        assert rule_ids(findings) == {"DT004"}
        assert all(f.severity is Severity.ERROR for f in findings)
        assert lint_source("def f(a, b=()):\n    return b\n", "m.py") == []

    def test_dt005_hash_outside_dunder(self):
        assert "DT005" in rule_ids(
            lint_source("k = hash((1, 2))\n", "m.py")
        )
        clean = (
            "class C:\n"
            "    def __hash__(self):\n"
            "        return hash((1, 2))\n"
        )
        assert lint_source(clean, "m.py") == []

    def test_suppression_comment(self):
        src = (
            "import time\n"
            "t = time.time()  # check: allow(DT002) timing report\n"
        )
        assert lint_source(src, "src/repro/flow/x.py") == []

    def test_suppression_is_rule_specific(self):
        src = (
            "import time\n"
            "t = time.time()  # check: allow(DT001)\n"
        )
        assert "DT002" in rule_ids(lint_source(src, "src/repro/flow/x.py"))

    def test_syntax_error_is_reported(self):
        findings = lint_source("def broken(:\n", "m.py")
        assert findings and findings[0].severity is Severity.ERROR
