"""Tests for the stage-graph scheduler (``repro.flow.scheduler``).

Three contracts:

* **Structure** — the task DAG mirrors ``STAGE_INPUTS`` exactly, dedups
  nodes on (stage, key), collapses already-cached keys, and orders ready
  tasks critical-path-first.
* **Determinism** — serial, ``schedule="cell"``, and ``schedule="stage"``
  produce bit-identical tables at any ``--jobs``; the transport path
  (``use_cache=False``) persists nothing.
* **Failure isolation** — a raising stage task fails only the cells that
  transitively depend on it, surfaces the original worker traceback, and
  leaves every other cell's finished result intact.
"""

from dataclasses import replace

import pytest

from repro.flow.flow import STAGE_INPUTS, STAGES
from repro.flow.options import FlowOptions
from repro.flow.parallel import run_cells
from repro.flow.scheduler import (
    STAGE_WEIGHTS,
    StageFailure,
    build_task_graph,
)

from test_parallel_cache import _table_text

FAST = FlowOptions(
    place_effort=0.05, place_iterations=1, pack_iterations=1, seed=11
)
CELLS = [("alu", "granular"), ("alu", "lut")]
SCALE = 0.15


def _keys_for(cells, tag=""):
    """Synthetic per-cell stage-key chains (unique unless cells repeat)."""
    return {
        cell: {stage: f"{tag}{cell[0]}-{cell[1]}-{stage}" for stage in STAGES}
        for cell in cells
    }


class TestTaskGraph:
    def test_full_matrix_is_forty_tasks(self):
        cells = [(d, a) for d in ("alu", "firewire", "fpu", "netswitch")
                 for a in ("granular", "lut")]
        tasks = build_task_graph(cells, _keys_for(cells))
        assert len(tasks) == 40
        assert all(t.state == "pending" for t in tasks)

    def test_edges_mirror_stage_inputs(self):
        cells = CELLS[:1]
        tasks = build_task_graph(cells, _keys_for(cells))
        by_stage = {t.stage: t for t in tasks}
        for stage, parents in STAGE_INPUTS.items():
            assert by_stage[stage].deps == {
                by_stage[p].tid for p in parents
            }
        for stage in STAGES:
            assert by_stage[stage].waiting == len(STAGE_INPUTS[stage])

    def test_duplicate_cells_collapse(self):
        cells = [("alu", "granular"), ("alu", "granular2")]
        keys = _keys_for(cells)
        # Same design + options -> identical chains for both cells.
        keys[cells[1]] = keys[cells[0]]
        tasks = build_task_graph(cells, keys)
        assert len(tasks) == len(STAGES)
        assert all(t.cells == cells for t in tasks)

    def test_cached_nodes_collapse_and_unblock_dependents(self):
        cells = CELLS[:1]
        keys = _keys_for(cells)
        cached = {
            ("synthesis", keys[cells[0]]["synthesis"]),
            ("physical", keys[cells[0]]["physical"]),
        }
        tasks = build_task_graph(cells, keys, cached=cached)
        by_stage = {t.stage: t for t in tasks}
        assert by_stage["synthesis"].state == "cached"
        assert by_stage["synthesis"].hit
        assert by_stage["physical"].state == "cached"
        # route_a/packing depend only on cached stages: ready at once.
        assert by_stage["route_a"].waiting == 0
        assert by_stage["packing"].waiting == 0
        # route_b still waits on the (uncached) packing task.
        assert by_stage["route_b"].deps == {by_stage["packing"].tid}

    def test_priorities_are_critical_path_first(self):
        cells = CELLS[:1]
        tasks = build_task_graph(cells, _keys_for(cells))
        prio = {t.stage: t.priority for t in tasks}
        # Leaves carry their own weight; interior nodes add the heaviest
        # downstream path.
        assert prio["route_b"] == STAGE_WEIGHTS["route_b"]
        assert prio["route_a"] == STAGE_WEIGHTS["route_a"]
        assert prio["packing"] == pytest.approx(
            STAGE_WEIGHTS["packing"] + prio["route_b"]
        )
        assert prio["physical"] == pytest.approx(
            STAGE_WEIGHTS["physical"] + max(prio["route_a"], prio["packing"])
        )
        assert prio["synthesis"] == pytest.approx(
            STAGE_WEIGHTS["synthesis"] + prio["physical"]
        )
        assert (
            prio["synthesis"] > prio["physical"] > prio["packing"]
            > prio["route_a"]
        )


class TestBitIdenticalSchedules:
    def test_all_schedules_identical_at_all_job_counts(
        self, tmp_path, monkeypatch
    ):
        """Serial vs cell pool vs stage graph at jobs 1/2/4: same bytes.

        Cache off, so every run recomputes every stage from scratch —
        any drift between the execution modes would change the
        full-precision table text.
        """
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        options = replace(FAST, use_cache=False)
        serial = _table_text(
            run_cells(CELLS, SCALE, replace(options, schedule="cell"), jobs=1)
        )
        variants = {
            "cell@2": run_cells(
                CELLS, SCALE, replace(options, schedule="cell"), jobs=2
            ),
            "stage@1": run_cells(CELLS, SCALE, options, jobs=1),
            "stage@2": run_cells(CELLS, SCALE, options, jobs=2),
            "stage@4": run_cells(CELLS, SCALE, options, jobs=4),
        }
        for label, runs in variants.items():
            assert list(runs) == CELLS, label
            assert _table_text(runs) == serial, label

    def test_stage_runs_report_all_stages(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runs = run_cells(CELLS, SCALE, FAST, jobs=2)
        for cell in CELLS:
            run = runs[cell]
            assert set(run.stage_seconds) == set(STAGES)
            assert set(run.stage_cached) == set(STAGES)
            assert run.cache_stats is not None
            assert "total" in run.performance_report()

    def test_warm_cache_collapses_every_task(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cold = run_cells(CELLS, SCALE, FAST, jobs=2)
        warm = run_cells(CELLS, SCALE, FAST, jobs=2)
        for cell in CELLS:
            assert all(warm[cell].stage_cached.values())
            assert not any(cold[cell].stage_cached.values())
            assert warm[cell].flow_b.die_area == cold[cell].flow_b.die_area
            assert (
                warm[cell].flow_a.average_slack
                == cold[cell].flow_a.average_slack
            )

    def test_transport_mode_persists_nothing(self, tmp_path, monkeypatch):
        """use_cache=False still runs the graph but leaves zero files."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runs = run_cells(
            CELLS, SCALE, replace(FAST, use_cache=False), jobs=2
        )
        assert list(runs) == CELLS
        assert not list(tmp_path.rglob("*.pkl"))

    def test_no_cache_env_uses_transport(self, tmp_path, monkeypatch):
        """REPRO_NO_CACHE=1 must not break stage-mode IPC."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        runs = run_cells(CELLS, SCALE, FAST, jobs=2)
        assert list(runs) == CELLS
        assert not list(tmp_path.rglob("*.pkl"))

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            run_cells(CELLS, SCALE, replace(FAST, schedule="warp"), jobs=2)


def _inject_lut_packing_fault(monkeypatch):
    """Make the packing stage raise for the LUT architecture only.

    Patches the module-global the stage registry dispatches through;
    pool workers are forked after the patch, so they inherit it.
    """
    from repro.flow import flow as flow_mod

    real = flow_mod._pack_stage

    def boom(synthesis, physical, options):
        if options.arch == "lut":
            raise RuntimeError("injected packing fault")
        return real(synthesis, physical, options)

    monkeypatch.setattr(flow_mod, "_pack_stage", boom)


class TestFailureIsolation:
    def test_stage_failure_fails_only_dependent_cells(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        _inject_lut_packing_fault(monkeypatch)
        with pytest.raises(StageFailure) as excinfo:
            run_cells(CELLS, SCALE, FAST, jobs=2)
        failure = excinfo.value
        assert failure.cell == ("alu", "lut")
        assert failure.stage == "packing"
        # The original worker traceback is surfaced, both as a field and
        # in the exception text.
        assert "injected packing fault" in failure.traceback_text
        assert "RuntimeError" in failure.traceback_text
        assert "injected packing fault" in str(failure)
        # Only packing and its dependent route_b were lost, only for lut.
        assert set(failure.failed) == {
            (("alu", "lut"), "packing"),
            (("alu", "lut"), "route_b"),
        }
        # The unaffected cell finished with a complete result.
        assert set(failure.completed) == {("alu", "granular")}
        survivor = failure.completed[("alu", "granular")]
        assert survivor.flow_b.die_area > 0
        assert set(survivor.stage_seconds) == set(STAGES)

    def test_completed_cell_matches_clean_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
        clean = run_cells(CELLS[:1], SCALE, FAST, jobs=2)[("alu", "granular")]

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "faulty"))
        _inject_lut_packing_fault(monkeypatch)
        with pytest.raises(StageFailure) as excinfo:
            run_cells(CELLS, SCALE, FAST, jobs=2)
        survivor = excinfo.value.completed[("alu", "granular")]
        assert survivor.flow_b.die_area == clean.flow_b.die_area
        assert survivor.flow_a.average_slack == clean.flow_a.average_slack

    def test_cell_pool_propagates_worker_error(self, tmp_path, monkeypatch):
        """The legacy pool's error contract, mirrored for comparison: the
        worker exception propagates out of run_cells (losing the other
        cells' results — exactly what StageFailure improves on)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        _inject_lut_packing_fault(monkeypatch)
        with pytest.raises(RuntimeError, match="injected packing fault"):
            run_cells(
                CELLS, SCALE, replace(FAST, schedule="cell"), jobs=2
            )


class TestStageModeJournal:
    def test_matrix_produces_one_merged_journal(self, tmp_path, monkeypatch):
        from repro.obs import export, journal

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "journals"))
        runs = run_cells(CELLS, SCALE, replace(FAST, observe=True), jobs=2)
        assert list(runs) == CELLS

        journals = list((tmp_path / "journals").glob("*.jsonl"))
        assert len(journals) == 1, "workers must not write their own journals"
        events = journal.read_journal(journals[0])

        run_cells_spans = [
            e for e in events
            if e["ev"] == "span" and e["name"] == "run_cells"
        ]
        assert len(run_cells_spans) == 1
        assert run_cells_spans[0]["attrs"]["schedule"] == "stage"
        graph_spans = [
            e for e in events
            if e["ev"] == "span" and e["name"] == "sched.graph"
        ]
        assert len(graph_spans) == 1
        assert graph_spans[0]["attrs"]["tasks"] == len(CELLS) * len(STAGES)
        assert graph_spans[0]["attrs"]["precached"] == 0

        # One flow.<stage> span per (cell, stage) task, worker-recorded.
        task_spans = [
            e for e in events
            if e["ev"] == "span"
            and e["name"].startswith("flow.")
            and (e.get("attrs") or {}).get("sched") == "stage"
        ]
        assert len(task_spans) == len(CELLS) * len(STAGES)

        # Scheduler dispatch/completion points for every task.
        points = [e for e in events if e["ev"] == "point"]
        names = [e["name"] for e in points]
        assert names.count("sched.dispatch") == len(CELLS) * len(STAGES)
        assert names.count("sched.task") == len(CELLS) * len(STAGES)
        outcomes = {
            e["attrs"]["outcome"]
            for e in points
            if e["name"] == "sched.task"
        }
        assert outcomes == {"ok"}

        # The journal renders as a Gantt with one bar per task.
        gantt = export.format_gantt(events)
        assert f"{len(CELLS) * len(STAGES)} stage tasks" in gantt
        assert "alu/granular:physical" in gantt

    def test_gantt_on_sched_free_journal_hints(self):
        from repro.obs import export

        assert "no scheduler task spans" in export.format_gantt([])


class TestInterruption:
    """Graceful interruption: the ``cancel`` hook and KeyboardInterrupt
    both shut the pool down in order and always clean the transport
    directory (the serve executor's cancellation path rides on this)."""

    def test_cancel_hook_interrupts_serial_path(self, tmp_path, monkeypatch):
        from repro.flow.scheduler import SchedulerInterrupted

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        with pytest.raises(SchedulerInterrupted, match="0 task"):
            run_cells(CELLS, SCALE, FAST, jobs=1, cancel=lambda: True)

    def test_cancel_after_first_cell_reports_progress(
        self, tmp_path, monkeypatch
    ):
        from repro.flow.scheduler import SchedulerInterrupted

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        polls = iter([False, True, True, True])
        with pytest.raises(SchedulerInterrupted) as err:
            run_cells(CELLS, SCALE, FAST, jobs=1,
                      cancel=lambda: next(polls))
        assert "1 task(s) completed" in str(err.value)

    def test_cancel_hook_interrupts_stage_graph(self, tmp_path, monkeypatch):
        from repro.flow.scheduler import SchedulerInterrupted

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        with pytest.raises(SchedulerInterrupted):
            run_cells(CELLS, SCALE, FAST, jobs=2, cancel=lambda: True)

    def test_interrupted_transport_dir_is_cleaned(
        self, tmp_path, monkeypatch
    ):
        import tempfile

        from repro.flow.scheduler import SchedulerInterrupted

        transport_root = tmp_path / "transport"
        transport_root.mkdir()
        monkeypatch.setattr(tempfile, "tempdir", str(transport_root))
        options = replace(FAST, use_cache=False)
        with pytest.raises(SchedulerInterrupted):
            run_cells(CELLS, SCALE, options, jobs=2, cancel=lambda: True)
        leftovers = list(transport_root.iterdir())
        assert leftovers == [], f"transport dirs leaked: {leftovers}"

    def test_keyboard_interrupt_takes_orderly_path(
        self, tmp_path, monkeypatch
    ):
        import tempfile

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        transport_root = tmp_path / "transport"
        transport_root.mkdir()
        monkeypatch.setattr(tempfile, "tempdir", str(transport_root))

        def interrupted():
            raise KeyboardInterrupt

        options = replace(FAST, use_cache=False)
        with pytest.raises(KeyboardInterrupt):
            run_cells(CELLS, SCALE, options, jobs=2, cancel=interrupted)
        assert list(transport_root.iterdir()) == []

    def test_partial_results_resume_warm(self, tmp_path, monkeypatch):
        """A cancelled matrix rerun reuses every completed stage."""
        from repro.flow.scheduler import SchedulerInterrupted

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        polls = iter([False] * 3 + [True] * 200)
        with pytest.raises(SchedulerInterrupted):
            run_cells(CELLS, SCALE, FAST, jobs=2, cancel=lambda: next(polls))
        runs = run_cells(CELLS, SCALE, FAST, jobs=1)
        hits = sum(
            sum(run.stage_cached.values()) for run in runs.values()
        )
        assert hits >= 2, "interrupted progress must persist in the cache"
