"""Tests for structural Verilog export/import."""

import io

import pytest

from repro.cells.library import granular_plb_library, lut_plb_library
from repro.netlist.core import NetlistError
from repro.netlist.simulate import outputs_equal
from repro.netlist.validate import check
from repro.netlist.verilog import read_verilog, write_verilog
from repro.synth.from_netlist import extract_core
from repro.synth.techmap import map_core

from conftest import make_ripple_design


def roundtrip(netlist, library):
    buffer = io.StringIO()
    write_verilog(netlist, buffer)
    buffer.seek(0)
    return read_verilog(buffer, library)


@pytest.mark.parametrize("arch,libfn", [
    ("lut", lut_plb_library), ("granular", granular_plb_library),
])
class TestRoundTrip:
    def test_mapped_design_roundtrips(self, arch, libfn):
        library = libfn()
        src = make_ripple_design(width=4)
        mapped = map_core(extract_core(src), arch, library)
        # Drop synthetic constant cells (not part of the library format).
        restored = roundtrip(mapped, library)
        check(restored)
        assert outputs_equal(mapped, restored, n_cycles=3)

    def test_structure_preserved(self, arch, libfn):
        library = libfn()
        src = make_ripple_design(width=3)
        mapped = map_core(extract_core(src), arch, library)
        restored = roundtrip(mapped, library)
        assert set(restored.instances) == set(mapped.instances)
        assert restored.inputs == mapped.inputs
        assert restored.outputs == mapped.outputs
        for name, inst in mapped.instances.items():
            other = restored.instances[name]
            assert other.cell.name == inst.cell.name
            assert other.pin_nets == inst.pin_nets
            assert other.config == inst.config


class TestFormat:
    def test_config_comment_emitted(self, gran_lib):
        src = make_ripple_design(width=2)
        mapped = map_core(extract_core(src), "granular", gran_lib)
        buffer = io.StringIO()
        write_verilog(mapped, buffer)
        text = buffer.getvalue()
        assert "module" in text and "endmodule" in text
        assert "// CONFIG" in text
        assert text.count("input ") == len(mapped.inputs)

    def test_unparseable_line_rejected(self, gran_lib):
        bad = io.StringIO("module m (a);\n  input a;\n  ???\nendmodule\n")
        with pytest.raises(NetlistError):
            read_verilog(bad, gran_lib)

    def test_instance_before_module_rejected(self, gran_lib):
        bad = io.StringIO("  INV i0 (.A(a), .Y(y));\n")
        with pytest.raises(NetlistError):
            read_verilog(bad, gran_lib)

    def test_empty_stream_rejected(self, gran_lib):
        with pytest.raises(NetlistError):
            read_verilog(io.StringIO(""), gran_lib)
