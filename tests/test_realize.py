"""Unit tests for realization tables.

The central invariant: every table entry's step list, when evaluated
symbolically over its leaves, reproduces exactly the function it is filed
under — for every architecture and every entry.
"""

import pytest

from repro.logic.truthtable import TruthTable, all_functions
from repro.synth.realize import (
    Realization,
    baseline_table,
    compaction_table,
    lookup,
)


def evaluate_realization(realization: Realization, n_leaves: int) -> TruthTable:
    """Symbolically evaluate a realization over its leaf variables."""
    leaves = [TruthTable.input_var(n_leaves, i) for i in range(n_leaves)]
    step_values = []
    for step in realization.steps:
        ins = []
        for kind, index in step.refs:
            ins.append(leaves[index] if kind == "leaf" else step_values[index])
        step_values.append(step.config.compose(ins))
    return step_values[-1]


@pytest.mark.parametrize("arch", ["lut", "granular"])
class TestTables:
    def test_every_entry_is_correct(self, arch):
        for table_kind in (baseline_table, compaction_table):
            for (n, mask), realization in table_kind(arch).items():
                assert realization.function == TruthTable(n, mask)
                evaluated = evaluate_realization(realization, n)
                assert evaluated == realization.function, (
                    f"{arch}: entry ({n}, {mask:#x}) structure "
                    f"{realization.structure} evaluates wrong"
                )

    def test_all_2input_functions_covered(self, arch):
        table = baseline_table(arch)
        for f in all_functions(2):
            if len(f.support()) == 2:
                assert (2, f.mask) in table

    def test_compaction_extends_baseline(self, arch):
        base = baseline_table(arch)
        full = compaction_table(arch)
        assert set(base) <= set(full)

    def test_areas_positive(self, arch):
        for realization in compaction_table(arch).values():
            assert realization.area > 0
            assert realization.levels >= 1
            assert realization.n_cells >= 1


class TestCoverage:
    def test_granular_compaction_covers_all_3input(self):
        table = compaction_table("granular")
        for f in all_functions(3):
            if len(f.support()) == 3:
                assert (3, f.mask) in table

    def test_lut_baseline_covers_all_3input(self):
        table = baseline_table("lut")
        for f in all_functions(3):
            if len(f.support()) == 3:
                assert (3, f.mask) in table

    def test_granular_baseline_incomplete(self):
        # The conventional mapper cannot realize e.g. the majority function
        # in one structure; compaction's composites can.
        a, b, c = TruthTable.inputs(3)
        maj = (a & b) | (b & c) | (a & c)
        assert lookup(baseline_table("granular"), maj) is None
        found = lookup(compaction_table("granular"), maj)
        assert found is not None

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            baseline_table("fpga")


class TestLookup:
    def test_lookup_shrinks_support(self):
        # A 3-input table that only depends on inputs 0 and 2.
        a, _b, c = TruthTable.inputs(3)
        f = a & c
        found = lookup(compaction_table("granular"), f)
        assert found is not None
        # Leaves must be remapped to the original indices 0 and 2.
        leaf_indices = {
            index for step in found.steps for kind, index in step.refs if kind == "leaf"
        }
        assert leaf_indices <= {0, 2}
        assert evaluate_realization_over(found, 3) == f

    def test_lookup_miss(self):
        f = TruthTable(4, 0x6996)  # xor4
        assert lookup(baseline_table("granular"), f) is None

    def test_structure_names(self):
        a, b, c = TruthTable.inputs(3)
        nd3 = lookup(compaction_table("granular"), ~(a & b & c))
        assert nd3.structure == "ND3"
        s, d0, d1 = TruthTable.inputs(3)
        mx = lookup(compaction_table("granular"), TruthTable.mux(s, d0, d1))
        assert mx.structure == "MX"


def evaluate_realization_over(realization: Realization, n: int) -> TruthTable:
    leaves = [TruthTable.input_var(n, i) for i in range(n)]
    values = []
    for step in realization.steps:
        ins = [
            leaves[index] if kind == "leaf" else values[index]
            for kind, index in step.refs
        ]
        values.append(step.config.compose(ins))
    return values[-1]
