"""Flow-level checks: clean shipped designs, stage guards, obs emission."""

import json

import pytest

from repro.check import (
    CHECK_STAGES,
    CheckError,
    Finding,
    Report,
    Severity,
    check_design_run,
    check_stage,
    enforce,
    lint_paths,
)
from repro.check.runner import emit_findings
from repro.flow.experiments import build_design
from repro.flow.flow import FlowOptions, run_design
from repro.obs import core as obs_core
from repro.obs import journal as obs_journal

from conftest import make_ripple_design

FAST = FlowOptions(place_effort=0.05, place_iterations=1, pack_iterations=1)

DESIGNS = ("alu", "fpu", "netswitch", "firewire")


@pytest.fixture(scope="module")
def small_run():
    src = make_ripple_design(width=5, name="checkflow")
    return run_design(src, "granular", FAST)


class TestShippedDesignsAreClean:
    """The acceptance bar: every shipped design's end-to-end flow
    produces artifacts with zero error findings on both architectures."""

    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("arch", ["lut", "granular"])
    def test_no_error_findings(self, design, arch):
        netlist = build_design(design, scale=0.3)
        run = run_design(netlist, arch, FlowOptions(place_effort=0.2))
        report = check_design_run(run)
        assert report.errors == [], report.format()


class TestCheckDesignRun:
    def test_full_audit_is_clean(self, small_run):
        report = check_design_run(small_run)
        assert report.errors == []
        # The equivalence stage always discloses its mode.
        assert "EQ003" in {f.rule_id for f in report}

    def test_stage_subset(self, small_run):
        report = check_design_run(small_run, stages=["netlist"])
        assert all(f.stage == "netlist" for f in report)

    def test_rule_filter(self, small_run):
        report = check_design_run(small_run, rule_ids={"EQ003"})
        assert {f.rule_id for f in report} == {"EQ003"}

    def test_unknown_stage_rejected(self, small_run):
        with pytest.raises(ValueError, match="unknown check stage"):
            check_design_run(small_run, stages=["synthesis"])

    def test_check_stage_names_are_documented(self):
        assert CHECK_STAGES == (
            "netlist", "library", "placement", "packing", "routing",
            "equivalence",
        )
        with pytest.raises(ValueError):
            check_stage("bogus")


class TestFlowGuards:
    def test_flow_runs_clean_with_checks_enabled(self):
        from dataclasses import replace

        src = make_ripple_design(width=4, name="guarded")
        run = run_design(src, "granular", replace(FAST, check=True))
        assert run.flow_b.die_area > 0

    def test_enforce_raises_on_errors(self):
        report = Report([Finding(
            rule_id="NL001", severity=Severity.ERROR,
            location="net x", message="boom",
        )])
        with pytest.raises(CheckError, match="after synthesis"):
            enforce(report, "t/granular after synthesis")

    def test_enforce_passes_warnings(self):
        report = Report([Finding(
            rule_id="NL010", severity=Severity.WARNING,
            location="instance i", message="dead",
        )])
        enforce(report, "ctx")


class TestRunArtifacts:
    def test_run_carries_packed_design(self, small_run):
        assert small_run.packed is not None
        assert small_run.packed.packing.plbs_used > 0

    def test_pre_compaction_netlist_retained(self, small_run):
        pre = small_run.synthesis.pre_compaction_netlist
        assert pre is not None
        assert pre is not small_run.synthesis.netlist

    def test_synthesis_netlist_not_mutated_by_backend(self, small_run):
        """Physical synthesis and packing work on private copies, so the
        synthesis artifact never grows buffers behind the cache's back."""
        names = set(small_run.synthesis.netlist.instances)
        assert not any(n.startswith("pbuf") for n in names)
        assert set(small_run.physical.netlist.instances) >= names

    def test_packing_netlist_is_private(self, small_run):
        assert small_run.packed.netlist is not small_run.physical.netlist


class TestSelfLintOnRepo:
    def test_src_repro_is_determinism_clean(self):
        findings = lint_paths()
        assert findings == [], "\n".join(f.format() for f in findings)


class TestObsEmission:
    def test_findings_reach_the_journal(self, tmp_path):
        obs_core.begin()
        emit_findings([Finding(
            rule_id="NL001", severity=Severity.ERROR,
            location="net x", message="boom", stage="netlist",
        )])
        path = obs_journal.finalize("checktest", directory=tmp_path)
        assert path is not None
        text = path.read_text(encoding="utf-8")
        events = [json.loads(line) for line in text.splitlines() if line]
        assert any(
            e.get("name") == "check.finding" for e in events
        ), events
