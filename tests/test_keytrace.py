"""Tests for the CK005 runtime options-access tracer
(repro.check.keytrace).

Covers the recording proxy (field reads recorded, methods not, wrap
idempotence), scoped-recorder isolation, the journal round trip, the
three audit clauses of ``findings_from_keytrace_journal`` (unknown
stage, read outside the static model, read outside the key chain), and
the end-to-end contract: a real flow run under ``REPRO_KEYTRACE=1``
produces per-stage read-sets contained in the static model's.
"""

import json

import pytest

from conftest import make_ripple_design

from repro.check import keytrace, static_stage_model
from repro.check.keytrace import findings_from_keytrace_journal
from repro.cli import main
from repro.flow.flow import run_design
from repro.flow.options import FlowOptions


def write_events(path, events):
    path.write_text(
        "\n".join(json.dumps(e, sort_keys=True) for e in events) + "\n"
    )


class TestProxy:
    def test_field_reads_are_recorded(self):
        with keytrace.scoped_trace() as rec:
            opts = keytrace.traced("physical", FlowOptions())
            assert opts.seed == 0
            assert opts.period > 0
            assert opts.seed == 0
        assert rec.snapshot() == {
            "physical": {"period": 1, "seed": 2},
        }

    def test_method_lookups_are_not_recorded(self):
        with keytrace.scoped_trace() as rec:
            opts = keytrace.traced("physical", FlowOptions())
            doc = opts.to_dict()
        assert isinstance(doc, dict)
        # to_dict reads fields on the *real* object, not the proxy.
        assert rec.snapshot() == {}

    def test_wrap_is_idempotent(self):
        with keytrace.scoped_trace():
            opts = keytrace.traced("physical", FlowOptions())
            assert keytrace.traced("physical", opts) is opts

    def test_scoped_trace_isolates(self):
        ambient = keytrace.trace()
        with keytrace.scoped_trace() as rec:
            assert keytrace.trace() is rec
            assert keytrace.trace() is not ambient
        assert keytrace.trace() is ambient

    def test_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_KEYTRACE", raising=False)
        assert not keytrace.enabled()
        monkeypatch.setenv("REPRO_KEYTRACE", "1")
        assert keytrace.enabled()


class TestJournal:
    def test_write_report_explicit_path(self, tmp_path):
        out = tmp_path / "kt.jsonl"
        with keytrace.scoped_trace() as rec:
            rec.record("physical", "seed")
            path = keytrace.write_report(out)
        assert path == out
        events = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert events[0]["label"] == "keytrace"
        reads = [
            e for e in events if e.get("name") == "keytrace.read"
        ]
        assert reads == [{
            "type": "point", "name": "keytrace.read",
            "stage": "physical", "field": "seed", "count": 1,
        }]
        assert events[-1]["name"] == "keytrace.summary"

    def test_write_report_env_path(self, tmp_path, monkeypatch):
        out = tmp_path / "env-kt.jsonl"
        monkeypatch.setenv("REPRO_KEYTRACE_OUT", str(out))
        with keytrace.scoped_trace():
            assert keytrace.write_report() == out
        assert out.exists()

    def test_non_journal_raises(self, tmp_path):
        bad = tmp_path / "not-keytrace.jsonl"
        write_events(bad, [{"type": "meta", "label": "other"}])
        with pytest.raises(ValueError, match="keytrace.summary"):
            findings_from_keytrace_journal(bad)


def audit_events(reads):
    """A minimal journal: one keytrace.read per (stage, field)."""
    events = [{"type": "meta", "label": "keytrace"}]
    for stage, field in reads:
        events.append({
            "type": "point", "name": "keytrace.read",
            "stage": stage, "field": field, "count": 1,
        })
    events.append({
        "type": "point", "name": "keytrace.summary",
        "stages": len({s for s, _ in reads}), "fields": len(reads),
        "reads": len(reads),
    })
    return events


class TestAudit:
    def test_faithful_reads_are_clean(self, tmp_path):
        path = tmp_path / "kt.jsonl"
        write_events(path, audit_events([
            ("physical", "seed"), ("physical", "utilization"),
            ("route_a", "arch"), ("synthesis", "opt_effort"),
        ]))
        assert findings_from_keytrace_journal(path) == []

    def test_unknown_stage_flags(self, tmp_path):
        path = tmp_path / "kt.jsonl"
        write_events(path, audit_events([("warp", "seed")]))
        (f,) = findings_from_keytrace_journal(path)
        assert f.rule_id == "CK005"
        assert "unknown stage" in f.message

    def test_read_outside_static_model_flags(self, tmp_path):
        # route_a never reads pack_headroom statically, and its key
        # chain never includes it: both audit clauses fire.
        path = tmp_path / "kt.jsonl"
        write_events(path, audit_events([("route_a", "pack_headroom")]))
        findings = findings_from_keytrace_journal(path)
        assert len(findings) == 2
        assert {"CK005"} == {f.rule_id for f in findings}
        messages = " | ".join(f.message for f in findings)
        assert "never predicted" in messages
        assert "incoherence" in messages

    def test_perf_knob_read_is_covered(self, tmp_path):
        # sa_engine is read by the physical stage but excluded from its
        # key by contract — the knob set covers it.
        path = tmp_path / "kt.jsonl"
        write_events(path, audit_events([("physical", "sa_engine")]))
        assert findings_from_keytrace_journal(path) == []


class TestEndToEnd:
    def test_traced_run_matches_static_model(self, monkeypatch):
        monkeypatch.setenv("REPRO_KEYTRACE", "1")
        design = make_ripple_design()
        with keytrace.scoped_trace() as rec:
            run_design(
                design, "granular",
                FlowOptions(use_cache=False, place_iterations=1,
                            pack_iterations=1),
            )
            observed = rec.snapshot()
        model = static_stage_model()
        assert model is not None
        assert set(observed) <= set(model.stages)
        for stage, fields in observed.items():
            assert set(fields) <= set(model.reads[stage]), stage
            covered = model.keyed_chain(stage) | model.perf_knobs
            assert set(fields) <= covered, stage
        # The flow genuinely executed under the proxy.
        assert observed["physical"]["seed"] >= 1

    def test_traced_run_audits_clean_via_cli(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_KEYTRACE", "1")
        out = tmp_path / "kt.jsonl"
        design = make_ripple_design()
        with keytrace.scoped_trace():
            run_design(
                design, "granular",
                FlowOptions(use_cache=False, place_iterations=1,
                            pack_iterations=1),
            )
            keytrace.write_report(out)
        assert main(
            ["check", "--keytrace", str(out), "--fail-on", "error"]
        ) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_rejects_non_journal(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        write_events(bad, [{"type": "meta", "label": "other"}])
        assert main(["check", "--keytrace", str(bad)]) == 2
        assert "keytrace" in capsys.readouterr().err
