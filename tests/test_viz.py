"""Tests for the SVG layout renderer."""

import io

from repro.cells.library import granular_plb_library
from repro.core.plb import granular_plb
from repro.pack.quadrisection import pack
from repro.pack.resources import size_array
from repro.place.grid import grid_for_netlist
from repro.place.sa import AnnealingPlacer
from repro.route.extract import route_and_extract
from repro.route.grid import RoutingGrid
from repro.synth.from_netlist import extract_core
from repro.synth.techmap import map_core
from repro.viz import render_packing_svg, write_packing_svg

from conftest import make_ripple_design


def _packed():
    src = make_ripple_design(width=4)
    mapped = map_core(extract_core(src), "granular", granular_plb_library())
    arch = granular_plb()
    placement = AnnealingPlacer(
        mapped, grid_for_netlist(mapped), seed=0, effort=0.03
    ).place()
    cols, rows = size_array(arch, mapped)
    packing = pack(mapped, placement, arch, cols, rows)
    grid = RoutingGrid(cols=cols, rows=rows, bin_pitch=arch.tile_side, tracks=28)
    routing, _wires = route_and_extract(grid, packing.net_pin_points(mapped))
    return packing, routing


def test_svg_structure():
    packing, routing = _packed()
    svg = render_packing_svg(packing, routing, title="test<layout>")
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert "test&lt;layout&gt;" in svg  # titles are escaped
    # One tile rect per PLB plus occupancy marks and wires.
    assert svg.count("<rect") >= packing.n_plbs
    assert "<line" in svg


def test_svg_without_routing():
    packing, _routing = _packed()
    svg = render_packing_svg(packing)
    assert "<line" not in svg
    assert svg.count("<rect") >= packing.n_plbs


def test_write_to_stream():
    packing, routing = _packed()
    buffer = io.StringIO()
    write_packing_svg(buffer, packing, routing)
    assert buffer.getvalue().startswith("<svg")


def test_occupancy_marks_match_assignments():
    packing, _ = _packed()
    svg = render_packing_svg(packing)
    # Every assignment contributes one titled occupancy mark.
    assert svg.count("<title>") == len(packing.assignments)
