"""Deeper coverage: FlowMap stress, packing loop details, experiment
helpers, and failure injection."""


import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.synth.flowmap import FlowMap

from conftest import make_ripple_design


class TestFlowMapStress:
    def _random_dag(self, seed, n_sources=4, n_nodes=30):
        import random

        rng = random.Random(seed)
        fanins = {f"s{i}": () for i in range(n_sources)}
        names = list(fanins)
        for i in range(n_nodes):
            k = rng.randint(1, 3)
            node = f"n{i}"
            fanins[node] = tuple(rng.sample(names, min(k, len(names))))
            names.append(node)
        return fanins

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_random_dags_have_valid_cuts(self, seed):
        fanins = self._random_dag(seed)
        result = FlowMap(fanins, k=3).compute()
        for node, fs in fanins.items():
            if not fs:
                assert result.labels[node] == 0
                continue
            cut = result.cuts[node]
            assert 1 <= len(cut) <= 3
            # The cut separates node from the sources.
            stack = list(fs)
            while stack:
                current = stack.pop()
                if current in cut:
                    continue
                assert fanins[current], f"escaped at {current}"
                stack.extend(fanins[current])
            # Height property: leaves' labels are strictly below the node's.
            assert all(result.labels[leaf] < result.labels[node] for leaf in cut)

    def test_cone_cap_stays_safe(self):
        # A deep chain with a tiny cone cap: labels become conservative
        # (possibly larger) but cuts stay valid.
        fanins = {"s": ()}
        prev = "s"
        for i in range(40):
            fanins[f"n{i}"] = (prev,)
            prev = f"n{i}"
        capped = FlowMap(fanins, k=2, cone_cap=5).compute()
        full = FlowMap(fanins, k=2).compute()
        assert capped.labels[prev] >= full.labels[prev]

    def test_k1_degenerates_to_chains(self):
        fanins = {"a": (), "b": (), "n": ("a", "b")}
        result = FlowMap(fanins, k=1).compute()
        # A 2-input node can never have a 1-feasible nontrivial cut.
        assert result.cuts["n"] == frozenset({"a", "b"})


class TestPackingLoopDetails:
    def test_rebuffering_keeps_equivalence(self, gran_arch, gran_lib, gran_timing):
        from repro.netlist.build import NetlistBuilder
        from repro.netlist.simulate import outputs_equal
        from repro.pack.iterative import run_packing_loop
        from repro.place.grid import grid_for_netlist
        from repro.place.sa import AnnealingPlacer
        from repro.synth.from_netlist import extract_core
        from repro.synth.techmap import map_core

        # A very high fanout net forces re-buffering inside the loop.
        b = NetlistBuilder("fan")
        x = b.input("x")
        y = b.input("y")
        hot = b.XOR(x, y)
        for i in range(30):
            b.output(b.DFF(b.AND(hot, x)), f"q{i}")
        src = b.netlist
        mapped = map_core(extract_core(src), "granular", gran_lib)
        placement = AnnealingPlacer(
            mapped, grid_for_netlist(mapped), seed=0, effort=0.05
        ).place()
        packed = run_packing_loop(
            mapped, placement, gran_arch, gran_lib, gran_timing,
            period=0.5, iterations=3,
        )
        assert outputs_equal(src, packed.netlist, n_cycles=3)

    def test_pad_ring_positions(self, gran_arch):
        from repro.pack.quadrisection import _ring_positions

        pads = _ring_positions(["a", "b", "c", "d"], 100.0, 50.0)
        for x, y in pads.values():
            assert 0 <= x <= 100 and 0 <= y <= 50
            on_edge = x in (0.0, 100.0) or y in (0.0, 50.0)
            assert on_edge

    def test_ring_enumeration_stays_in_bounds(self):
        from repro.pack.quadrisection import _ring

        for radius in range(1, 6):
            for plb in _ring((1, 1), radius, 4, 4):
                assert 0 <= plb[0] < 4 and 0 <= plb[1] < 4


class TestExperimentHelpers:
    def test_design_scale_env(self, monkeypatch):
        from repro.flow.experiments import design_scale

        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert design_scale() == 0.25
        monkeypatch.setenv("REPRO_SCALE", "not-a-number")
        assert design_scale() == 1.0

    def test_matrix_memoization(self, monkeypatch):
        import repro.flow.experiments as exp

        calls = []
        # Patch the flow entry point the serial cell runner resolves
        # (repro.flow.parallel imports it from repro.flow.flow lazily).
        monkeypatch.setattr(
            "repro.flow.flow.run_design",
            lambda netlist, arch, options: calls.append((netlist.name, arch)) or
            _fake_run(netlist, arch),
        )
        exp._matrix_cache.clear()
        m1 = exp.run_matrix(designs=("alu",), scale=0.2)
        n_calls = len(calls)
        assert n_calls > 0
        m2 = exp.run_matrix(designs=("alu",), scale=0.2)
        assert m2 is m1
        assert len(calls) == n_calls
        exp._matrix_cache.clear()

    def test_table_formats_are_strings(self):
        from repro.flow.experiments import run_figure2

        assert isinstance(run_figure2().format(), str)


def _fake_run(netlist, arch):
    class _Fake:
        design = netlist.name
        arch_name = arch

    return _Fake()


class TestSTAEdgeCases:
    def test_combinational_only_design(self, comb_design, gran_timing):
        from repro.timing.sta import analyze

        report = analyze(comb_design, gran_timing, period=1.0)
        assert set(report.endpoint_slack) == set(comb_design.outputs)
        assert report.worst_slack < 1.0

    def test_top_n_larger_than_endpoints(self, comb_design, gran_timing):
        from repro.timing.sta import analyze

        report = analyze(comb_design, gran_timing, top_n=1000)
        assert len(report.paths) == len(comb_design.outputs)

    def test_period_shifts_slack_uniformly(self, gran_timing):
        from repro.timing.sta import analyze

        design = make_ripple_design(width=3)
        fast = analyze(design, gran_timing, period=0.5)
        slow = analyze(design, gran_timing, period=1.5)
        for key in fast.endpoint_slack:
            assert slow.endpoint_slack[key] == pytest.approx(
                fast.endpoint_slack[key] + 1.0
            )


class TestFailureInjection:
    def test_techmap_missing_cell(self, comb_design):
        from repro.cells.celltypes import make_inv, make_dff, make_buf
        from repro.cells.library import Library
        from repro.synth.from_netlist import extract_core
        from repro.synth.techmap import TechmapError, map_core

        # A library without any 2-input gate cannot realize anything.
        crippled = Library("crippled", [make_inv(), make_buf(), make_dff()])
        with pytest.raises(TechmapError):
            map_core(extract_core(comb_design), "granular", crippled)

    def test_router_unreachable_target(self):
        from repro.route.grid import RoutingGrid
        from repro.route.pathfinder import PathFinderRouter

        grid = RoutingGrid(cols=2, rows=2, bin_pitch=1.0)
        router = PathFinderRouter(grid)
        with pytest.raises(RuntimeError):
            router._astar({(0, 0)}, (5, 5), 1.0)

    def test_packing_impossible_cell(self, gran_arch, comb_design):
        from repro.pack.resources import PackingError, min_plbs

        # comb_design uses capture cells the architecture cannot host.
        with pytest.raises(PackingError):
            min_plbs(gran_arch, comb_design)
