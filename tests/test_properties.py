"""Property-based tests (hypothesis) on core data structures and invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.logic.npn import npn_canonical, npn_transforms
from repro.logic.truthtable import TruthTable
from repro.synth.aig import AIG, lit_inverted, lit_node
from repro.synth.cuts import cut_function, enumerate_cuts
from repro.synth.realize import compaction_table, lookup

masks2 = st.integers(min_value=0, max_value=15)
masks3 = st.integers(min_value=0, max_value=255)
tables3 = masks3.map(lambda m: TruthTable(3, m))
tables2 = masks2.map(lambda m: TruthTable(2, m))


class TestTruthTableAlgebra:
    @given(masks3, masks3)
    def test_de_morgan(self, m1, m2):
        a, b = TruthTable(3, m1), TruthTable(3, m2)
        assert ~(a & b) == (~a | ~b)
        assert ~(a | b) == (~a & ~b)

    @given(masks3, masks3, masks3)
    def test_distributivity(self, m1, m2, m3):
        a, b, c = (TruthTable(3, m) for m in (m1, m2, m3))
        assert (a & (b | c)) == ((a & b) | (a & c))

    @given(masks3)
    def test_double_negation(self, mask):
        t = TruthTable(3, mask)
        assert ~~t == t

    @given(masks3, st.integers(min_value=0, max_value=2))
    def test_shannon_expansion(self, mask, index):
        f = TruthTable(3, mask)
        x = TruthTable.input_var(3, index)
        low = f.cofactor(index, 0).extend(3) if index == 2 else None
        # Rebuild via mux about any variable using generic composition.
        g = f.cofactor(index, 0)
        h = f.cofactor(index, 1)
        # Reinsert the variable at `index`.
        subs = []
        remaining = [i for i in range(3) if i != index]
        for i in remaining:
            subs.append(TruthTable.input_var(3, i))
        g3 = g.compose(subs) if g.n_inputs else g.extend(3)
        h3 = h.compose(subs) if h.n_inputs else h.extend(3)
        assert TruthTable.mux(x, g3, h3) == f

    @given(masks3, st.permutations(list(range(3))))
    def test_permute_involution(self, mask, order):
        f = TruthTable(3, mask)
        inverse = [0, 0, 0]
        for new_i, old_i in enumerate(order):
            inverse[old_i] = new_i
        assert f.permute(tuple(order)).permute(tuple(inverse)) == f

    @given(masks3, st.integers(min_value=0, max_value=2))
    def test_flip_involution(self, mask, index):
        f = TruthTable(3, mask)
        assert f.flip_input(index).flip_input(index) == f

    @given(masks2)
    def test_extend_preserves_behaviour(self, mask):
        f = TruthTable(2, mask)
        g = f.extend(3)
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert g(a, b, c) == f(a, b)


class TestNPNProperties:
    @given(masks3)
    @settings(max_examples=30, deadline=None)
    def test_canonical_invariant_under_transform(self, mask):
        f = TruthTable(3, mask)
        canon = npn_canonical(f)
        for i, transform in enumerate(npn_transforms(3)):
            if i % 17:  # sample the transform space
                continue
            assert npn_canonical(transform.apply(f)) == canon

    @given(masks3)
    @settings(max_examples=50, deadline=None)
    def test_support_size_is_npn_invariant(self, mask):
        f = TruthTable(3, mask)
        assert len(npn_canonical(f).support()) == len(f.support())


def random_aig(masks, n_inputs=4):
    """Deterministically build an AIG from a list of table masks."""
    g = AIG("prop")
    literals = [g.add_input(f"i{k}") for k in range(n_inputs)]
    for mask in masks:
        table = TruthTable(2, mask % 16)
        a = literals[mask % len(literals)]
        b = literals[(mask // 16) % len(literals)]
        literals.append(g.from_table(table, [a, b]))
    g.add_output("y", literals[-1])
    return g


class TestAIGProperties:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_from_table_matches_simulation(self, masks):
        g = random_aig(masks)
        tables = g.output_table()
        assert "y" in tables

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_optimize_preserves_function(self, masks):
        from repro.synth.optimize import optimize

        g = random_aig(masks)
        for effort in (1, 2):
            assert optimize(g, effort=effort).output_table() == g.output_table()

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_cut_functions_consistent(self, masks):
        g = random_aig(masks)
        cuts = enumerate_cuts(g, k=3)
        tables = g.output_table()
        levels = g.levels()
        name, literal = g.outputs[0]
        node = lit_node(literal)
        if not g.is_and(node):
            return
        full = tables[name]
        if lit_inverted(literal):
            full = ~full
        # Any cut of the output node, evaluated through its leaves'
        # functions, must reproduce the node function.
        node_fn_inputs = [TruthTable.input_var(g.n_inputs, i) for i in range(g.n_inputs)]
        for cut in cuts[node]:
            if node in cut or 0 in cut:
                continue
            local = cut_function(g, node, cut)
            leaf_tables = []
            for leaf in cut:
                if g.is_input(leaf):
                    leaf_tables.append(TruthTable.input_var(g.n_inputs, leaf - 1))
                else:
                    sub = cut_function(g, leaf, tuple(range(1, g.n_inputs + 1)))
                    leaf_tables.append(sub)
            composed = local.compose(leaf_tables)
            assert composed == full


class TestRealizationProperties:
    @given(tables3)
    @settings(max_examples=60, deadline=None)
    def test_granular_compaction_realizes_everything(self, table):
        found = lookup(compaction_table("granular"), table)
        if len(table.support()) == 0:
            assert found is None or found.function == table
            return
        assert found is not None
        # Symbolic evaluation over 3 leaves must equal the target.
        leaves = [TruthTable.input_var(3, i) for i in range(3)]
        values = []
        for step in found.steps:
            ins = [
                leaves[idx] if kind == "leaf" else values[idx]
                for kind, idx in step.refs
            ]
            values.append(step.config.compose(ins))
        assert values[-1] == table


class TestBuilderProperties:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=8),
           st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mapping_equivalence_random_netlists(self, masks, seed):
        """Random capture netlists map equivalently on both architectures."""
        from repro.cells.library import granular_plb_library, lut_plb_library
        from repro.netlist.build import NetlistBuilder
        from repro.netlist.simulate import outputs_equal
        from repro.synth.from_netlist import extract_core
        from repro.synth.techmap import map_core

        b = NetlistBuilder("prop")
        signals = [b.input(f"i{k}") for k in range(4)]
        for mask in masks:
            table = TruthTable(3, mask)
            picks = [
                signals[(mask + j + seed) % len(signals)] for j in range(3)
            ]
            out = b.gate(table, *picks) if len(set(picks)) == 3 else b.XOR(
                picks[0], b.AND(picks[1], signals[0])
            )
            if out not in ("$const0", "$const1"):
                signals.append(out)
        b.output(signals[-1], "y")
        src = b.netlist
        core = extract_core(src)
        for arch, lib in (("lut", lut_plb_library()), ("granular", granular_plb_library())):
            mapped = map_core(core, arch, lib)
            assert outputs_equal(src, mapped)
