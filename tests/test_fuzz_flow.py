"""Fuzzing the synthesis pipeline with random sequential designs.

Every seed builds a random netlist and pushes it through extraction,
optimization, mapping (both architectures) and fixpoint compaction,
asserting exact sequential equivalence at every stage — the strongest
whole-pipeline invariant the repository has.
"""

import pytest

from repro.cells.library import granular_plb_library, lut_plb_library
from repro.designs.random_logic import build_random_design
from repro.netlist.simulate import outputs_equal
from repro.netlist.validate import check
from repro.synth.compaction import compact_to_fixpoint
from repro.synth.from_netlist import CombCore, extract_core
from repro.synth.optimize import optimize
from repro.synth.techmap import map_core

SEEDS = list(range(12))


@pytest.fixture(scope="module")
def random_designs():
    designs = {}
    for seed in SEEDS:
        netlist = build_random_design(seed)
        check(netlist)
        designs[seed] = netlist
    return designs


class TestGenerator:
    def test_deterministic(self):
        a = build_random_design(3)
        c = build_random_design(3)
        assert set(a.instances) == set(c.instances)
        assert a.outputs == c.outputs

    def test_seeds_differ(self):
        a = build_random_design(1)
        c = build_random_design(2)
        assert set(a.instances) != set(c.instances)

    def test_size_scales(self):
        small = build_random_design(5, n_gates=20)
        big = build_random_design(5, n_gates=200)
        assert len(big.instances) > len(small.instances)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("arch,libfn", [
    ("lut", lut_plb_library), ("granular", granular_plb_library),
])
def test_pipeline_equivalence(random_designs, seed, arch, libfn):
    src = random_designs[seed]
    library = libfn()
    core = extract_core(src)
    core = CombCore(
        aig=optimize(core.aig),
        primary_inputs=core.primary_inputs,
        primary_outputs=core.primary_outputs,
        dffs=core.dffs,
    )
    mapped = map_core(core, arch, library)
    check(mapped)
    assert outputs_equal(src, mapped, n_cycles=4, seed=seed), (
        f"seed {seed}: mapping broke equivalence on {arch}"
    )
    compacted, report = compact_to_fixpoint(mapped, arch, library)
    check(compacted)
    assert outputs_equal(src, compacted, n_cycles=4, seed=seed), (
        f"seed {seed}: compaction broke equivalence on {arch}"
    )
    assert report.area_after <= report.area_before
