"""Golden-equivalence tests for the performance kernels.

The two hot paths rewritten for speed — the SA placement cost engine and
the persistent realization tables — each keep a slow reference
implementation.  These tests pin the fast paths to the reference ones
bit for bit: identical placements and costs for the SA engines, equal
tables for a persisted load versus a fresh derivation, and identical
NPN canonicalization for the lookup table versus the exhaustive search.
"""

import os
import random
import subprocess
import sys

import pytest

import repro.place.sa as sa
from repro.flow.experiments import build_design
from repro.flow.flow import run_design
from repro.flow.options import FlowOptions
from repro.logic.npn import (
    _npn_canonical_exhaustive,
    npn_canonical_with_transform,
)
from repro.logic.truthtable import TruthTable
from repro.place.grid import grid_for_netlist
from repro.place.sa import AnnealingPlacer
from repro.synth.realize import (
    _build_table,
    _resolve_cells,
    compaction_table,
    table_for_cells,
)

from conftest import make_ripple_design


class TestSAEngineEquivalence:
    """engine="array" must reproduce engine="object" exactly."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_identical_placements_and_costs(self, seed):
        netlist = make_ripple_design(8)
        p_obj = AnnealingPlacer(
            netlist, grid_for_netlist(netlist), seed=seed, effort=0.3,
            engine="object",
        )
        pl_obj = p_obj.place()
        p_arr = AnnealingPlacer(
            netlist, grid_for_netlist(netlist), seed=seed, effort=0.3,
            engine="array",
        )
        pl_arr = p_arr.place()
        assert pl_obj.sites == pl_arr.sites
        # Bit-identical, not approximately equal: the engines perform the
        # same float operations in the same order.
        assert p_obj.final_cost == p_arr.final_cost
        assert p_obj._engine.net_costs() == p_arr._engine.net_costs()
        # ... and the same RNG draws: the stream position matches too.
        assert p_obj.rng.getstate() == p_arr.rng.getstate()

    def test_identical_on_larger_design(self):
        netlist = build_design("alu", 0.2)
        p_obj = AnnealingPlacer(
            netlist, grid_for_netlist(netlist), seed=7, effort=0.1,
            engine="object",
        )
        pl_obj = p_obj.place()
        p_arr = AnnealingPlacer(
            netlist, grid_for_netlist(netlist), seed=7, effort=0.1,
            engine="array",
        )
        pl_arr = p_arr.place()
        assert pl_obj.sites == pl_arr.sites
        assert p_obj.final_cost == p_arr.final_cost

    def test_scalar_fallback_matches_numpy(self, monkeypatch):
        """The no-numpy rebuild path is bit-identical to the numpy one."""
        netlist = make_ripple_design(6)
        ref = AnnealingPlacer(
            netlist, grid_for_netlist(netlist), seed=5, effort=0.2,
            engine="array",
        )
        pl_ref = ref.place()
        monkeypatch.setattr(sa, "_np", None)
        fallback = AnnealingPlacer(
            netlist, grid_for_netlist(netlist), seed=5, effort=0.2,
            engine="array",
        )
        pl_fb = fallback.place()
        assert pl_ref.sites == pl_fb.sites
        assert ref.final_cost == fallback.final_cost

    def test_locked_instances_respected_by_both(self):
        netlist = make_ripple_design(4)
        name = next(iter(netlist.instances))
        for engine in ("object", "array"):
            placer = AnnealingPlacer(
                netlist, grid_for_netlist(netlist), seed=1, effort=0.1,
                locked={name: (0, 0)}, engine=engine,
            )
            assert placer.place().sites[name] == (0, 0)

    def test_engine_env_override(self, monkeypatch):
        netlist = make_ripple_design(3)
        monkeypatch.setenv(sa.ENGINE_ENV, "object")
        placer = AnnealingPlacer(netlist, grid_for_netlist(netlist))
        assert placer.engine_name == "object"

    def test_unknown_engine_rejected(self):
        netlist = make_ripple_design(3)
        with pytest.raises(ValueError, match="unknown SA cost engine"):
            AnnealingPlacer(netlist, grid_for_netlist(netlist), engine="bogus")


def make_double_pin_design():
    """A design where one net feeds two pins of the same instance.

    The AND's both inputs tie to the same net, so that instance
    contributes the net's point twice (the ``count == 2`` move path).
    """
    from repro.netlist.build import NetlistBuilder

    b = NetlistBuilder("double_pin")
    x = b.input("x")
    y = b.input("y")
    n = b.AND(x, x)
    b.output(b.XOR(n, y), "o")
    b.output(b.AND(n, x), "p")
    return b.netlist


class TestSpeculativeEngineLevel:
    """evaluate_move + commit must equal apply_move/undo bit for bit.

    These drive the two engines directly (below the placer loop) through
    identical move sequences — including swaps whose cells share a net,
    coincident-boundary boxes, and multi-pin contributions — asserting
    equal deltas after every proposal and equal per-net costs at the
    end.
    """

    def _setup(self, netlist, seed=0):
        grid = grid_for_netlist(netlist)
        p_obj = AnnealingPlacer(netlist, grid, seed=seed, engine="object")
        p_arr = AnnealingPlacer(netlist, grid, seed=seed, engine="array")
        sites_obj = p_obj._initial_sites()
        sites_arr = p_arr._initial_sites()
        assert sites_obj == sites_arr
        eng_obj = sa._ENGINES["object"](p_obj, sites_obj)
        eng_arr = sa._ENGINES["array"](p_arr, sites_arr)
        assert eng_obj.rebuild() == eng_arr.rebuild()
        return p_obj, sites_obj, eng_obj, sites_arr, eng_arr

    def _drive(self, netlist, seed=0, n_moves=400):
        p_obj, sites_obj, eng_obj, sites_arr, eng_arr = self._setup(
            netlist, seed
        )
        grid = p_obj.grid
        occupant = {s: None for s in grid.sites()}
        for name, site in sites_obj.items():
            occupant[site] = name
        rng = random.Random(1234)
        movable = p_obj._movable
        proposals = swaps = 0
        for _ in range(n_moves):
            mover = movable[rng.randrange(len(movable))]
            new_site = (rng.randrange(grid.cols), rng.randrange(grid.rows))
            old_site = sites_obj[mover]
            if new_site == old_site:
                continue
            other = occupant[new_site]
            proposals += 1
            swaps += other is not None
            # Object-engine contract: the swap is made in ``sites``
            # first, then applied (and reverted around undo).
            sites_obj[mover] = new_site
            if other is not None:
                sites_obj[other] = old_site
            delta_obj = eng_obj.apply_move(mover, other, old_site, new_site)
            delta_arr = eng_arr.evaluate_move(mover, other, new_site)
            assert delta_obj == delta_arr
            if rng.random() < 0.5:  # accept
                eng_arr.commit()
                sites_arr[mover] = new_site
                if other is not None:
                    sites_arr[other] = old_site
                occupant[new_site] = mover
                occupant[old_site] = other
            else:  # reject
                eng_obj.undo()
                sites_obj[mover] = old_site
                if other is not None:
                    sites_obj[other] = new_site
            assert sites_obj == sites_arr
        assert proposals and swaps, "drive never exercised the move paths"
        assert eng_obj.net_costs() == eng_arr.net_costs()
        assert eng_obj.rebuild() == eng_arr.rebuild()

    def test_random_drive_matches_apply_undo(self):
        self._drive(make_ripple_design(6), seed=2)

    def test_double_pin_contributions_match(self):
        self._drive(make_double_pin_design(), seed=1)

    def test_shared_net_swap_matches(self):
        """A swap between two cells on the same net merges per-net moves."""
        netlist = make_ripple_design(4)
        p_obj, sites_obj, eng_obj, sites_arr, eng_arr = self._setup(netlist)
        pair = None
        for net in netlist.nets.values():
            if net.driver is None or not net.sinks:
                continue
            a, b = net.driver[0], net.sinks[0][0]
            if a != b and a in sites_obj and b in sites_obj:
                pair = (a, b)
                break
        assert pair is not None
        a, b = pair
        old_site, new_site = sites_obj[a], sites_obj[b]
        sites_obj[a] = new_site
        sites_obj[b] = old_site
        delta_obj = eng_obj.apply_move(a, b, old_site, new_site)
        delta_arr = eng_arr.evaluate_move(a, b, new_site)
        assert delta_obj == delta_arr
        eng_arr.commit()
        assert eng_obj.net_costs() == eng_arr.net_costs()

    def test_coincident_boundary_counts_match(self):
        """Moves among coincident coordinates (multi-point boundaries)."""
        netlist = make_ripple_design(5)
        p_obj, sites_obj, eng_obj, sites_arr, eng_arr = self._setup(netlist)
        grid = p_obj.grid
        occupant = {s: None for s in grid.sites()}
        for name, site in sites_obj.items():
            occupant[site] = name
        # Walk one instance along its own row and column: every step
        # keeps one axis coordinate coincident with other cells in that
        # row/column, exercising boundary counts > 1 on add and remove.
        mover = p_obj._movable[0]
        steps = [(c, sites_obj[mover][1]) for c in range(grid.cols)]
        steps += [(sites_obj[mover][0], r) for r in range(grid.rows)]
        for new_site in steps:
            old_site = sites_obj[mover]
            if new_site == old_site:
                continue
            other = occupant[new_site]
            sites_obj[mover] = new_site
            if other is not None:
                sites_obj[other] = old_site
            delta_obj = eng_obj.apply_move(mover, other, old_site, new_site)
            delta_arr = eng_arr.evaluate_move(mover, other, new_site)
            assert delta_obj == delta_arr
            eng_arr.commit()
            sites_arr[mover] = new_site
            if other is not None:
                sites_arr[other] = old_site
            occupant[new_site] = mover
            occupant[old_site] = other
        assert eng_obj.net_costs() == eng_arr.net_costs()

    def test_rejected_evaluation_leaves_state_untouched(self):
        netlist = make_ripple_design(4)
        _p, sites_obj, _eng_obj, _sites_arr, eng_arr = self._setup(netlist)
        mover = _p._movable[0]
        target = next(
            s for s in _p.grid.sites() if s != sites_obj[mover]
        )
        before_costs = eng_arr.net_costs()
        before_pos = (list(eng_arr.pos_x), list(eng_arr.pos_y))
        before_boxes = (
            list(eng_arr.xmin), list(eng_arr.xmax),
            list(eng_arr.ymin), list(eng_arr.ymax),
            list(eng_arr.n_xmin), list(eng_arr.n_xmax),
            list(eng_arr.n_ymin), list(eng_arr.n_ymax),
        )
        occupant = {}
        for name, site in sites_obj.items():
            occupant[site] = name
        eng_arr.evaluate_move(mover, occupant.get(target), target)
        assert eng_arr.net_costs() == before_costs
        assert (list(eng_arr.pos_x), list(eng_arr.pos_y)) == before_pos
        assert before_boxes == (
            list(eng_arr.xmin), list(eng_arr.xmax),
            list(eng_arr.ymin), list(eng_arr.ymax),
            list(eng_arr.n_xmin), list(eng_arr.n_xmax),
            list(eng_arr.n_ymin), list(eng_arr.n_ymax),
        )


class TestPersistentRealizationTables:
    def _fresh(self, arch: str, composite: bool):
        return _build_table(_resolve_cells(arch), composite)

    def test_persisted_load_equals_fresh_build(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        table_for_cells.cache_clear()
        try:
            built = compaction_table("granular")   # builds and persists
            table_for_cells.cache_clear()          # drop the in-process copy
            loaded = compaction_table("granular")  # loads the pickle
        finally:
            table_for_cells.cache_clear()
        assert loaded == built
        assert loaded == self._fresh("granular", True)
        assert any(tmp_path.rglob("*.pkl")), "table was not persisted"

    def test_worker_loaded_table_equals_fresh(self, tmp_path, monkeypatch):
        """A separate process loads the persisted table instead of rebuilding.

        The child stubs out ``_build_table`` so any rebuild attempt fails
        loudly — success proves the table came off disk — then checks the
        loaded table against a reference derivation run in this process.
        """
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        table_for_cells.cache_clear()
        try:
            compaction_table("granular")  # populate the on-disk cache
        finally:
            table_for_cells.cache_clear()
        fresh_repr = repr(sorted(self._fresh("granular", True).items()))

        child = (
            "import repro.synth.realize as R\n"
            "def _boom(*a, **k):\n"
            "    raise AssertionError('table was rebuilt, not loaded')\n"
            "R._build_table = _boom\n"
            "table = R.compaction_table('granular')\n"
            "import sys\n"
            "sys.stdout.write(repr(sorted(table.items())))\n"
        )
        env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path))
        env.pop("REPRO_NO_CACHE", None)
        result = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True, text=True, env=env, check=True,
        )
        assert result.stdout == fresh_repr

    def test_no_cache_env_still_builds(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        table_for_cells.cache_clear()
        try:
            table = compaction_table("lut")
        finally:
            table_for_cells.cache_clear()
        assert table == self._fresh("lut", True)


class TestNPNLookupTable:
    @pytest.mark.parametrize("n_inputs", [0, 1, 2, 3])
    def test_lut_matches_exhaustive_search(self, n_inputs):
        for mask in range(1 << (1 << n_inputs)):
            table = TruthTable(n_inputs, mask)
            canon, transform = npn_canonical_with_transform(table)
            ref_canon, ref_transform = _npn_canonical_exhaustive(table)
            assert canon == ref_canon
            assert transform == ref_transform
            assert transform.apply(table) == canon


class TestTruthTableInterning:
    def test_same_function_same_object(self):
        assert TruthTable(3, 0xE8) is TruthTable(3, 0xE8)
        assert TruthTable.input_var(2, 1) is TruthTable.input_var(2, 1)

    def test_operations_return_interned(self):
        a = TruthTable.input_var(2, 0)
        b = TruthTable.input_var(2, 1)
        assert (a & b) is (a & b)
        assert ~a is ~a


class TestRunDesignByName:
    FAST = FlowOptions(
        place_effort=0.05, place_iterations=1, pack_iterations=1, seed=11,
        use_cache=False,
    )

    def test_design_name_resolves(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.15")
        run = run_design("alu", "lut", self.FAST)
        assert run.design == "alu"

    def test_name_equals_explicit_netlist(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.15")
        by_name = run_design("alu", "lut", self.FAST)
        explicit = run_design(build_design("alu", 0.15), "lut", self.FAST)
        assert by_name.flow_a.die_area == explicit.flow_a.die_area
        assert by_name.flow_b.die_area == explicit.flow_b.die_area

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown design name"):
            run_design("no_such_design", "lut", self.FAST)

    def test_non_netlist_raises_type_error(self):
        with pytest.raises(TypeError, match="Netlist or a design name"):
            run_design(42, "lut", self.FAST)
