"""Tests for the flow-as-a-service subsystem (``repro.serve``).

Covered contracts:

* **Spec validation** — malformed submissions are rejected with clear
  errors at admission (HTTP 400), never enqueued.
* **Request keys** — coalescing identity follows the stage-cache key
  chain: perf knobs never change it, every semantic knob does.
* **Queue** — priority ordering, admission limit, persistence/replay
  (running jobs resume as queued), coalescing, cancellation.
* **End-to-end HTTP** — a served job's metrics are byte-identical to a
  direct ``run_design`` (the acceptance criterion), two identical
  submissions share one execution, 429 + Retry-After under admission
  pressure, DELETE cancels a running job at a stage boundary, drain
  checkpoints and a restarted server resumes warm, and SIGTERM makes
  the CLI daemon exit 0.

Jobs here run a tiny ALU (scale 0.15, minimal effort): ~1 s cold.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.flow.cache import StageCache
from repro.flow.experiments import build_design
from repro.flow.flow import request_key, run_design
from repro.flow.options import FlowOptions
from repro.serve import (
    JobQueue,
    JobSpec,
    QueueFull,
    ReproServer,
    ServeClient,
    ServeConfig,
    ServeError,
    derive_request_key,
)

SCALE = 0.15
FAST_OPTIONS = {
    "seed": 11, "place_effort": 0.05, "place_iterations": 1,
    "pack_iterations": 1,
}


def fast_payload(**overrides):
    payload = {
        "kind": "flow", "design": "alu", "arch": "granular",
        "scale": SCALE, "options": dict(FAST_OPTIONS),
    }
    payload.update(overrides)
    return payload


def fast_spec(**overrides) -> JobSpec:
    return JobSpec.from_payload(fast_payload(**overrides))


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------

class TestJobSpec:
    def test_roundtrip(self):
        spec = fast_spec(priority="high", timeout_seconds=5)
        again = JobSpec.from_payload(spec.to_dict())
        assert again == spec

    @pytest.mark.parametrize("payload, match", [
        ({"kind": "nope"}, "unknown kind"),
        ({"design": "alu", "frobnicate": 1}, "unknown field"),
        ({"design": "nonesuch"}, "unknown design"),
        ({"kind": "tables", "design": "alu"}, "drop 'design'"),
        ({"design": "alu", "arch": "asic"}, "unknown arch"),
        ({"design": "alu", "scale": 99}, "out of range"),
        ({"design": "alu", "scale": "big"}, "must be a number"),
        ({"design": "alu", "options": {"jobs": 4}}, "unsubmittable"),
        ({"design": "alu", "options": {"use_cache": False}},
         "unsubmittable"),
        ({"design": "alu", "priority": "urgent"}, "unknown priority"),
        ({"design": "alu", "timeout_seconds": -1}, "positive"),
        ([1, 2], "JSON object"),
    ])
    def test_rejects(self, payload, match):
        with pytest.raises(ValueError, match=match):
            JobSpec.from_payload(payload)

    def test_flow_options_round_trip(self):
        options = fast_spec().flow_options()
        assert options.seed == 11
        assert options.place_effort == 0.05
        assert options.arch == "granular"

    def test_flow_options_from_dict_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown flow option"):
            FlowOptions.from_dict({"plase_effort": 0.2})

    def test_flow_options_to_dict_round_trips(self):
        options = FlowOptions(seed=3, place_effort=0.4, jobs=2)
        assert FlowOptions.from_dict(options.to_dict()) == options


class TestRequestKey:
    def test_perf_knobs_do_not_change_key(self):
        base = fast_spec()
        assert derive_request_key(base) == derive_request_key(fast_spec())
        # jobs/schedule/use_cache/observe are not even submittable —
        # the stage-key chain is what guarantees they stay excluded.
        cache = StageCache(enabled=False)
        from repro.flow.experiments import build_design

        netlist = build_design("alu", SCALE)
        options = base.flow_options()
        noisy = replace(options, jobs=8, schedule="cell",
                        use_cache=False, observe=True)
        assert request_key(cache, netlist, options) == \
            request_key(cache, netlist, noisy)

    @pytest.mark.parametrize("change", [
        {"options": {**FAST_OPTIONS, "seed": 12}},
        {"arch": "lut"},
        # 0.5 changes the built netlist; tiny scale deltas that clamp
        # to the same design correctly keep the same key.
        {"scale": 0.5},
        {"kind": "check"},
    ])
    def test_semantic_knobs_change_key(self, change):
        assert derive_request_key(fast_spec(**change)) != \
            derive_request_key(fast_spec())

    def test_tables_key_is_kind_scoped(self):
        tables = JobSpec.from_payload(
            {"kind": "tables", "scale": SCALE, "options": FAST_OPTIONS}
        )
        assert derive_request_key(tables) != derive_request_key(fast_spec())


# ----------------------------------------------------------------------
# Queue semantics (no HTTP, no flow execution)
# ----------------------------------------------------------------------

class TestJobQueue:
    def test_priority_order(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)
        low = queue.submit(fast_spec(priority="low"), "key-low")
        normal = queue.submit(fast_spec(priority="normal"), "key-norm")
        high = queue.submit(fast_spec(priority="high"), "key-high")
        order = [queue.claim(timeout=0).id for _ in range(3)]
        assert order == [high.id, normal.id, low.id]

    def test_fifo_within_priority(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)
        first = queue.submit(fast_spec(), "key-a")
        second = queue.submit(fast_spec(), "key-b")
        assert queue.claim(timeout=0).id == first.id
        assert queue.claim(timeout=0).id == second.id

    def test_admission_limit(self, tmp_path):
        queue = JobQueue(tmp_path, limit=1)
        queue.submit(fast_spec(), "key-a")
        with pytest.raises(QueueFull, match="limit 1"):
            queue.submit(fast_spec(), "key-b")
        # An identical request still coalesces: it takes no queue slot.
        attached = queue.submit(fast_spec(), "key-a")
        assert attached.coalesced_into is not None

    def test_coalescing_and_result_propagation(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)
        primary = queue.submit(fast_spec(), "key-x")
        twin = queue.submit(fast_spec(), "key-x")
        assert twin.coalesced_into == primary.id
        claimed = queue.claim(timeout=0)
        assert claimed.id == primary.id
        assert queue.get(twin.id).state == "running"
        queue.finish(primary.id, {"answer": 42})
        assert queue.get(twin.id).state == "done"
        assert queue.get(twin.id).result == {"answer": 42}
        # After the primary finished, the same key runs fresh again.
        fresh = queue.submit(fast_spec(), "key-x")
        assert fresh.coalesced_into is None

    def test_cancel_queued_and_attached(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)
        primary = queue.submit(fast_spec(), "key-y")
        twin = queue.submit(fast_spec(), "key-y")
        assert queue.cancel(twin.id) == "cancelled"
        queue.claim(timeout=0)
        queue.finish(primary.id, {"answer": 1})
        # The individually cancelled twin never receives the result.
        assert queue.get(twin.id).state == "cancelled"
        assert queue.get(twin.id).result is None

    def test_cancel_running_sets_flag(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)
        job = queue.submit(fast_spec(), "key-z")
        queue.claim(timeout=0)
        assert queue.cancel(job.id) == "cancelling"
        assert queue.get(job.id).cancel_requested
        assert queue.cancel("j99999-nonesuch") is None

    def test_replay_resumes_running_as_queued(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)
        finished = queue.submit(fast_spec(), "key-done")
        queue.claim(timeout=0)
        queue.finish(finished.id, {"n": 7})
        interrupted = queue.submit(fast_spec(), "key-run")
        queue.claim(timeout=0)
        assert queue.get(interrupted.id).state == "running"

        revived = JobQueue(tmp_path, limit=8)  # simulated restart
        assert revived.get(finished.id).state == "done"
        assert revived.get(finished.id).result == {"n": 7}
        resumed = revived.get(interrupted.id)
        assert resumed.state == "queued"
        assert resumed.requeues == 1
        assert revived.claim(timeout=0).id == interrupted.id
        # The revived key is active again: identical requests coalesce.
        assert revived.submit(
            fast_spec(), "key-run"
        ).coalesced_into == interrupted.id

    def test_replay_tolerates_torn_tail(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)
        queue.submit(fast_spec(), "key-a")
        with queue.journal_path.open("a", encoding="utf-8") as handle:
            handle.write('{"rec": "state", "id": "j0')  # killed mid-write
        revived = JobQueue(tmp_path, limit=8)
        assert len(revived.jobs()) == 1


class TestQueueConcurrency:
    """Regression tests for defects the CC static rules surfaced (PR 9).

    ``claim`` used a bare ``Condition.wait`` inside an ``if`` (CC004):
    a spurious wakeup — or any notify that didn't enqueue work, like a
    cancellation — made it give up its whole timeout early.  ``emit``
    wrote the per-job event file while holding the queue condition
    (CC002): every submit/claim stalled behind disk I/O.
    """

    def test_claim_timeout_waits_out_unproductive_notifies(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)

        def nudge():
            # A notify with nothing enqueued (e.g. a cancellation).
            time.sleep(0.05)
            with queue._cond:
                queue._cond.notify_all()

        nudger = threading.Thread(target=nudge)
        nudger.start()
        started = time.monotonic()
        assert queue.claim(timeout=0.5) is None
        elapsed = time.monotonic() - started
        nudger.join()
        assert elapsed >= 0.4, (
            f"claim returned after {elapsed:.3f}s; an unproductive "
            f"notify must not consume the caller's timeout"
        )

    def test_claim_wakes_promptly_on_submit(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)
        claimed = []

        def claimer():
            claimed.append(queue.claim(timeout=10.0))

        worker = threading.Thread(target=claimer)
        worker.start()
        time.sleep(0.05)  # let the claimer block
        started = time.monotonic()
        job = queue.submit(fast_spec(), "key-wake")
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert time.monotonic() - started < 5.0
        assert claimed and claimed[0] is not None
        assert claimed[0].id == job.id

    def test_zero_timeout_claim_still_works(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)
        assert queue.claim(timeout=0) is None
        job = queue.submit(fast_spec(), "key-z")
        assert queue.claim(timeout=0).id == job.id

    def test_emit_wakes_long_pollers(self, tmp_path):
        queue = JobQueue(tmp_path, limit=8)
        job = queue.submit(fast_spec(), "key-emit")
        path = queue.events_path(job.id)
        woken = []

        def poller():
            woken.append(queue.wait_for_change(
                lambda: path.exists() and path.stat().st_size > 0,
                timeout=5.0,
            ))

        waiter = threading.Thread(target=poller)
        waiter.start()
        time.sleep(0.05)
        queue.emit(job.id, "job.stage", stage="synth")
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert woken == [True]
        # The event line landed, outside the lock, before the wakeup.
        assert "job.stage" in path.read_text()


# ----------------------------------------------------------------------
# End-to-end over HTTP
# ----------------------------------------------------------------------

@pytest.fixture()
def server(tmp_path):
    config = ServeConfig(
        port=0, workers=2, flow_jobs=1, queue_limit=8,
        queue_dir=tmp_path / "queue",
    )
    srv = ReproServer(config)
    srv.start()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    return ServeClient(f"http://127.0.0.1:{server.port}", timeout=60.0)


def _blocking_stage(monkeypatch, stage="physical"):
    """Make one stage block until released; returns (started, release)."""
    from repro.flow import flow as flow_module

    started = threading.Event()
    release = threading.Event()
    original = flow_module.compute_stage

    def patched(name, options, artifacts, netlist=None):
        if name == stage:
            started.set()
            assert release.wait(timeout=30), "test never released the stage"
        return original(name, options, artifacts, netlist=netlist)

    monkeypatch.setattr(flow_module, "compute_stage", patched)
    return started, release


class TestServeEndToEnd:
    def test_health_and_routes(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queued"] == 0
        with pytest.raises(ServeError) as err:
            client.job("j99999-nonesuch")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client._request("GET", "/v2/nothing")
        assert err.value.status == 404

    def test_invalid_submissions_are_400(self, client):
        with pytest.raises(ServeError) as err:
            client.submit(design="nonesuch")
        assert err.value.status == 400
        assert "unknown design" in str(err.value)
        with pytest.raises(ServeError) as err:
            client.submit(design="alu", options={"jobs": 4})
        assert err.value.status == 400

    def test_served_metrics_byte_identical_to_direct_run(self, client):
        ticket = client.submit(**fast_payload())
        job = client.wait(ticket["id"], timeout=120)
        assert job["state"] == "done"

        run = run_design(
            build_design("alu", SCALE), "granular",
            FlowOptions.from_dict(dict(FAST_OPTIONS)),
        )
        direct = json.dumps(run.metrics(), indent=2, sort_keys=True,
                            default=str)
        served = json.dumps(job["result"]["metrics"], indent=2,
                            sort_keys=True, default=str)
        assert served == direct

    def test_identical_submissions_coalesce_to_one_execution(
        self, server, client
    ):
        payload = fast_payload(options={**FAST_OPTIONS, "seed": 23})
        first = client.submit(**payload)
        second = client.submit(**payload)
        assert second["coalesced_into"] == first["id"]
        done_first = client.wait(first["id"], timeout=120)
        done_second = client.wait(second["id"], timeout=120)
        assert done_first["state"] == done_second["state"] == "done"
        assert done_first["result"] == done_second["result"]
        # One execution: both ids stream the *same* five stage events.
        for job_id in (first["id"], second["id"]):
            chunk = client.events(job_id)
            stages = [e for e in chunk["events"]
                      if e["name"] == "job.stage"]
            assert len(stages) == 5
            assert {e["attrs"]["id"] for e in stages} == {first["id"]}
        metrics = client.metrics_text()
        assert "repro_serve_jobs_coalesced_total 1" in metrics
        assert "repro_serve_jobs_done_total 1" in metrics

    def test_admission_control_returns_429(self, tmp_path):
        config = ServeConfig(port=0, workers=1, queue_limit=0,
                             queue_dir=tmp_path / "q429")
        srv = ReproServer(config)
        srv.start()
        try:
            client = ServeClient(f"http://127.0.0.1:{srv.port}")
            with pytest.raises(ServeError) as err:
                client.submit(**fast_payload())
            assert err.value.status == 429
            assert err.value.retry_after == 2
        finally:
            srv.close()

    def test_delete_cancels_running_job(self, client, monkeypatch):
        started, release = _blocking_stage(monkeypatch)
        ticket = client.submit(
            **fast_payload(options={**FAST_OPTIONS, "seed": 31})
        )
        assert started.wait(timeout=30)
        outcome = client.cancel(ticket["id"])
        assert outcome["state"] == "cancelling"
        release.set()
        job = client.wait(ticket["id"], timeout=60)
        assert job["state"] == "cancelled"
        assert "cancelled before stage" in (job["error"] or "")

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        # workers=0 is clamped to 1 at start; don't start the executor
        # at all so submissions stay queued.
        config = ServeConfig(port=0, workers=1, queue_limit=8,
                             queue_dir=tmp_path / "qcancel")
        srv = ReproServer(config)
        srv._http_thread = threading.Thread(
            target=srv.httpd.serve_forever, daemon=True
        )
        srv._http_thread.start()
        try:
            client = ServeClient(f"http://127.0.0.1:{srv.port}")
            ticket = client.submit(**fast_payload())
            assert client.cancel(ticket["id"])["state"] == "cancelled"
            assert client.job(ticket["id"])["state"] == "cancelled"
        finally:
            srv.httpd.shutdown()
            srv.httpd.server_close()

    def test_job_timeout_fails_with_clear_error(self, client, monkeypatch):
        started, release = _blocking_stage(monkeypatch)
        ticket = client.submit(
            **fast_payload(options={**FAST_OPTIONS, "seed": 37}),
            timeout_seconds=0.05,
        )
        assert started.wait(timeout=30)
        time.sleep(0.1)  # let the deadline lapse while the stage blocks
        release.set()
        job = client.wait(ticket["id"], timeout=60)
        assert job["state"] == "failed"
        assert "timeout after 0.05s" in job["error"]


class TestDrainAndResume:
    def test_drain_checkpoints_and_restart_resumes_warm(
        self, tmp_path, monkeypatch
    ):
        queue_dir = tmp_path / "queue"
        options = {**FAST_OPTIONS, "seed": 41}
        config = ServeConfig(port=0, workers=1, queue_limit=8,
                             queue_dir=queue_dir)
        first = ReproServer(config)
        first.start()
        client = ServeClient(f"http://127.0.0.1:{first.port}")
        started, release = _blocking_stage(monkeypatch)
        ticket = client.submit(**fast_payload(options=options))
        assert started.wait(timeout=30)

        drainer = threading.Thread(target=first.drain)
        drainer.start()
        # Draining refuses new work while the running job checkpoints.
        time.sleep(0.05)
        release.set()
        drainer.join(timeout=60)
        assert not drainer.is_alive()
        first.close()
        checkpointed = first.queue.get(ticket["id"])
        assert checkpointed.state == "queued"
        assert checkpointed.requeues >= 1

        # Same queue root, fresh server: the job resumes and its
        # synthesis/physical stages replay from the stage cache.
        second = ReproServer(ServeConfig(port=0, workers=1, queue_limit=8,
                                         queue_dir=queue_dir))
        second.start()
        try:
            client2 = ServeClient(f"http://127.0.0.1:{second.port}")
            job = client2.wait(ticket["id"], timeout=120)
            assert job["state"] == "done"
            run = run_design(
                build_design("alu", SCALE), "granular",
                FlowOptions.from_dict(dict(options)),
            )
            assert job["result"]["metrics"] == json.loads(
                json.dumps(run.metrics(), default=str)
            )
        finally:
            second.close()

    def test_draining_server_rejects_submissions_with_503(self, server):
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        server.executor._draining.set()
        with pytest.raises(ServeError) as err:
            client.submit(**fast_payload())
        assert err.value.status == 503


class TestServeCLI:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        env["REPRO_QUEUE_DIR"] = str(tmp_path / "queue")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            deadline = time.monotonic() + 30
            line = ""
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if "listening" in line:
                    break
            assert "listening" in line, "server never announced its port"
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
