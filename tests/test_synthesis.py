"""Integration tests: extraction, mapping and compaction preserve function."""

import pytest

from repro.cells.library import granular_plb_library, lut_plb_library
from repro.netlist.simulate import outputs_equal
from repro.netlist.stats import gather, total_area
from repro.netlist.validate import check
from repro.synth.compaction import compact
from repro.synth.from_netlist import CombCore, extract_core
from repro.synth.optimize import optimize
from repro.synth.techmap import map_core

from conftest import make_ripple_design


def optimized_core(netlist, effort=1):
    core = extract_core(netlist)
    return CombCore(
        aig=optimize(core.aig, effort=effort),
        primary_inputs=core.primary_inputs,
        primary_outputs=core.primary_outputs,
        dffs=core.dffs,
    )


class TestExtraction:
    def test_ports_preserved(self, ripple_design):
        core = extract_core(ripple_design)
        assert set(core.primary_inputs) == set(ripple_design.inputs)
        assert set(core.primary_outputs) == set(ripple_design.outputs)
        assert len(core.dffs) == 5

    def test_aig_matches_netlist_function(self, comb_design):
        from repro.logic.truthtable import TruthTable
        core = extract_core(comb_design)
        tables = core.aig.output_table()
        # f1 = x[1] ^ y[1] ^ x[2]
        names = core.aig.input_names
        idx = {n: i for i, n in enumerate(names)}
        x1 = TruthTable.input_var(len(names), idx["x[1]"])
        y1 = TruthTable.input_var(len(names), idx["y[1]"])
        x2 = TruthTable.input_var(len(names), idx["x[2]"])
        assert tables["f1"] == (x1 ^ y1 ^ x2)


@pytest.mark.parametrize("arch,libfn", [
    ("lut", lut_plb_library), ("granular", granular_plb_library),
])
class TestMapping:
    def test_sequential_equivalence(self, arch, libfn):
        src = make_ripple_design(width=5)
        mapped = map_core(optimized_core(src), arch, libfn())
        check(mapped)
        assert outputs_equal(src, mapped, n_cycles=4)

    def test_combinational_equivalence(self, arch, libfn, comb_design):
        mapped = map_core(optimized_core(comb_design), arch, libfn())
        check(mapped)
        assert outputs_equal(comb_design, mapped)

    def test_only_library_cells_used(self, arch, libfn, comb_design):
        library = libfn()
        mapped = map_core(optimized_core(comb_design), arch, library)
        for inst in mapped.instances.values():
            assert inst.cell.name in library or inst.cell.name.startswith("CAPTIE")

    def test_output_names_preserved(self, arch, libfn, comb_design):
        mapped = map_core(optimized_core(comb_design), arch, libfn())
        assert sorted(mapped.outputs) == sorted(comb_design.outputs)
        assert sorted(mapped.inputs) == sorted(comb_design.inputs)

    def test_compaction_structures_mode(self, arch, libfn, comb_design):
        mapped = map_core(
            optimized_core(comb_design), arch, libfn(),
            use_compaction_structures=True,
        )
        check(mapped)
        assert outputs_equal(comb_design, mapped)


@pytest.mark.parametrize("arch,libfn", [
    ("lut", lut_plb_library), ("granular", granular_plb_library),
])
class TestCompaction:
    def test_equivalence_and_never_regresses(self, arch, libfn):
        src = make_ripple_design(width=6)
        library = libfn()
        mapped = map_core(optimized_core(src, effort=2), arch, library)
        compacted, report = compact(mapped, arch, library)
        check(compacted)
        assert outputs_equal(src, compacted, n_cycles=4)
        assert report.area_after <= report.area_before
        assert report.reduction >= 0.0

    def test_report_consistency(self, arch, libfn, comb_design):
        library = libfn()
        mapped = map_core(optimized_core(comb_design), arch, library)
        compacted, report = compact(mapped, arch, library)
        if report.applied:
            assert report.area_after == pytest.approx(total_area(compacted))
            assert report.supernodes_collapsed > 0
            assert report.structure_histogram
        else:
            assert report.area_after == report.area_before

    def test_dffs_preserved(self, arch, libfn):
        src = make_ripple_design(width=4)
        library = libfn()
        mapped = map_core(optimized_core(src), arch, library)
        n_dff = gather(mapped).n_sequential
        compacted, _report = compact(mapped, arch, library)
        assert gather(compacted).n_sequential == n_dff


class TestCompactionEffect:
    def test_granular_finds_supernodes_on_adders(self):
        # The adder-heavy design exercises NDMX/XOAMX collapsing.
        src = make_ripple_design(width=8)
        library = granular_plb_library()
        mapped = map_core(optimized_core(src), "granular", library)
        compacted, report = compact(mapped, "granular", library)
        assert report.applied
        assert report.reduction > 0.0
