"""Integration tests for the full design flow (paper Figure 6)."""

import pytest

from repro.flow.experiments import (
    Figure2Data,
    Table1,
    Table1Row,
    Table2,
    Table2Row,
    build_design,
    run_figure2,
)
from repro.flow.flow import FlowOptions, architecture_of, run_design, synthesize
from repro.netlist.simulate import outputs_equal
from repro.netlist.validate import check

from conftest import make_ripple_design

FAST = FlowOptions(place_effort=0.05, place_iterations=1, pack_iterations=1)


@pytest.fixture(scope="module")
def small_runs():
    """Both architectures on a small adder design, full flow a + b."""
    runs = {}
    for arch in ("lut", "granular"):
        src = make_ripple_design(width=6, name="flowtest")
        runs[arch] = (src, run_design(src.copy(), arch, FAST))
    return runs


class TestArchitectureLookup:
    def test_known(self):
        assert architecture_of("lut").name == "lut"
        assert architecture_of("granular").name == "granular"

    def test_unknown(self):
        with pytest.raises(ValueError):
            architecture_of("cpld")


class TestSynthesize:
    @pytest.mark.parametrize("arch", ["lut", "granular"])
    def test_stats_and_report(self, arch):
        src = make_ripple_design(width=4)
        result = synthesize(src.copy(), FAST.with_arch(arch))
        check(result.netlist)
        assert result.stats.total_area <= result.pre_compaction_stats.total_area
        assert result.compaction.area_after <= result.compaction.area_before

    def test_compaction_can_be_disabled(self):
        from dataclasses import replace

        src = make_ripple_design(width=4)
        options = replace(FAST.with_arch("granular"), run_compaction=False)
        result = synthesize(src.copy(), options)
        assert not result.compaction.applied


class TestFullFlow:
    @pytest.mark.parametrize("arch", ["lut", "granular"])
    def test_flow_results_sane(self, small_runs, arch):
        _src, run = small_runs[arch]
        for result in (run.flow_a, run.flow_b):
            assert result.die_area > 0
            assert result.timing.critical_path_delay > 0
            assert result.routing.nets
        assert run.flow_a.flow == "a"
        assert run.flow_b.flow == "b"
        assert run.flow_b.plbs_used > 0
        assert run.flow_b.array_side > 0

    @pytest.mark.parametrize("arch", ["lut", "granular"])
    def test_flow_preserves_function(self, small_runs, arch):
        src, run = small_runs[arch]
        assert outputs_equal(src, run.physical.netlist, n_cycles=3)

    def test_flow_b_area_exceeds_cells(self, small_runs):
        # The PLB array must cost at least the netlist's own cell area.
        for arch, (_src, run) in small_runs.items():
            assert run.flow_b.die_area > run.flow_b.netlist_stats.total_area

    def test_granular_packs_denser(self, small_runs):
        # The adder workload: granular needs fewer PLBs than LUT-based
        # (the paper's packing-efficiency claim at design scale).
        _s, gran = small_runs["granular"]
        _s, lut = small_runs["lut"]
        assert gran.flow_b.plbs_used < lut.flow_b.plbs_used


class TestExperimentHelpers:
    def test_build_design_scales(self):
        small = build_design("alu", scale=0.4)
        large = build_design("alu", scale=1.0)
        assert len(large.instances) > len(small.instances)

    def test_build_design_unknown(self):
        with pytest.raises(ValueError):
            build_design("cpu", scale=1.0)

    def test_all_designs_buildable_small(self):
        for name in ("alu", "firewire", "fpu", "netswitch"):
            netlist = build_design(name, scale=0.3)
            check(netlist)

    def test_figure2_exact(self):
        data = run_figure2()
        assert isinstance(data, Figure2Data)
        assert data.s3_feasible == 196
        assert data.s3_infeasible == 60
        assert data.modified_s3_coverage == 256
        assert sum(data.category_counts.values()) == 60
        assert "196" in data.format()


class TestTableDataclasses:
    def test_table1_row_metrics(self):
        row = Table1Row("d", granular_flow_a=100, granular_flow_b=130,
                        lut_flow_a=150, lut_flow_b=200)
        assert row.granular_reduction == pytest.approx(0.35)
        assert row.granular_overhead == 30
        assert row.lut_overhead == 50

    def test_table1_aggregates(self):
        rows = {
            name: Table1Row(name, 100, 120, 150, 200)
            for name in ("alu", "fpu", "netswitch", "firewire")
        }
        table = Table1(rows=rows)
        assert table.datapath_average_reduction == pytest.approx(0.4)
        assert 0 < table.datapath_overhead_reduction < 1
        assert "Table 1" in table.format()

    def test_table2_row_metrics(self):
        row = Table2Row("d", n_gates=100, granular_flow_a=-0.4,
                        granular_flow_b=-0.8, lut_flow_a=-0.5, lut_flow_b=-1.0)
        assert row.slack_improvement == pytest.approx(0.2)
        assert row.granular_degradation == pytest.approx(0.4)
        assert row.lut_degradation == pytest.approx(0.5)

    def test_table2_aggregates(self):
        rows = {
            "alu": Table2Row("alu", 100, -0.4, -0.8, -0.5, -1.0),
            "fpu": Table2Row("fpu", 200, -0.2, -0.4, -0.6, -0.8),
        }
        table = Table2(rows=rows, period=0.5)
        assert table.average_slack_improvement > 0
        assert table.degradation_reduction == pytest.approx(1 - 0.6 / 0.7)
        assert "Table 2" in table.format()
