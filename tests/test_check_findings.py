"""Unit tests for the findings model and rule registry."""

import json

import pytest

from repro.check import (
    REGISTRY,
    CheckError,
    Finding,
    Report,
    Rule,
    RuleRegistry,
    Severity,
    filter_findings,
    rule_catalog,
)


def _finding(rule_id="NL001", severity=Severity.ERROR, loc="net x"):
    return Finding(
        rule_id=rule_id, severity=severity, location=loc,
        message="boom", fix_hint="fix it", stage="netlist",
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_label(self):
        assert Severity.ERROR.label == "error"

    def test_parse(self):
        assert Severity.parse("Warning") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.parse("fatal")


class TestFinding:
    def test_format_carries_rule_and_hint(self):
        text = _finding().format()
        assert "NL001" in text and "net x" in text and "fix it" in text

    def test_to_dict_round_trips_through_json(self):
        d = json.loads(json.dumps(_finding().to_dict()))
        assert d["rule"] == "NL001"
        assert d["severity"] == "error"
        assert d["location"] == "net x"


class TestReport:
    def test_severity_queries(self):
        report = Report([
            _finding(severity=Severity.INFO),
            _finding(severity=Severity.WARNING),
            _finding(severity=Severity.ERROR),
        ])
        assert len(report) == 3
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert len(report.at_least(Severity.WARNING)) == 2
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}

    def test_empty_report_is_falsy(self):
        assert not Report()
        assert Report().format() == "no findings"

    def test_format_sorts_errors_first(self):
        report = Report([
            _finding(rule_id="ZZ001", severity=Severity.INFO),
            _finding(rule_id="AA001", severity=Severity.ERROR),
        ])
        lines = report.format().splitlines()
        assert "AA001" in lines[0]

    def test_to_json_shape(self):
        doc = Report([_finding()]).to_json()
        assert doc["counts"]["error"] == 1
        assert doc["findings"][0]["rule"] == "NL001"

    def test_sarif_document(self):
        doc = Report([_finding()]).to_sarif(rule_catalog())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        result = run["results"][0]
        assert result["ruleId"] == "NL001"
        assert result["level"] == "error"
        ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "NL001" in ids and "DT001" in ids

    def test_sarif_levels(self):
        doc = Report([
            _finding(severity=Severity.INFO),
            _finding(severity=Severity.WARNING),
        ]).to_sarif()
        levels = [r["level"] for r in doc["runs"][0]["results"]]
        assert levels == ["note", "warning"]


class TestRegistry:
    def test_duplicate_id_rejected(self):
        registry = RuleRegistry()
        registry.register(Rule("XX001", Severity.ERROR, "netlist", "x"))
        with pytest.raises(ValueError):
            registry.register(Rule("XX001", Severity.ERROR, "netlist", "y"))

    def test_unknown_id_lists_known(self):
        with pytest.raises(KeyError, match="NL001"):
            REGISTRY.get("XY999")

    def test_validate_selection(self):
        assert REGISTRY.validate_selection(["NL001"]) == {"NL001"}
        with pytest.raises(KeyError):
            REGISTRY.validate_selection(["nope"])

    def test_catalog_covers_every_family(self):
        families = {r.rule_id[:2] for r in rule_catalog()}
        assert families >= {"NL", "LB", "PK", "PL", "RT", "EQ", "DT"}

    def test_error_capable_rule_count(self):
        errors = [
            r for r in rule_catalog() if r.severity is Severity.ERROR
        ]
        assert len(errors) >= 12

    def test_filter_findings(self):
        fs = [_finding("NL001"), _finding("NL002")]
        assert filter_findings(fs, None) == fs
        assert [f.rule_id for f in filter_findings(fs, {"NL002"})] == ["NL002"]


class TestCheckError:
    def test_str_cites_first_error(self):
        err = CheckError(report=Report([_finding()]), context="ctx")
        assert "ctx" in str(err) and "NL001" in str(err)
