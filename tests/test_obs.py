"""Unit tests for the observability subsystem (repro.obs).

Covers the tracing core's lifecycle and no-op fast path, the metrics
registry (histogram percentile math, cross-process merging), journal
write/read round-trips, and the exporters (span tree, Chrome trace,
stats, Prometheus text).
"""

import json
import os

import pytest

from repro.obs import core, export, journal
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    RATIO_BUCKETS,
    Histogram,
    Metrics,
)


class TestNoopFastPath:
    def test_span_is_shared_noop_while_off(self):
        assert not core.active()
        s = core.span("anything", key="value")
        assert s is core.NOOP_SPAN
        assert core.span("other") is s
        with s as inner:
            inner.set(whatever=1)  # must be a silent no-op

    def test_point_counter_gauge_observe_noop_while_off(self):
        core.point("p", a=1)
        core.counter("c")
        core.gauge("g", 1.0)
        core.observe("h", 0.5)
        assert not core.active()


class TestTraceLifecycle:
    def test_begin_returns_true_only_for_owner(self):
        assert core.begin() is True
        assert core.active()
        assert core.begin() is False  # nested layers record, don't own
        events = core.drain()
        assert not core.active()
        assert events[0]["ev"] == "meta"
        assert core.drain() == []  # drained trace is gone

    def test_nested_spans_record_parent_chain(self):
        core.begin()
        with core.span("outer", tier="top") as outer:
            with core.span("inner") as inner:
                core.point("tick", n=1)
            outer.set(late="attr")
        events = core.drain()
        spans = {e["name"]: e for e in events if e["ev"] == "span"}
        points = [e for e in events if e["ev"] == "point"]
        assert spans["inner"]["parent"] == spans["outer"]["sid"]
        assert "parent" not in spans["outer"]
        assert spans["outer"]["attrs"] == {"tier": "top", "late": "attr"}
        assert points[0]["parent"] == spans["inner"]["sid"]
        assert points[0]["attrs"] == {"n": 1}
        assert spans["inner"]["dur"] >= 0.0
        # inner closes before outer, so it is appended first
        names = [e["name"] for e in events if e["ev"] == "span"]
        assert names == ["inner", "outer"]

    def test_span_ids_unique_across_trace_sessions(self):
        """A worker runs one trace per cell; sids must never collide
        after the fragments merge into one journal."""
        sids = []
        for _ in range(2):
            core.begin()
            with core.span("s"):
                pass
            sids.extend(
                e["sid"] for e in core.drain() if e["ev"] == "span"
            )
        assert len(sids) == len(set(sids))

    def test_metrics_snapshot_appended_on_drain(self):
        core.begin()
        core.counter("hits", 3)
        core.gauge("level", 0.7)
        core.observe("lat", 0.02)
        events = core.drain()
        kinds = [e["ev"] for e in events]
        assert kinds.count("counter") == 1
        assert kinds.count("gauge") == 1
        assert kinds.count("hist") == 1
        counter = next(e for e in events if e["ev"] == "counter")
        assert (counter["name"], counter["value"]) == ("hits", 3)

    def test_absorb_folds_foreign_events(self):
        core.begin()
        foreign = [{"ev": "span", "name": "w", "sid": "999:1",
                    "pid": 999, "ts": 0.0, "dur": 0.1}]
        core.absorb(foreign)
        events = core.drain()
        assert any(e.get("pid") == 999 for e in events)

    def test_fork_inherited_state_is_discarded(self):
        """A forked worker inherits the parent's tracer; first touch from
        the child pid must drop it (parent keeps its own copy)."""
        core.begin()
        core._STATE.pid = os.getpid() + 1  # simulate being the child
        assert not core.active()
        assert core.begin() is True  # child starts a fresh trace of its own
        core.drain()

    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv(core.TRACE_ENV, raising=False)
        assert not core.env_requested()
        monkeypatch.setenv(core.TRACE_ENV, "0")
        assert not core.env_requested()
        monkeypatch.setenv(core.TRACE_ENV, "1")
        assert core.env_requested()


class TestHistogram:
    def test_percentiles_clamped_to_observed_range(self):
        h = Histogram("t")
        for _ in range(100):
            h.observe(0.3)  # all in one bucket
        assert h.count == 100
        assert h.percentile(50) == pytest.approx(0.3)
        assert h.percentile(99) == pytest.approx(0.3)
        assert h.mean == pytest.approx(0.3)

    def test_percentile_orders_mixed_observations(self):
        h = Histogram("t")
        for v in [0.001] * 50 + [10.0] * 50:
            h.observe(v)
        assert h.percentile(10) < 0.01
        assert h.percentile(95) > 1.0
        assert h.percentile(0) >= h.min
        assert h.percentile(100) <= h.max

    def test_empty_histogram(self):
        h = Histogram("t")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        event = h.to_event()
        assert event["min"] == 0.0 and event["max"] == 0.0

    def test_overflow_bucket(self):
        h = Histogram("t")
        h.observe(DEFAULT_BUCKETS[-1] * 10)
        assert h.counts[-1] == 1
        assert h.percentile(99) == pytest.approx(DEFAULT_BUCKETS[-1] * 10)

    def test_custom_bounds(self):
        h = Histogram("rate", RATIO_BUCKETS)
        h.observe(0.49)
        assert len(h.counts) == len(RATIO_BUCKETS) + 1
        assert h.percentile(50) == pytest.approx(0.49)

    def test_event_roundtrip_and_merge(self):
        a = Histogram("t")
        b = Histogram("t")
        for v in (0.01, 0.02, 0.03):
            a.observe(v)
        for v in (0.5, 1.5):
            b.observe(v)
        restored = Histogram.from_event(
            json.loads(json.dumps(a.to_event()))
        )
        assert restored.counts == a.counts
        assert restored.count == a.count
        restored.merge(Histogram.from_event(b.to_event()))
        assert restored.count == 5
        assert restored.sum == pytest.approx(a.sum + b.sum)
        assert restored.min == pytest.approx(0.01)
        assert restored.max == pytest.approx(1.5)

    def test_metrics_registry_reuses_instruments(self):
        m = Metrics()
        m.counter("c").inc()
        m.counter("c").inc(2)
        assert m.counter("c").value == 3
        m.gauge("g").set(1.0)
        m.gauge("g").set(2.0)
        assert m.gauge("g").value == 2.0
        assert m.histogram("h") is m.histogram("h")
        events = m.snapshot_events(pid=1, ts=0.0)
        assert [e["ev"] for e in events] == ["counter", "gauge", "hist"]


class TestJournal:
    def test_write_read_roundtrip(self, tmp_path):
        core.begin()
        with core.span("root"):
            core.point("tick")
        path = journal.finalize("unit", directory=tmp_path)
        assert path is not None and path.exists()
        events = journal.read_journal(path)
        assert events[0]["ev"] == "meta"
        assert {e["ev"] for e in events} >= {"meta", "span", "point"}
        assert journal.latest_journal(tmp_path) == path
        assert journal.last_journal() == path

    def test_finalize_without_trace_is_none(self, tmp_path):
        assert journal.finalize("idle", directory=tmp_path) is None

    def test_bad_line_reports_path_and_lineno(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ev": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            journal.read_journal(bad)

    def test_journal_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(journal.JOURNAL_DIR_ENV, str(tmp_path / "j"))
        assert journal.journal_dir() == tmp_path / "j"

    def test_environment_fingerprint_keys(self):
        fp = journal.environment_fingerprint()
        assert {"python", "platform", "cpu_count", "env"} <= set(fp)
        assert all(k.startswith("REPRO_") for k in fp["env"])


def _sample_events():
    core.begin()
    with core.span("root", design="alu"):
        with core.span("child"):
            core.point("marker", n=2)
        core.counter("widgets", 4)
        core.gauge("fill", 0.25)
        core.observe("lat", 0.02)
    return core.drain()


class TestExport:
    def test_span_tree_structure(self):
        roots = export.build_span_tree(_sample_events())
        assert [r.name for r in roots] == ["root"]
        child = roots[0].children[0]
        assert child.name == "child"
        assert child.children[0].name == "marker"

    def test_span_tree_orphans_become_roots(self):
        events = [{"ev": "span", "name": "lost", "sid": "1:1",
                   "pid": 1, "ts": 0.0, "dur": 0.1, "parent": "0:0"}]
        roots = export.build_span_tree(events)
        assert [r.name for r in roots] == ["lost"]

    def test_format_span_tree(self):
        text = export.format_span_tree(_sample_events())
        assert "root" in text and "child" in text and "* marker" in text
        assert "design=alu" in text
        shallow = export.format_span_tree(_sample_events(), max_depth=0)
        assert "child" not in shallow

    def test_chrome_trace_shape(self):
        doc = export.chrome_trace(_sample_events())
        assert doc["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert "M" in phases and "X" in phases and "i" in phases
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] >= 0.0 and e["dur"] >= 0.0 for e in complete)
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_merges_across_pids(self):
        events = _sample_events() + _sample_events()
        counters = export.merge_counters(events)
        assert counters["widgets"] == 8
        hists = export.merge_histograms(events)
        assert hists["lat"].count == 2
        gauges = export.merge_gauges(events)
        assert gauges["fill"] == 0.25

    def test_format_stats(self):
        text = export.format_stats(_sample_events())
        assert "widgets" in text and "fill" in text and "lat" in text
        assert "p95" in text
        assert export.format_stats([]) == "no metrics recorded in this journal"

    def test_prometheus_text(self):
        text = export.prometheus_text(_sample_events())
        assert "repro_widgets_total 4" in text
        assert "repro_fill 0.25" in text
        assert '_bucket{le="+Inf"} 1' in text
        assert "repro_lat_sum" in text
        lines = text.splitlines()
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("repro_lat_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)  # cumulative


class TestTailJournal:
    def test_missing_file_yields_nothing(self, tmp_path):
        events, offset = journal.tail_journal(tmp_path / "nope.jsonl", 0)
        assert events == [] and offset == 0

    def test_incremental_reads_resume_at_offset(self, tmp_path):
        path = tmp_path / "grow.jsonl"
        path.write_text('{"n": 1}\n{"n": 2}\n', encoding="utf-8")
        events, offset = journal.tail_journal(path, 0)
        assert [e["n"] for e in events] == [1, 2]
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"n": 3}\n')
        events, offset = journal.tail_journal(path, offset)
        assert [e["n"] for e in events] == [3]
        assert journal.tail_journal(path, offset) == ([], offset)

    def test_torn_tail_is_left_for_next_call(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"n": 1}\n{"n": 2', encoding="utf-8")
        events, offset = journal.tail_journal(path, 0)
        assert [e["n"] for e in events] == [1]
        with path.open("a", encoding="utf-8") as handle:
            handle.write('}\n')
        events, offset = journal.tail_journal(path, offset)
        assert [e["n"] for e in events] == [2]

    def test_corrupt_complete_line_is_skipped(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('not json at all\n{"n": 2}\n', encoding="utf-8")
        events, _offset = journal.tail_journal(path, 0)
        assert [e.get("n") for e in events] == [2]


class TestTraceStatsCliErrors:
    """``repro stats`` / ``repro trace`` fail with one clear line, never
    a traceback, on missing, empty, or corrupt journals."""

    @pytest.mark.parametrize("command", ["stats", "trace"])
    def test_empty_journal_dir(self, command, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "none"))
        assert main([command]) == 1
        err = capsys.readouterr().err
        assert "no journals under" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("command", ["stats", "trace"])
    def test_missing_journal_path(self, command, tmp_path, capsys):
        from repro.cli import main

        assert main([command, str(tmp_path / "gone.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "no journal at" in err

    @pytest.mark.parametrize("command", ["stats", "trace"])
    def test_corrupt_journal(self, command, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "corrupt.jsonl"
        bad.write_text('{"ev": "span"\n', encoding="utf-8")
        assert main([command, str(bad)]) == 1
        err = capsys.readouterr().err
        assert "cannot read journal" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("command", ["stats", "trace"])
    def test_empty_journal_file(self, command, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main([command, str(empty)]) == 1
        err = capsys.readouterr().err
        assert "is empty" in err
