"""Unit tests for PLB packing: resources, quadrisection, iteration."""

from collections import Counter, defaultdict

import pytest

from repro.cells.characterize import characterize_library
from repro.netlist.simulate import outputs_equal
from repro.pack.iterative import run_packing_loop
from repro.pack.quadrisection import pack
from repro.pack.resources import (
    PackingError,
    SlotPool,
    min_plbs,
    region_fits,
    size_array,
)
from repro.place.grid import grid_for_netlist
from repro.place.sa import AnnealingPlacer
from repro.synth.from_netlist import extract_core
from repro.synth.techmap import map_core

from conftest import make_ripple_design


@pytest.fixture(scope="module")
def mapped_designs():
    """Ripple design mapped onto both architectures with placements."""
    from repro.cells.library import granular_plb_library, lut_plb_library
    from repro.core.plb import granular_plb, lut_plb

    out = {}
    src = make_ripple_design(width=6)
    for arch_name, arch, lib in (
        ("granular", granular_plb(), granular_plb_library()),
        ("lut", lut_plb(), lut_plb_library()),
    ):
        mapped = map_core(extract_core(src), arch_name, lib)
        grid = grid_for_netlist(mapped)
        placement = AnnealingPlacer(mapped, grid, seed=1, effort=0.05).place()
        out[arch_name] = (src, mapped, placement, arch, lib)
    return out


class TestSlotPool:
    def test_take_release(self, gran_arch):
        pool = SlotPool.for_plbs(gran_arch, 1)
        assert pool.free("MUX2") == 2
        pool.take("MUX2")
        pool.take("MUX2")
        assert pool.free("MUX2") == 0
        with pytest.raises(PackingError):
            pool.take("MUX2")
        pool.release("MUX2")
        assert pool.free("MUX2") == 1

    def test_can_host_preference_order(self, gran_arch):
        pool = SlotPool.for_plbs(gran_arch, 1)
        # ND2WI prefers the ND3WI slot; once taken, falls to mux slots.
        assert pool.can_host(gran_arch, "ND2WI") == "ND3WI"
        pool.take("ND3WI")
        assert pool.can_host(gran_arch, "ND2WI") in ("XOA", "MUX2")


class TestSizing:
    def test_min_plbs_lower_bounds(self, mapped_designs, gran_arch):
        _src, mapped, _placement, arch, _lib = mapped_designs["granular"]
        n = min_plbs(arch, mapped)
        dffs = sum(1 for _ in mapped.sequential_instances())
        assert n >= dffs  # one DFF slot per PLB

    def test_region_fits_monotone(self, mapped_designs):
        _src, mapped, _placement, arch, _lib = mapped_designs["granular"]
        instances = list(mapped.instances.values())
        n = min_plbs(arch, mapped)
        assert region_fits(arch, instances, n)
        assert not region_fits(arch, instances, max(1, n - 1))
        assert region_fits(arch, instances, n + 5)

    def test_size_array_covers_need(self, mapped_designs):
        _src, mapped, _placement, arch, _lib = mapped_designs["granular"]
        cols, rows = size_array(arch, mapped)
        assert cols * rows >= min_plbs(arch, mapped)

    def test_unhostable_cell_rejected(self, gran_arch):
        from repro.cells.celltypes import make_lut3
        from repro.netlist.core import Netlist
        from repro.logic.truthtable import TruthTable

        n = Netlist("bad")
        a = n.add_input("a")
        b = n.add_input("b")
        c = n.add_input("c")
        n.add_instance(
            make_lut3(), {"A": a, "B": b, "C": c}, config=TruthTable(3, 0x96)
        )
        with pytest.raises(PackingError):
            min_plbs(gran_arch, n)


@pytest.mark.parametrize("arch_name", ["granular", "lut"])
class TestQuadrisection:
    def test_all_instances_assigned(self, mapped_designs, arch_name):
        _src, mapped, placement, arch, _lib = mapped_designs[arch_name]
        cols, rows = size_array(arch, mapped)
        result = pack(mapped, placement, arch, cols, rows)
        assert set(result.assignments) == set(mapped.instances)

    def test_no_plb_over_capacity(self, mapped_designs, arch_name):
        _src, mapped, placement, arch, _lib = mapped_designs[arch_name]
        cols, rows = size_array(arch, mapped)
        result = pack(mapped, placement, arch, cols, rows)
        usage = defaultdict(Counter)
        for assignment in result.assignments.values():
            usage[assignment.plb][assignment.slot] += 1
        for plb, slots in usage.items():
            for slot, count in slots.items():
                assert count <= arch.slots[slot], (plb, slot, count)

    def test_slots_compatible(self, mapped_designs, arch_name):
        _src, mapped, placement, arch, _lib = mapped_designs[arch_name]
        cols, rows = size_array(arch, mapped)
        result = pack(mapped, placement, arch, cols, rows)
        for name, assignment in result.assignments.items():
            cell_name = mapped.instances[name].cell.name
            assert assignment.slot in arch.hosting_slots(cell_name)

    def test_die_area_and_utilization(self, mapped_designs, arch_name):
        _src, mapped, placement, arch, _lib = mapped_designs[arch_name]
        cols, rows = size_array(arch, mapped)
        result = pack(mapped, placement, arch, cols, rows)
        assert result.die_area == pytest.approx(cols * rows * arch.area)
        util = result.utilization()
        assert all(0.0 <= v <= 1.0 for v in util.values())
        assert result.plbs_used <= result.n_plbs

    def test_array_too_small_rejected(self, mapped_designs, arch_name):
        _src, mapped, placement, arch, _lib = mapped_designs[arch_name]
        with pytest.raises(PackingError):
            pack(mapped, placement, arch, 1, 1)

    def test_criticality_biases_displacement(self, mapped_designs, arch_name):
        _src, mapped, placement, arch, _lib = mapped_designs[arch_name]
        cols, rows = size_array(arch, mapped)
        baseline = pack(mapped, placement, arch, cols, rows)
        # With every cell maximally critical the packer still succeeds.
        crit = {name: 1.0 for name in mapped.instances}
        critical = pack(mapped, placement, arch, cols, rows, crit)
        assert set(critical.assignments) == set(baseline.assignments)


class TestPackingLoop:
    def test_loop_preserves_function(self, mapped_designs):
        src, mapped, placement, arch, lib = mapped_designs["granular"]
        timing = characterize_library(lib)
        work = mapped.copy()
        packed = run_packing_loop(
            work, placement, arch, lib, timing, period=0.5
        )
        assert outputs_equal(src, packed.netlist, n_cycles=3)
        assert packed.die_area > 0
        assert packed.timing.critical_path_delay > 0
