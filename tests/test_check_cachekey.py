"""Tests for the CK cache-key coherence family (repro.check.cachekey).

Each ERROR rule gets a corrupted-fixture test: a synthetic mini-flow
with a seeded incoherence (a read the key chain misses, an ambient
input in stage-reachable code, a drifted PERF_KNOBS contract) that the
analyzer must flag — plus the clean twin it must not flag, suppression
behavior, the CLI integration (`--self --rules CK`, grouped
--list-rules, SARIF), and the clean-on-HEAD guarantee that the shipped
flow has no incoherencies left.
"""

import json

import pytest

from repro.check import (
    REGISTRY,
    analyze_cache_keys,
    static_stage_model,
)
from repro.check.cachekey import analyze_source
from repro.cli import main


def rules_of(findings):
    return sorted(f.rule_id for f in findings)


# A self-contained two-stage flow with a coherent key chain:
# alpha keys width (and reads it), beta chains on alpha and keys/reads
# depth, verbose is a declared perf knob.
CLEAN = '''
PERF_KNOBS = frozenset({"verbose"})

STAGES = ("alpha", "beta")

STAGE_KEY_PARENT = {"alpha": None, "beta": "alpha"}


class FlowOptions:
    width: int = 4
    depth: int = 2
    verbose: bool = False


def stage_cache_key(cache, stage, options, parent_key=None):
    if stage == "alpha":
        return cache.key("alpha", options.width)
    if stage == "beta":
        return cache.key("beta", parent_key, options.depth)
    raise ValueError(stage)


def _run_alpha(options):
    return options.width * 2


def _run_beta(artifact, options):
    return artifact + options.depth


def compute_stage(stage, options, artifacts):
    if stage == "alpha":
        return _run_alpha(options)
    if stage == "beta":
        return _run_beta(artifacts["alpha"], options)
    raise ValueError(stage)
'''


class TestFixtureCoherence:
    def test_clean_fixture_has_no_findings(self):
        assert analyze_source(CLEAN) == []

    def test_module_without_anchors_is_silent(self):
        assert analyze_source("def helper(x):\n    return x\n") == []

    def test_syntax_error_is_reported_not_raised(self):
        findings = analyze_source("def broken(:\n")
        assert len(findings) == 1
        assert "parse" in findings[0].message.lower()


class TestCK001ReadNotKeyed:
    def test_read_outside_key_chain_flags(self):
        # alpha reads depth, but depth is keyed only in beta — alpha's
        # chain is {width}, so cached alpha results go stale.
        bad = CLEAN.replace(
            "return options.width * 2",
            "return options.width * options.depth",
        )
        findings = analyze_source(bad)
        assert "CK001" in rules_of(findings)
        (f,) = [f for f in findings if f.rule_id == "CK001"]
        assert "'alpha'" in f.message and "depth" in f.message

    def test_chain_covers_parent_keys(self):
        # beta reading width is fine: width is keyed in alpha, and
        # beta's key chains on alpha's.
        ok = CLEAN.replace(
            "return artifact + options.depth",
            "return artifact + options.depth + options.width",
        )
        assert rules_of(analyze_source(ok)) == []

    def test_interprocedural_read_is_found(self):
        # The read happens two calls below the stage entry, with the
        # options object passed whole.
        bad = CLEAN.replace(
            "def _run_alpha(options):\n    return options.width * 2",
            "def _deep(options):\n"
            "    return options.depth\n\n\n"
            "def _mid(options):\n"
            "    return _deep(options)\n\n\n"
            "def _run_alpha(options):\n"
            "    return options.width * _mid(options)",
        )
        assert "CK001" in rules_of(analyze_source(bad))


class TestCK002Drift:
    def test_unread_key_component_warns(self):
        bad = CLEAN.replace(
            'return cache.key("beta", parent_key, options.depth)',
            'return cache.key("beta", parent_key, options.depth, '
            "options.width)",
        )
        findings = [
            f for f in analyze_source(bad) if f.rule_id == "CK002"
        ]
        assert findings and "never read" in findings[0].message

    def test_dead_options_field_warns(self):
        bad = CLEAN.replace(
            "depth: int = 2",
            "depth: int = 2\n    ghost: int = 0",
        )
        findings = [
            f for f in analyze_source(bad) if f.rule_id == "CK002"
        ]
        assert findings and "ghost" in findings[0].message

    def test_perf_knob_is_not_dead_config(self):
        # verbose is neither read nor keyed, but it is a declared knob.
        assert rules_of(analyze_source(CLEAN)) == []


class TestCK003Impurity:
    def test_env_read_in_stage_code_flags(self):
        bad = CLEAN.replace(
            "def _run_alpha(options):\n    return options.width * 2",
            "import os\n\n\n"
            "def _run_alpha(options):\n"
            '    fudge = int(os.environ.get("FUDGE", "1"))\n'
            "    return options.width * fudge",
        )
        findings = [
            f for f in analyze_source(bad) if f.rule_id == "CK003"
        ]
        assert findings and "environ" in findings[0].message

    def test_wall_clock_in_stage_code_flags(self):
        bad = CLEAN.replace(
            "def _run_alpha(options):\n    return options.width * 2",
            "import time\n\n\n"
            "def _run_alpha(options):\n"
            "    return options.width * int(time.time())",
        )
        assert "CK003" in rules_of(analyze_source(bad))

    def test_mutable_global_registry_flags(self):
        bad = CLEAN.replace(
            "def _run_alpha(options):\n    return options.width * 2",
            "_REGISTRY = {}\n\n\n"
            "def register(name, value):\n"
            "    _REGISTRY[name] = value\n\n\n"
            "def _run_alpha(options):\n"
            '    return _REGISTRY.get("bias", 0) + options.width',
        )
        findings = [
            f for f in analyze_source(bad) if f.rule_id == "CK003"
        ]
        assert findings and "_REGISTRY" in findings[0].message

    def test_unreachable_impurity_is_ignored(self):
        # The env read sits in a helper no stage entry can reach.
        ok = CLEAN + (
            "\n\nimport os\n\n\n"
            "def cli_helper():\n"
            '    return os.environ.get("COLUMNS", "80")\n'
        )
        assert rules_of(analyze_source(ok)) == []

    def test_allow_comment_suppresses(self):
        bad = CLEAN.replace(
            "def _run_alpha(options):\n    return options.width * 2",
            "import os\n\n\n"
            "def _run_alpha(options):\n"
            '    fudge = int(os.environ.get("FUDGE", "1"))'
            "  # check: allow(CK003)\n"
            "    return options.width * fudge",
        )
        assert rules_of(analyze_source(bad)) == []


class TestCK004KnobDrift:
    def test_missing_perf_knobs_flags(self):
        bad = CLEAN.replace(
            'PERF_KNOBS = frozenset({"verbose"})\n', ""
        )
        findings = [
            f for f in analyze_source(bad) if f.rule_id == "CK004"
        ]
        assert findings and "PERF_KNOBS" in findings[0].message

    def test_stale_knob_name_flags(self):
        bad = CLEAN.replace(
            'frozenset({"verbose"})', 'frozenset({"verbose", "ghost"})'
        )
        findings = [
            f for f in analyze_source(bad) if f.rule_id == "CK004"
        ]
        assert findings and "ghost" in findings[0].message

    def test_keyed_knob_flags(self):
        bad = CLEAN.replace(
            'return cache.key("alpha", options.width)',
            'return cache.key("alpha", options.width, options.verbose)',
        )
        findings = [
            f for f in analyze_source(bad) if f.rule_id == "CK004"
        ]
        assert findings and "verbose" in findings[0].message

    def test_submittable_knobs_must_be_subset(self):
        bad = CLEAN + '\n_SUBMITTABLE_PERF_KNOBS = ("width",)\n'
        findings = [
            f for f in analyze_source(bad) if f.rule_id == "CK004"
        ]
        assert findings and "width" in findings[0].message


class TestHeadIsCoherent:
    def test_shipped_flow_has_no_ck_findings(self):
        assert analyze_cache_keys() == []

    def test_static_model_matches_flow_contract(self):
        model = static_stage_model()
        assert model is not None
        assert model.stages == (
            "synthesis", "physical", "route_a", "packing", "route_b",
        )
        assert model.parents["route_b"] == "packing"
        # The paper-relevant incoherencies this PR fixed stay fixed:
        assert "utilization" in model.keyed["physical"]
        assert "check" in model.perf_knobs
        assert "sa_engine" in model.perf_knobs
        # The coherence invariant itself: every stage-read field is
        # either in the stage's key chain or a declared perf knob.
        for stage in model.stages:
            covered = model.keyed_chain(stage) | model.perf_knobs
            assert model.reads[stage] <= covered, stage


class TestCli:
    def test_list_rules_groups_ck(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "CK  cache-key coherence" in out
        for rule_id in ("CK001", "CK002", "CK003", "CK004", "CK005"):
            assert rule_id in out

    def test_self_ck_family_is_clean(self, capsys):
        assert main(
            ["check", "--self", "--rules", "CK",
             "--fail-on", "warning"]
        ) == 0
        assert "cache-key coherence" in capsys.readouterr().out

    def test_self_ck_sarif(self, capsys):
        assert main(
            ["-q", "check", "--self", "--rules", "CK", "--sarif"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []

    def test_family_selector_expands(self):
        ids = REGISTRY.validate_selection({"CK"})
        assert {"CK001", "CK002", "CK003", "CK004", "CK005"} <= ids

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            REGISTRY.validate_selection({"CK999"})
