"""Unit tests for the Boolean expression front end."""

import pytest

from repro.logic.expr import ExprError, parse, table_from_expr, tokenize, variables
from repro.logic.truthtable import TruthTable


class TestTokenizer:
    def test_basic(self):
        assert tokenize("a & ~b") == ["a", "&", "~", "b"]

    def test_rejects_garbage(self):
        with pytest.raises(ExprError):
            tokenize("a @ b")

    def test_constants(self):
        assert tokenize("0 | 1") == ["0", "|", "1"]


class TestParser:
    def test_precedence_and_over_xor_over_or(self):
        a, b, c = TruthTable.inputs(3)
        t = table_from_expr("a | b ^ c & a", inputs=("a", "b", "c"))
        assert t == (a | (b ^ (c & a)))

    def test_parentheses(self):
        a, b, c = TruthTable.inputs(3)
        assert table_from_expr("(a | b) & c", inputs=("a", "b", "c")) == ((a | b) & c)

    def test_not_binds_tight(self):
        a, b = TruthTable.inputs(2)
        assert table_from_expr("~a & b", inputs=("a", "b")) == (~a & b)

    def test_double_negation(self):
        a = TruthTable.input_var(1, 0)
        assert table_from_expr("~~a", inputs=("a",)) == a

    def test_missing_paren(self):
        with pytest.raises(ExprError):
            parse("(a & b")

    def test_trailing_tokens(self):
        with pytest.raises(ExprError):
            parse("a b")

    def test_empty(self):
        with pytest.raises(ExprError):
            parse("")


class TestEvaluation:
    def test_variables_first_appearance_order(self):
        assert variables(parse("b & a | b")) == ("b", "a")

    def test_default_input_order(self):
        t = table_from_expr("y & x")
        # y is input 0, x is input 1 by first appearance.
        assert t(1, 1) == 1
        assert t(1, 0) == 0

    def test_constants_evaluate(self):
        assert table_from_expr("a & 0", inputs=("a",)).is_constant()
        assert table_from_expr("a | 1", inputs=("a",)) == TruthTable.constant(1, True)

    def test_unknown_variable(self):
        with pytest.raises(ExprError):
            table_from_expr("a & b", inputs=("a",))

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(ExprError):
            table_from_expr("a", inputs=("a", "a"))

    def test_nand3(self):
        t = table_from_expr("~(a & b & c)")
        assert t.minterm_count() == 7
