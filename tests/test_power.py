"""Unit tests for the power-estimation extension."""

import pytest

from repro.logic.truthtable import TruthTable
from repro.netlist.build import NetlistBuilder
from repro.power.activity import estimate_activity, table_output_probability
from repro.power.power import estimate_power
from repro.timing.wires import WireModel



class TestProbabilityPropagation:
    def test_and_gate(self):
        a, b = TruthTable.inputs(2)
        assert table_output_probability(a & b, [0.5, 0.5]) == pytest.approx(0.25)
        assert table_output_probability(a & b, [1.0, 0.25]) == pytest.approx(0.25)

    def test_xor_gate(self):
        a, b = TruthTable.inputs(2)
        assert table_output_probability(a ^ b, [0.5, 0.5]) == pytest.approx(0.5)
        assert table_output_probability(a ^ b, [0.0, 0.3]) == pytest.approx(0.3)

    def test_constants(self):
        assert table_output_probability(TruthTable.constant(2, True), [0.5, 0.5]) == 1.0
        assert table_output_probability(TruthTable.constant(2, False), [0.5, 0.5]) == 0.0

    def test_inverter_complements(self):
        a = TruthTable.input_var(1, 0)
        assert table_output_probability(~a, [0.8]) == pytest.approx(0.2)


class TestActivity:
    def test_probabilities_in_range(self, ripple_design):
        report = estimate_activity(ripple_design)
        assert all(0.0 <= p <= 1.0 for p in report.probability.values())
        assert all(0.0 <= t <= 0.5 for t in report.toggle_rate.values())

    def test_and_chain_attenuates(self):
        b = NetlistBuilder("chain")
        signals = [b.input(f"i{k}") for k in range(4)]
        acc = signals[0]
        nets = []
        for s in signals[1:]:
            acc = b.AND(acc, s)
            nets.append(acc)
        b.output(acc, "y")
        report = estimate_activity(b.netlist)
        probs = [report.probability[n] for n in nets]
        assert probs == sorted(probs, reverse=True)
        assert probs[-1] == pytest.approx(0.5 ** 4)

    def test_input_override(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        b.output(b.NOT(x), "y")
        report = estimate_activity(b.netlist, input_overrides={"x": 1.0})
        assert report.probability["y"] == pytest.approx(0.0)
        assert report.activity("y") == pytest.approx(0.0)

    def test_sequential_fixed_point_converges(self, ripple_design):
        report = estimate_activity(ripple_design)
        for dff in ripple_design.sequential_instances():
            assert 0.0 <= report.probability[dff.output_net] <= 1.0


class TestPower:
    def test_breakdown_positive(self, ripple_design, gran_timing):
        report = estimate_power(ripple_design, gran_timing)
        assert report.dynamic > 0
        assert report.clock > 0
        assert report.leakage > 0
        assert report.total == pytest.approx(
            report.dynamic + report.clock + report.leakage
        )

    def test_scales_with_frequency(self, ripple_design, gran_timing):
        slow = estimate_power(ripple_design, gran_timing, frequency_mhz=100)
        fast = estimate_power(ripple_design, gran_timing, frequency_mhz=400)
        assert fast.dynamic == pytest.approx(4 * slow.dynamic)
        assert fast.leakage == pytest.approx(slow.leakage)

    def test_wire_load_increases_dynamic(self, ripple_design, gran_timing):
        bare = estimate_power(ripple_design, gran_timing)
        wires = WireModel(lengths={net: 200.0 for net in ripple_design.nets})
        loaded = estimate_power(ripple_design, gran_timing, wires=wires)
        assert loaded.dynamic > bare.dynamic

    def test_leakage_area_override(self, ripple_design, gran_timing):
        small = estimate_power(ripple_design, gran_timing)
        big = estimate_power(
            ripple_design, gran_timing, leakage_area_um2=1e6
        )
        assert big.leakage > small.leakage
