"""Unit tests for bit-parallel simulation."""

import numpy as np
import pytest

from repro.netlist.build import NetlistBuilder
from repro.netlist.core import NetlistError
from repro.netlist.simulate import (
    evaluate_combinational,
    outputs_equal,
    random_vectors,
    simulate,
)

from conftest import make_ripple_design


class TestCombinational:
    def test_xor_evaluation(self, comb_design):
        vectors = random_vectors(comb_design.inputs, n_words=2, seed=1)
        values = evaluate_combinational(comb_design, vectors)
        expected = vectors["x[1]"] ^ vectors["y[1]"] ^ vectors["x[2]"]
        assert np.array_equal(values["f1"], expected)

    def test_mux_evaluation(self, comb_design):
        vectors = random_vectors(comb_design.inputs, n_words=2, seed=2)
        values = evaluate_combinational(comb_design, vectors)
        s, d0, d1 = vectors["x[2]"], vectors["y[2]"], vectors["y[3]"]
        assert np.array_equal(values["f2"], (~s & d0) | (s & d1))

    def test_majority(self, comb_design):
        vectors = random_vectors(comb_design.inputs, n_words=1, seed=3)
        values = evaluate_combinational(comb_design, vectors)
        a, b, c = vectors["x[0]"], vectors["y[2]"], vectors["x[3]"]
        assert np.array_equal(values["f4"], (a & b) | (b & c) | (a & c))

    def test_missing_input_raises(self, comb_design):
        with pytest.raises(NetlistError):
            evaluate_combinational(comb_design, {})


class TestSequential:
    def test_adder_after_two_cycles(self):
        design = make_ripple_design(width=8)
        vectors = random_vectors(design.inputs, n_words=2, seed=4)
        history = simulate(design, vectors, n_cycles=2)
        # Registered outputs reflect cycle-1 inputs at cycle 2; check every
        # bit lane of word 0 against a Python golden model.
        for lane in range(64):
            a_l = sum(((int(vectors[f"a[{i}]"][0]) >> lane) & 1) << i for i in range(8))
            c_l = sum(((int(vectors[f"c[{i}]"][0]) >> lane) & 1) << i for i in range(8))
            cin_l = (int(vectors["cin"][0]) >> lane) & 1
            total_l = a_l + c_l + cin_l
            got_l = sum(
                (((int(history[1][f"sum[{i}]"][0]) >> lane) & 1) << i)
                for i in range(8)
            )
            cout_l = (int(history[1]["cout"][0]) >> lane) & 1
            assert got_l == (total_l & 0xFF)
            assert cout_l == (total_l >> 8) & 1

    def test_state_starts_at_zero(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        q = b.DFF(x)
        b.output(q, "q")
        vectors = random_vectors(["x"], n_words=1, seed=5)
        history = simulate(b.netlist, vectors, n_cycles=2)
        assert int(history[0]["q"][0]) == 0
        assert np.array_equal(history[1]["q"], vectors["x"])

    def test_initial_state_override(self):
        b = NetlistBuilder("t")
        x = b.input("x")
        q = b.DFF(x)
        b.output(q, "q")
        ones = np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
        history = simulate(
            b.netlist, {"x": np.zeros(1, dtype=np.uint64)},
            n_cycles=1, initial_state={q: ones},
        )
        assert np.array_equal(history[0]["q"], ones)

    def test_missing_inputs_rejected(self, ripple_design):
        with pytest.raises(NetlistError):
            simulate(ripple_design, {}, n_cycles=1)


class TestEquivalence:
    def test_identical_netlists_equal(self, ripple_design):
        assert outputs_equal(ripple_design, ripple_design.copy())

    def test_different_logic_detected(self):
        d1 = make_ripple_design(width=3, name="x")
        b = NetlistBuilder("x")
        a = b.input_word("a", 3)
        c = b.input_word("c", 3)
        cin = b.input("cin")
        outs = [b.DFF(b.AND(a[i], c[i])) for i in range(3)]
        b.output_word(outs, "sum")
        b.output(b.DFF(cin), "cout")
        assert not outputs_equal(d1, b.netlist)

    def test_port_mismatch_rejected(self, ripple_design, comb_design):
        with pytest.raises(NetlistError):
            outputs_equal(ripple_design, comb_design)


class TestStreamSimulation:
    def test_per_cycle_stimulus(self):
        import numpy as np
        from repro.netlist.simulate import simulate_stream

        # Simple toggle accumulator: q ^= x each cycle.
        b2 = NetlistBuilder("acc")
        x = b2.input("x")
        placeholder = b2.netlist.add_net()
        qi = b2.netlist.add_instance(b2._dff, {"D": placeholder}).output_net
        d = b2.XOR(x, qi)
        dff_name = b2.netlist.nets[qi].driver[0]
        b2.netlist.rewire_sink(dff_name, "D", d)
        b2.netlist.remove_net(placeholder)
        b2.output(qi, "q")

        ones = np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
        zeros = np.zeros(1, dtype=np.uint64)
        history = simulate_stream(
            b2.netlist,
            [{"x": ones}, {"x": zeros}, {"x": ones}, {"x": ones}],
        )
        got = [int(h["q"][0]) & 1 for h in history]
        assert got == [0, 1, 1, 0]

    def test_missing_input_in_one_cycle(self):
        from repro.netlist.simulate import simulate_stream

        design = make_ripple_design(width=2, name="stream")
        vectors = random_vectors(design.inputs, 1, seed=0)
        with pytest.raises(NetlistError):
            simulate_stream(design, [vectors, {}])

    def test_empty_stimulus(self):
        from repro.netlist.simulate import simulate_stream

        design = make_ripple_design(width=2, name="stream2")
        assert simulate_stream(design, []) == []
