"""Tests for via accounting and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.adder import granular_full_adder
from repro.core.plb import granular_plb, lut_plb
from repro.core.vias import (
    cell_config_sites,
    configured_vias,
    design_via_stats,
    granularity_cost_comparison,
    plb_via_budget,
)


class TestViaAccounting:
    def test_config_sites_scale_with_feasible_set(self):
        from repro.cells.celltypes import make_lut3, make_mux2, make_nd3wi

        assert cell_config_sites(make_lut3()) == 8    # 256 functions
        assert cell_config_sites(make_nd3wi()) == 4   # 16 functions
        assert cell_config_sites(make_mux2()) == 1    # fixed function

    def test_granular_has_more_sites(self):
        lut_budget = plb_via_budget(lut_plb())
        gran_budget = plb_via_budget(granular_plb())
        # The paper: higher granularity = more potential via sites...
        assert gran_budget.total > lut_budget.total
        # ...but the silicon cost stays a small fraction of the PLB.
        assert gran_budget.via_site_area < 0.5 * granular_plb().area

    def test_sram_equivalent_dwarfs_via_cost(self):
        for arch in (lut_plb(), granular_plb()):
            budget = plb_via_budget(arch)
            assert budget.sram_equivalent_area > 3 * arch.area

    def test_design_stats(self):
        netlist = granular_full_adder()
        stats = design_via_stats(netlist, granular_plb(), n_plbs=1)
        assert stats.configured_vias == configured_vias(netlist)
        assert 0.0 < stats.utilization <= 1.0

    def test_comparison_keys(self):
        comparison = granularity_cost_comparison()
        assert set(comparison) == {"lut", "granular"}
        for stats in comparison.values():
            assert stats["sram_area_fraction"] > stats["site_area_fraction"]


class TestCLI:
    def test_analyze(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "196" in out and "XOANDMX" in out

    def test_vias(self, capsys):
        assert main(["vias"]) == 0
        out = capsys.readouterr().out
        assert "SRAM" in out and "granular" in out

    def test_explore(self, capsys):
        assert main(["explore"]) == 0
        out = capsys.readouterr().out
        assert "granular_plb" in out

    def test_flow_tiny(self, capsys):
        code = main([
            "flow", "firewire", "--scale", "0.2", "--effort", "0.03",
            "--arch", "lut",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "flow a" in out and "flow b" in out and "PLBs" in out

    def test_parser_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "cpu"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
