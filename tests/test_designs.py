"""Tests for the four benchmark designs, including golden-model checks."""

import numpy as np
import pytest

from repro.designs import (
    DESIGN_BUILDERS,
    build_alu,
    build_firewire,
    build_fpu,
    build_netswitch,
)
from repro.designs.rtl import (
    array_multiplier,
    barrel_shifter,
    crc_register,
    counter,
    decoder,
    equality,
    less_than,
    moore_fsm,
    priority_encoder,
    ripple_adder,
)
from repro.netlist.build import CONST1, NetlistBuilder
from repro.netlist.simulate import random_vectors, simulate
from repro.netlist.stats import gather
from repro.netlist.validate import check


def word_value(values, name, width, lane=0):
    out = 0
    for i in range(width):
        out |= ((int(values[f"{name}[{i}]"][0]) >> lane) & 1) << i
    return out


def input_value(vectors, name, width, lane=0):
    out = 0
    for i in range(width):
        out |= ((int(vectors[f"{name}[{i}]"][0]) >> lane) & 1) << i
    return out


class TestRTLBlocks:
    def test_ripple_adder(self):
        b = NetlistBuilder("t")
        xs = b.input_word("x", 6)
        ys = b.input_word("y", 6)
        sums, cout = ripple_adder(b, xs, ys)
        b.output_word(sums, "s")
        b.output(cout, "co")
        vectors = random_vectors(b.netlist.inputs, 1, seed=0)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(32):
            x = input_value(vectors, "x", 6, lane)
            y = input_value(vectors, "y", 6, lane)
            got = word_value(values, "s", 6, lane)
            co = (int(values["co"][0]) >> lane) & 1
            assert got == (x + y) & 0x3F
            assert co == (x + y) >> 6

    def test_multiplier(self):
        b = NetlistBuilder("t")
        xs = b.input_word("x", 4)
        ys = b.input_word("y", 4)
        product = array_multiplier(b, xs, ys)
        b.output_word(product, "p")
        vectors = random_vectors(b.netlist.inputs, 1, seed=1)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(16):
            x = input_value(vectors, "x", 4, lane)
            y = input_value(vectors, "y", 4, lane)
            assert word_value(values, "p", 8, lane) == x * y

    def test_barrel_shifter_left(self):
        b = NetlistBuilder("t")
        xs = b.input_word("x", 8)
        amount = b.input_word("k", 3)
        b.output_word(barrel_shifter(b, xs, amount, left=True), "y")
        vectors = random_vectors(b.netlist.inputs, 1, seed=2)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(16):
            x = input_value(vectors, "x", 8, lane)
            k = input_value(vectors, "k", 3, lane)
            assert word_value(values, "y", 8, lane) == (x << k) & 0xFF

    def test_comparators(self):
        b = NetlistBuilder("t")
        xs = b.input_word("x", 5)
        ys = b.input_word("y", 5)
        b.output(equality(b, xs, ys), "eq")
        b.output(less_than(b, xs, ys), "lt")
        vectors = random_vectors(b.netlist.inputs, 1, seed=3)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(32):
            x = input_value(vectors, "x", 5, lane)
            y = input_value(vectors, "y", 5, lane)
            assert ((int(values["eq"][0]) >> lane) & 1) == int(x == y)
            assert ((int(values["lt"][0]) >> lane) & 1) == int(x < y)

    def test_decoder_one_hot(self):
        b = NetlistBuilder("t")
        sel = b.input_word("s", 2)
        outs = decoder(b, sel)
        for i, o in enumerate(outs):
            b.output(o, f"d{i}")
        vectors = random_vectors(b.netlist.inputs, 1, seed=4)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(16):
            s = input_value(vectors, "s", 2, lane)
            bits = [((int(values[f"d{i}"][0]) >> lane) & 1) for i in range(4)]
            assert sum(bits) == 1 and bits[s] == 1

    def test_priority_encoder(self):
        b = NetlistBuilder("t")
        bits = b.input_word("v", 6)
        index, found = priority_encoder(b, bits)
        b.output_word(index, "idx")
        b.output(found, "any")
        vectors = random_vectors(b.netlist.inputs, 1, seed=5)
        values = simulate(b.netlist, vectors)[0]
        for lane in range(32):
            v = input_value(vectors, "v", 6, lane)
            got_any = (int(values["any"][0]) >> lane) & 1
            assert got_any == int(v != 0)
            if v:
                expected = max(i for i in range(6) if (v >> i) & 1)
                assert word_value(values, "idx", 3, lane) == expected

    def test_counter_counts(self):
        b = NetlistBuilder("t")
        b.input("unused")
        qs = counter(b, 4, CONST1, name="cnt")
        b.output_word(qs, "q")
        vectors = {"unused": np.zeros(1, dtype=np.uint64)}
        history = simulate(b.netlist, vectors, n_cycles=6)
        for cycle, values in enumerate(history):
            assert word_value(values, "q", 4) == cycle % 16

    def test_moore_fsm_transitions(self):
        b = NetlistBuilder("t")
        go = b.input("go")
        _bits, onehot = moore_fsm(
            b, 3,
            {0: [(go, 1)], 1: [(None, 2)], 2: [(None, 0)]},
            name="fsm",
        )
        for i, line in enumerate(onehot):
            b.output(line, f"s{i}")
        ones = np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
        history = simulate(b.netlist, {"go": ones}, n_cycles=4)
        seq = [
            [int(h[f"s{i}"][0]) & 1 for i in range(3)].index(1)
            for h in history
        ]
        assert seq == [0, 1, 2, 0]

    def test_crc_register_nonzero_after_data(self):
        b = NetlistBuilder("t")
        data = b.input_word("d", 4)
        crc = crc_register(b, data, 8, (0, 1, 2), CONST1, name="crc")
        b.output_word(crc, "c")
        ones = {f"d[{i}]": np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
                for i in range(4)}
        history = simulate(b.netlist, ones, n_cycles=3)
        assert word_value(history[-1], "c", 8) != 0


class TestDesignsBuild:
    @pytest.mark.parametrize("name", sorted(DESIGN_BUILDERS))
    def test_builds_and_validates(self, name):
        netlist = DESIGN_BUILDERS[name]()
        check(netlist)
        st = gather(netlist)
        assert st.n_instances > 100
        assert st.n_sequential > 10

    def test_firewire_is_sequential_dominated(self):
        st_fw = gather(build_firewire())
        st_fpu = gather(build_fpu())
        assert st_fw.sequential_fraction > 2 * st_fpu.sequential_fraction

    def test_alu_parametric(self):
        small = gather(build_alu(width=4))
        large = gather(build_alu(width=24))
        assert large.n_instances > 2 * small.n_instances


class TestALUGolden:
    def test_all_opcodes(self):
        width = 8
        netlist = build_alu(width=width)
        vectors = random_vectors(netlist.inputs, 1, seed=9)
        history = simulate(netlist, vectors, n_cycles=3)
        values = history[2]  # two register stages
        shamt_mask = (1 << max(1, (width - 1).bit_length())) - 1
        for lane in range(64):
            a = input_value(vectors, "a", width, lane)
            c = input_value(vectors, "c", width, lane)
            op = input_value(vectors, "op", 3, lane)
            shamt = c & shamt_mask
            mask = (1 << width) - 1
            expected = {
                0: (a + c) & mask,
                1: (a - c) & mask,
                2: a & c,
                3: a | c,
                4: a ^ c,
                5: (a << shamt) & mask,
                6: (a >> shamt) & mask,
                7: int(a < c),
            }[op]
            got = word_value(values, "result", width, lane)
            assert got == expected, (lane, op, a, c)

    def test_zero_flag(self):
        netlist = build_alu(width=4)
        zeros = {name: np.zeros(1, dtype=np.uint64) for name in netlist.inputs}
        history = simulate(netlist, zeros, n_cycles=3)
        assert int(history[2]["zero"][0]) & 1 == 1


class TestFPUGolden:
    def test_multiplier_path_mantissa(self):
        exp_bits, mant_bits = 3, 4
        netlist = build_fpu(exp_bits=exp_bits, mant_bits=mant_bits)
        width = 1 + exp_bits + mant_bits
        vectors = random_vectors(netlist.inputs, 1, seed=11)
        ones = np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
        vectors["op_mul"] = ones  # multiply
        history = simulate(netlist, vectors, n_cycles=3)
        values = history[2]
        for lane in range(8):
            x = input_value(vectors, "x", width, lane)
            y = input_value(vectors, "y", width, lane)
            xm = (x & ((1 << mant_bits) - 1)) | (1 << mant_bits)
            ym = (y & ((1 << mant_bits) - 1)) | (1 << mant_bits)
            product = xm * ym
            top = product.bit_length() - 1  # 2*mant_bits or 2*mant_bits+1
            frac = (product >> (top - mant_bits)) & ((1 << mant_bits) - 1)
            got = word_value(values, "result", width, lane) & ((1 << mant_bits) - 1)
            assert got == frac, (lane, hex(x), hex(y))

    def test_sign_of_product(self):
        exp_bits, mant_bits = 3, 4
        netlist = build_fpu(exp_bits=exp_bits, mant_bits=mant_bits)
        width = 1 + exp_bits + mant_bits
        vectors = random_vectors(netlist.inputs, 1, seed=12)
        vectors["op_mul"] = np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
        history = simulate(netlist, vectors, n_cycles=3)
        values = history[2]
        for lane in range(16):
            xs = (int(vectors[f"x[{width - 1}]"][0]) >> lane) & 1
            ys = (int(vectors[f"y[{width - 1}]"][0]) >> lane) & 1
            got = (int(values[f"result[{width - 1}]"][0]) >> lane) & 1
            assert got == xs ^ ys


class TestNetswitchBehavior:
    def test_routes_packet_to_destination(self):
        netlist = build_netswitch(ports=4, width=4)
        zeros = {name: np.zeros(1, dtype=np.uint64) for name in netlist.inputs}
        ones = np.full(1, np.iinfo(np.uint64).max, dtype=np.uint64)
        # Port 1 sends 0b1010 to destination 2, alone on the fabric.
        vectors = dict(zeros)
        vectors["valid1"] = ones
        vectors["din1[1]"] = ones
        vectors["din1[3]"] = ones
        vectors["dest1[1]"] = ones  # dest = 2
        history = simulate(netlist, vectors, n_cycles=4)
        values = history[3]
        assert int(values["ovalid2"][0]) & 1 == 1
        assert word_value(values, "dout2", 4) == 0b1010
        assert int(values["ovalid0"][0]) & 1 == 0
