"""Unit tests for wire models and STA."""

import pytest

from repro.cells.celltypes import DFF_CLK_TO_Q_NS, DFF_SETUP_NS
from repro.cells.characterize import characterize_library
from repro.cells.library import granular_plb_library
from repro.logic.truthtable import TruthTable
from repro.netlist.core import Netlist
from repro.timing.sta import analyze
from repro.timing.wires import (
    WIRE_CAP_PER_UM,
    WireModel,
    hpwl,
    wire_model_from_placement,
    zero_wire_model,
)

from conftest import make_ripple_design


class TestWires:
    def test_hpwl(self):
        assert hpwl([(0, 0), (3, 4)]) == 7
        assert hpwl([(1, 1)]) == 0
        assert hpwl([]) == 0.0

    def test_capacitance_linear_in_length(self):
        model = WireModel(lengths={"n": 100.0})
        assert model.capacitance("n") == pytest.approx(100.0 * WIRE_CAP_PER_UM)
        assert model.capacitance("missing") == 0.0

    def test_delay_grows_with_length(self):
        short = WireModel(lengths={"n": 50.0})
        long = WireModel(lengths={"n": 800.0})
        assert long.delay("n", 2.0) > short.delay("n", 2.0)

    def test_via_penalty(self):
        plain = WireModel(lengths={"n": 100.0})
        vias = WireModel(lengths={"n": 100.0}, via_counts={"n": 6})
        assert vias.delay("n", 2.0) > plain.delay("n", 2.0)

    def test_from_placement(self):
        model = wire_model_from_placement({"n": [(0, 0), (10, 5)]})
        assert model.length("n") == 15.0

    def test_zero_model(self):
        model = zero_wire_model()
        assert model.delay("anything", 5.0) == 0.0


class TestSTA:
    def _inv_chain(self, n):
        from repro.cells.celltypes import make_inv

        netlist = Netlist("chain")
        net = netlist.add_input("in")
        inv = make_inv()
        table = ~TruthTable.input_var(1, 0)
        for _ in range(n):
            net = netlist.add_instance(inv, {"A": net}, config=table).output_net
        netlist.add_output(net)
        return netlist

    def test_chain_arrival_monotone(self, gran_lib):
        timing = characterize_library(granular_plb_library())
        short = analyze(self._inv_chain(2), timing)
        long = analyze(self._inv_chain(8), timing)
        assert long.critical_path_delay > short.critical_path_delay

    def test_slack_definition(self, gran_lib, gran_timing):
        netlist = self._inv_chain(3)
        report = analyze(netlist, gran_timing, period=0.5)
        out = netlist.outputs[0]
        assert report.endpoint_slack[out] == pytest.approx(
            0.5 - report.arrival[out]
        )

    def test_register_endpoints_include_setup(self, gran_timing):
        design = make_ripple_design(width=2)
        report = analyze(design, gran_timing, period=0.5)
        register_keys = [k for k in report.endpoint_slack if k.endswith("/D")]
        assert register_keys
        for key in register_keys:
            dff_name = key.rsplit("/", 1)[0]
            d_net = design.instances[dff_name].pin_nets["D"]
            assert report.endpoint_slack[key] <= 0.5 - DFF_SETUP_NS

    def test_dff_launch_time(self, gran_timing):
        design = make_ripple_design(width=2)
        report = analyze(design, gran_timing)
        for dff in design.sequential_instances():
            assert report.arrival[dff.output_net] == DFF_CLK_TO_Q_NS

    def test_average_slack_top_n(self, gran_timing):
        design = make_ripple_design(width=4)
        report = analyze(design, gran_timing, period=0.5)
        top3 = report.average_slack(top_n=3)
        top_all = report.average_slack(top_n=10_000)
        assert top3 <= top_all  # worst endpoints only

    def test_paths_traceable(self, gran_timing):
        design = make_ripple_design(width=4)
        report = analyze(design, gran_timing, top_n=5)
        assert len(report.paths) == 5
        for path in report.paths:
            assert path.points
            arrivals = [p.arrival for p in path.points]
            assert arrivals == sorted(arrivals)
            assert path.slack == pytest.approx(path.required - path.arrival)

    def test_wire_model_slows_design(self, gran_timing):
        design = make_ripple_design(width=4)
        no_wires = analyze(design, gran_timing)
        lengths = {net: 300.0 for net in design.nets}
        wired = analyze(design, gran_timing, WireModel(lengths=lengths))
        assert wired.critical_path_delay > no_wires.critical_path_delay

    def test_worst_slack(self, gran_timing):
        design = make_ripple_design(width=4)
        report = analyze(design, gran_timing)
        assert report.worst_slack == min(report.endpoint_slack.values())
