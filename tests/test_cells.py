"""Unit tests for component cells, libraries and characterization."""

import pytest

from repro.cells.celltypes import (
    CellType,
    make_buf,
    make_dff,
    make_inv,
    make_lut3,
    make_mux2,
    make_nd2wi,
    make_nd3wi,
    make_xoa,
    mux_table,
    nand_table,
    standard_cells,
)
from repro.cells.characterize import (
    DEFAULT_LOAD_POINTS,
    characterize_cell,
    characterize_library,
)
from repro.cells.library import (
    Library,
    LibraryError,
    generic_library,
    granular_plb_library,
    lut_plb_library,
)
from repro.logic.truthtable import TruthTable, all_functions


class TestCellFunctions:
    def test_nd2wi_feasible_count(self):
        # NAND2 with free input/output polarity: 8 distinct functions.
        assert len(make_nd2wi().feasible) == 8

    def test_nd3wi_feasible_count(self):
        assert len(make_nd3wi().feasible) == 16

    def test_nd2wi_excludes_xor(self):
        a, b = TruthTable.inputs(2)
        cell = make_nd2wi()
        assert not cell.can_implement(a ^ b)
        assert cell.can_implement(~(a & b))
        assert cell.can_implement(a | b)

    def test_lut3_universal(self):
        cell = make_lut3()
        assert all(cell.can_implement(t) for t in all_functions(3))

    def test_mux_cells_single_function(self):
        for cell in (make_mux2(), make_xoa()):
            assert cell.feasible == frozenset({mux_table()})

    def test_mux_table_semantics(self):
        t = mux_table()
        # pin order (S, A, B): S=0 -> A, S=1 -> B
        assert t(0, 1, 0) == 1
        assert t(1, 1, 0) == 0
        assert t(1, 0, 1) == 1

    def test_nand_table(self):
        assert nand_table(2).mask == 0b0111

    def test_dff_is_sequential(self):
        dff = make_dff()
        assert dff.is_sequential
        assert dff.output_pin == "Q"
        assert dff.feasible is None

    def test_arity_mismatch_rejected(self):
        cell = make_nd2wi()
        assert not cell.can_implement(nand_table(3))

    def test_cell_validation(self):
        with pytest.raises(ValueError):
            CellType(
                name="BAD", pins=("A",), feasible=None, area=1.0,
                input_caps={"X": 1.0},
            )

    def test_feasible_arity_validated(self):
        with pytest.raises(ValueError):
            CellType(
                name="BAD", pins=("A",),
                feasible=frozenset({nand_table(2)}),
                area=1.0, input_caps={"A": 1.0},
            )


class TestDelayModel:
    def test_delay_increases_with_load(self):
        for cell in standard_cells().values():
            assert cell.delay(8.0) > cell.delay(1.0)

    def test_lut3_slower_than_nd3_at_equal_load(self):
        # The paper's core premise: the LUT is substantially inferior for
        # simple functions.
        assert make_lut3().delay(4.0) > make_nd3wi().delay(4.0)

    def test_xoa_faster_than_mux2_under_load(self):
        # The up-sized XOA has more drive.
        assert make_xoa().delay(8.0) < make_mux2().delay(8.0)

    def test_inverter_fo4(self):
        inv = make_inv()
        fo4 = inv.delay(4.0)
        assert 0.02 < fo4 < 0.12  # plausible 0.18um FO4 in ns


class TestLibraries:
    def test_lut_library_contents(self):
        lib = lut_plb_library()
        assert "LUT3" in lib and "ND3WI" in lib and "DFF" in lib
        assert "MUX2" not in lib

    def test_granular_library_contents(self):
        lib = granular_plb_library()
        assert "MUX2" in lib and "XOA" in lib and "ND3WI" in lib
        assert "LUT3" not in lib

    def test_duplicate_cells_rejected(self):
        with pytest.raises(LibraryError):
            Library("dup", [make_inv(), make_inv()])

    def test_unknown_cell_lookup(self):
        with pytest.raises(LibraryError):
            lut_plb_library().cell("NOPE")

    def test_best_match_prefers_small_cell(self, lut_lib):
        match = lut_lib.best_match(nand_table(3))
        assert match.cell.name == "ND3WI"

    def test_match_uses_permutation(self, gran_lib):
        # f = B ? C : A is a mux with permuted pins.
        a, b, c = TruthTable.inputs(3)
        match = gran_lib.best_match(TruthTable.mux(b, a, c))
        assert match is not None
        assert match.cell.name in ("MUX2", "XOA")

    def test_no_match_for_unsupported(self, gran_lib):
        # 3-input XOR is not a single granular cell.
        a, b, c = TruthTable.inputs(3)
        assert gran_lib.best_match(a ^ b ^ c) is None

    def test_generic_library_has_everything(self):
        lib = generic_library()
        assert len(lib) == len(standard_cells())

    def test_combinational_sequential_split(self, lut_lib):
        seq = lut_lib.sequential()
        assert [c.name for c in seq] == ["DFF"]
        assert all(not c.is_sequential for c in lut_lib.combinational())


class TestCharacterization:
    def test_table_monotone(self):
        cc = characterize_cell(make_nd3wi())
        delays = [cc.delay(load) for load in DEFAULT_LOAD_POINTS]
        assert delays == sorted(delays)

    def test_interpolation_between_points(self):
        cc = characterize_cell(make_inv())
        mid = cc.delay(3.0)
        assert cc.delay(2.0) < mid < cc.delay(4.0)

    def test_extrapolation_beyond_last_point(self):
        cc = characterize_cell(make_buf())
        assert cc.delay(64.0) > cc.delay(32.0)

    def test_library_characterization_covers_all(self, lut_lib):
        tl = characterize_library(lut_lib)
        for cell in lut_lib:
            assert cell.name in tl
            assert tl.delay(cell.name, 2.0) > 0

    def test_pin_caps_exposed(self, gran_lib):
        tl = characterize_library(gran_lib)
        assert tl.pin_cap("MUX2", "S") > tl.pin_cap("MUX2", "A")

    def test_slew_penalty_superlinear(self):
        cc = characterize_cell(make_inv())
        # Slope must grow at high load due to the slew term.
        low_slope = cc.delay(2.0) - cc.delay(1.0)
        high_slope = (cc.delay(32.0) - cc.delay(16.0)) / 16.0
        assert high_slope > low_slope / 1.0 * 0.9  # sanity: not decreasing
