"""Tests for the paper's Section 2.1 function analysis — every published
count is asserted here."""

import pytest

from repro.core.functions3 import (
    SELECT_INDEX,
    cofactors_about_select,
    from_cofactors,
    is_and_type,
    is_xor_type,
    literal_sources_3in,
    mux2_implementable_2in,
    mux2_implementable_3in,
    nd2wi_implementable_2in,
    nd3wi_implementable_3in,
)
from repro.core.s3 import (
    S3Category,
    category_counts,
    classify_infeasible,
    find_modified_s3_config,
    infeasible_by_category,
    modified_s3_implementable,
    s3_feasible,
    s3_feasible_set,
    s3_infeasible_set,
)
from repro.logic.truthtable import TruthTable, all_functions


class TestComponentSets:
    def test_nd2wi_count_is_14(self):
        # Paper: ND2WI implements 14 of the 16 2-input functions.
        assert len(nd2wi_implementable_2in()) == 14

    def test_nd2wi_missing_exactly_xor_xnor(self):
        a, b = TruthTable.inputs(2)
        missing = set(all_functions(2)) - set(nd2wi_implementable_2in())
        assert missing == {a ^ b, ~(a ^ b)}

    def test_mux2_covers_all_16(self):
        # Paper: "a 2:1 MUX can implement all 2-input functions".
        assert len(mux2_implementable_2in()) == 16

    def test_nd3wi_3in_core_variants(self):
        # The 16 NAND3 polarity variants are all present.
        a, b, c = TruthTable.inputs(3)
        table = nd3wi_implementable_3in()
        for flips in range(8):
            x = ~a if flips & 1 else a
            y = ~b if flips & 2 else b
            z = ~c if flips & 4 else c
            assert ~(x & y & z) in table
            assert (x & y & z) in table

    def test_nd3wi_excludes_majority_and_parity(self):
        a, b, c = TruthTable.inputs(3)
        table = nd3wi_implementable_3in()
        assert ((a & b) | (b & c) | (a & c)) not in table
        assert (a ^ b ^ c) not in table

    def test_mux2_3in_count(self):
        # The MX configuration covers 62 of the 256 3-input functions.
        assert len(mux2_implementable_3in()) == 62

    def test_literal_sources(self):
        sources = literal_sources_3in()
        assert len(sources) == 8  # 6 literals + 2 constants


class TestCofactors:
    def test_roundtrip_all_256(self):
        for table in all_functions(3):
            g, h = cofactors_about_select(table)
            assert from_cofactors(g, h) == table

    def test_select_index(self):
        s = TruthTable.input_var(3, SELECT_INDEX)
        g, h = cofactors_about_select(s)
        assert g == TruthTable.constant(2, False)
        assert h == TruthTable.constant(2, True)

    def test_arity_checks(self):
        with pytest.raises(ValueError):
            cofactors_about_select(TruthTable(2, 6))
        with pytest.raises(ValueError):
            from_cofactors(TruthTable(1, 2), TruthTable(2, 6))

    def test_is_xor_type(self):
        a, b = TruthTable.inputs(2)
        assert is_xor_type(a ^ b)
        assert is_xor_type(~(a ^ b))
        assert not is_xor_type(a & b)


class TestS3Feasibility:
    def test_feasible_count_is_196(self):
        # The paper's headline count.
        assert len(s3_feasible_set()) == 196

    def test_infeasible_count_is_60(self):
        assert len(s3_infeasible_set()) == 60

    def test_partition(self):
        assert s3_feasible_set() | s3_infeasible_set() == frozenset(all_functions(3))
        assert not (s3_feasible_set() & s3_infeasible_set())

    def test_infeasible_iff_xor_cofactor(self):
        for table in all_functions(3):
            g, h = cofactors_about_select(table)
            has_xor = is_xor_type(g) or is_xor_type(h)
            assert s3_feasible(table) == (not has_xor)

    def test_parity_functions_infeasible(self):
        a, b, c = TruthTable.inputs(3)
        assert not s3_feasible(a ^ b ^ c)
        assert not s3_feasible(~(a ^ b ^ c))

    def test_simple_gates_feasible(self):
        a, b, c = TruthTable.inputs(3)
        for f in (a & b & c, ~(a & b & c), a | b | c, ~((a & b) | c)):
            assert s3_feasible(f)

    def test_arity_guard(self):
        with pytest.raises(ValueError):
            s3_feasible(TruthTable(2, 6))


class TestFigure2Categories:
    def test_category_counts(self):
        counts = category_counts()
        assert counts[S3Category.ND2WI_COFACTOR_WITH_XOR] == 28
        assert counts[S3Category.XOR_COFACTOR_WITH_ND2WI] == 28
        assert counts[S3Category.BOTH_XOR] == 1
        assert counts[S3Category.BOTH_XNOR] == 1
        assert counts[S3Category.COMPLEMENTARY_XOR] == 2
        assert sum(counts.values()) == 60

    def test_both_xor_is_2input_xor(self):
        # Paper: categories 3 and 4 simplify to 2-input XOR / XNOR.
        a, b, _c = TruthTable.inputs(3)
        members = infeasible_by_category()[S3Category.BOTH_XOR]
        assert members == frozenset({a ^ b})

    def test_complementary_is_3input_parity(self):
        # Paper: category 5 corresponds to the 3-input XOR / XNOR.
        a, b, c = TruthTable.inputs(3)
        members = infeasible_by_category()[S3Category.COMPLEMENTARY_XOR]
        assert members == frozenset({a ^ b ^ c, ~(a ^ b ^ c)})

    def test_classify_rejects_feasible(self):
        a, b, c = TruthTable.inputs(3)
        with pytest.raises(ValueError):
            classify_infeasible(a & b & c)

    def test_categories_partition_infeasible(self):
        union = frozenset()
        for members in infeasible_by_category().values():
            assert not (union & members)
            union |= members
        assert union == s3_infeasible_set()


class TestModifiedS3:
    def test_covers_all_256(self):
        # Paper Figure 3: the modified S3 implements all 3-input functions.
        assert len(modified_s3_implementable()) == 256

    def test_find_config_for_every_function(self):
        for mask in range(0, 256, 7):
            table = TruthTable(3, mask)
            config = find_modified_s3_config(table)
            assert config.output() == table

    def test_find_config_parity(self):
        a, b, c = TruthTable.inputs(3)
        config = find_modified_s3_config(a ^ b ^ c)
        assert config.output() == (a ^ b ^ c)

    def test_find_config_arity_guard(self):
        with pytest.raises(ValueError):
            find_modified_s3_config(TruthTable(2, 6))


class TestAndType:
    def test_and_type_positive(self):
        a, b, c = TruthTable.inputs(3)
        assert is_and_type(a & b & c)
        assert is_and_type(~(a & ~b))
        assert is_and_type(a | b)  # OR is NAND of complements

    def test_and_type_negative(self):
        a, b, c = TruthTable.inputs(3)
        assert not is_and_type(a ^ b)
        assert not is_and_type((a & b) | (b & c) | (a & c))
        assert not is_and_type(TruthTable.constant(2, True))
