"""Unit tests for cut enumeration and FlowMap."""

import pytest

from repro.logic.truthtable import TruthTable
from repro.synth.aig import AIG
from repro.synth.cuts import cut_function, enumerate_cuts, fanout_counts
from repro.synth.flowmap import FlowMap, flowmap_labels


def adder_bit_aig():
    g = AIG("fa")
    a = g.add_input("a")
    b = g.add_input("b")
    cin = g.add_input("cin")
    p = g.xor2(a, b)
    g.add_output("sum", g.xor2(p, cin))
    g.add_output("cout", g.mux(p, g.and2(a, b), cin))
    return g


class TestCuts:
    def test_trivial_cuts_present(self):
        g = adder_bit_aig()
        cuts = enumerate_cuts(g, k=3)
        for node in g.and_nodes():
            assert (node,) in cuts[node]

    def test_cut_sizes_bounded(self):
        g = adder_bit_aig()
        for node, node_cuts in enumerate_cuts(g, k=3).items():
            assert all(len(c) <= 3 for c in node_cuts)

    def test_domination_pruning(self):
        g = adder_bit_aig()
        cuts = enumerate_cuts(g, k=3)
        for node, node_cuts in cuts.items():
            for i, a in enumerate(node_cuts):
                for j, b in enumerate(node_cuts):
                    if i != j:
                        assert not set(a) < set(b)

    def test_cut_function_xor(self):
        g = AIG()
        a = g.add_input("a")
        b = g.add_input("b")
        y = g.xor2(a, b)
        node = y >> 1
        cuts = enumerate_cuts(g, k=2)
        best = next(c for c in cuts[node] if set(c) == {1, 2})
        table = cut_function(g, node, best)
        x0, x1 = TruthTable.inputs(2)
        # Output polarity of the node itself (not the literal):
        assert table in ((x0 ^ x1), ~(x0 ^ x1))

    def test_tree_mode_blocks_fanout_crossing(self):
        g = adder_bit_aig()
        fanouts = fanout_counts(g)
        cuts = enumerate_cuts(g, k=3, tree_mode=True)
        for node, node_cuts in cuts.items():
            for cut in node_cuts:
                for leaf in cut:
                    # Leaves may be multi-fanout; interior nodes may not.
                    pass  # structural check below via cut_function validity
        # All cut functions must still be computable.
        for node, node_cuts in cuts.items():
            for cut in node_cuts:
                if node not in cut and 0 not in cut:
                    cut_function(g, node, cut)

    def test_fanout_counts(self):
        g = adder_bit_aig()
        counts = fanout_counts(g)
        # p = xor(a,b) feeds both outputs' logic: its top node has >1 fanout.
        assert any(v > 1 for v in counts.values())


class TestFlowMap:
    def test_sources_label_zero(self):
        fanins = {"x": (), "y": ("x",)}
        result = flowmap_labels(fanins, k=3)
        assert result.labels["x"] == 0
        assert result.labels["y"] == 1

    def test_chain_collapses_to_one_level(self):
        # A chain of 3 single-input nodes fits one K=3 cluster.
        fanins = {"a": (), "n1": ("a",), "n2": ("n1",), "n3": ("n2",)}
        result = flowmap_labels(fanins, k=3)
        assert result.labels["n3"] == 1
        assert result.cuts["n3"] == frozenset({"a"})

    def test_wide_tree_needs_two_levels(self):
        # 9 sources into a 3-ary tree: depth-2 mapping for K=3.
        fanins = {f"s{i}": () for i in range(9)}
        for j in range(3):
            fanins[f"m{j}"] = tuple(f"s{3 * j + i}" for i in range(3))
        fanins["root"] = ("m0", "m1", "m2")
        result = flowmap_labels(fanins, k=3)
        assert result.labels["root"] == 2
        assert result.cuts["root"] == frozenset({"m0", "m1", "m2"})

    def test_reconvergence_found(self):
        # Diamond: root over two nodes sharing both sources; K=2 cut at
        # the sources exists even though fanins are 2 distinct nodes.
        fanins = {
            "a": (), "b": (),
            "l": ("a", "b"), "r": ("a", "b"),
            "root": ("l", "r"),
        }
        result = flowmap_labels(fanins, k=2)
        assert result.labels["root"] == 1
        assert result.cuts["root"] == frozenset({"a", "b"})

    def test_cuts_are_valid_separators(self):
        g = adder_bit_aig()
        fanins = {}
        for node in g.and_nodes():
            f0, f1 = g.fanins(node)
            fanins[node] = tuple({f0 >> 1, f1 >> 1})
        for node in range(1, g.n_inputs + 1):
            fanins.setdefault(node, ())
        fanins.setdefault(0, ())
        result = FlowMap(fanins, k=3).compute()
        for node, cut in result.cuts.items():
            if not fanins.get(node):
                continue
            # Every path from sources must hit the cut: walk up from node,
            # stopping at cut members.
            stack = list(fanins[node])
            while stack:
                current = stack.pop()
                if current in cut:
                    continue
                assert fanins.get(current), (
                    f"path escaped cut {cut} at source {current} for {node}"
                )
                stack.extend(fanins[current])

    def test_labels_monotone_along_edges(self):
        g = adder_bit_aig()
        fanins = {}
        for node in g.and_nodes():
            f0, f1 = g.fanins(node)
            fanins[node] = tuple({f0 >> 1, f1 >> 1})
        result = FlowMap(fanins, k=3).compute()
        for node, fs in fanins.items():
            for f in fs:
                assert result.labels[node] >= result.labels.get(f, 0)

    def test_cycle_detection(self):
        with pytest.raises(ValueError):
            FlowMap({"a": ("b",), "b": ("a",)}).compute()
