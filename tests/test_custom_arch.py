"""Tests for custom PLB architectures through the full flow.

The paper's future work, implemented: arbitrary component mixes become
runnable architectures with generated libraries, compatibility tables,
realization structures and calibrated interconnect overhead.
"""

import pytest

from repro.core.plb import custom_plb, granular_plb, interconnect_overhead, lut_plb
from repro.flow.flow import FlowOptions, architecture_of, register_architecture, run_design
from repro.netlist.simulate import outputs_equal
from repro.synth.realize import compaction_table, table_for_cells

from conftest import make_ripple_design

FAST = FlowOptions(place_effort=0.05, place_iterations=1, pack_iterations=1)


class TestConstruction:
    def test_paper_architectures_match_model(self):
        # The fitted overhead model reproduces both calibrated points.
        assert interconnect_overhead(3) == pytest.approx(
            lut_plb().comb_overhead, rel=0.05
        )
        assert interconnect_overhead(4) == pytest.approx(
            granular_plb().comb_overhead, rel=0.05
        )

    def test_custom_slots_and_compat(self):
        arch = custom_plb("t1", {"MUX2": 2, "ND3WI": 2, "DFF": 1})
        assert arch.slots["MUX2"] == 2
        assert arch.hosting_slots("ND2WI")  # can live in nd3/mux slots
        assert arch.hosting_slots("INV") == ("POLBUF",)
        assert "MUX2" in arch.library and "LUT3" not in arch.library

    def test_lut_only_custom(self):
        arch = custom_plb("t2", {"LUT3": 2, "DFF": 1})
        assert arch.hosting_slots("LUT3") == ("LUT3",)
        assert arch.hosting_slots("ND2WI") == ("LUT3",)

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            custom_plb("bad", {"SRAM": 4})

    def test_overhead_grows_with_granularity(self):
        small = custom_plb("s", {"MUX2": 1, "DFF": 1})
        big = custom_plb("b", {"MUX2": 4, "ND3WI": 2, "DFF": 1})
        assert big.comb_overhead > small.comb_overhead

    def test_area_positive(self):
        arch = custom_plb("t3", {"MUX2": 3, "XOA": 1, "ND3WI": 1, "DFF": 2})
        assert arch.area > arch.combinational_area > 0


class TestRealizationTables:
    def test_mux_only_table_has_no_nd3(self):
        table = table_for_cells(
            frozenset({"INV", "BUF", "ND2WI", "MUX2"}), composite=True
        )
        structures = {r.structure for r in table.values()}
        assert "ND3" not in structures
        assert "MX" in structures

    def test_custom_library_resolves_table(self):
        arch = custom_plb("t4", {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 1})
        table = compaction_table(arch.library)
        structures = {r.structure for r in table.values()}
        assert {"MX", "NDMX", "XOAMX", "XOANDMX"} <= structures

    def test_inner_mux_falls_back_without_xoa(self):
        table = table_for_cells(
            frozenset({"INV", "BUF", "ND2WI", "ND3WI", "MUX2"}), composite=True
        )
        xoamx = [r for r in table.values() if r.structure == "XOAMX"]
        assert xoamx
        for realization in xoamx:
            assert all(s.cell_name != "XOA" for s in realization.steps)


class TestFlowIntegration:
    def test_registration_and_lookup(self):
        arch = custom_plb("reg_test", {"MUX2": 2, "ND3WI": 1, "DFF": 1})
        register_architecture(arch)
        assert architecture_of("reg_test") is arch
        assert architecture_of(arch) is arch

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            architecture_of("never_registered")

    @pytest.mark.parametrize("slots", [
        {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 2},   # seq-leaning granular
        {"MUX2": 3, "ND3WI": 1, "DFF": 1},             # no XOA
        {"LUT3": 1, "MUX2": 1, "ND3WI": 1, "DFF": 1},  # hybrid LUT+mux
    ])
    def test_full_flow_on_custom_arch(self, slots):
        name = "custom_" + "_".join(f"{k}{v}" for k, v in sorted(slots.items()))
        arch = custom_plb(name, slots)
        src = make_ripple_design(width=4, name="customflow")
        run = run_design(src.copy(), arch, FAST)
        assert outputs_equal(src, run.physical.netlist, n_cycles=3)
        assert run.flow_b.die_area > 0
        assert run.flow_b.plbs_used > 0

    def test_seq_heavy_beats_granular_on_sequential_design(self):
        """The paper's proposed Firewire fix, measured end to end."""
        from repro.flow.experiments import build_design

        seq_heavy = custom_plb(
            "seq_heavy_fw", {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 3}
        )
        src = build_design("firewire", scale=0.3)
        run_seq = run_design(src.copy(), seq_heavy, FAST)
        run_gran = run_design(src.copy(), "granular", FAST)
        assert run_seq.flow_b.die_area < run_gran.flow_b.die_area
