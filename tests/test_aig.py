"""Unit tests for the AIG and its optimization passes."""

import pytest

from repro.logic.truthtable import TruthTable
from repro.synth.aig import (
    AIG,
    CONST0_LIT,
    CONST1_LIT,
    lit,
    lit_inverted,
    lit_node,
    lit_not,
)
from repro.synth.optimize import balance, cleanup, optimize, rewrite_cuts


def xor3_aig():
    g = AIG("xor3")
    a = g.add_input("a")
    b = g.add_input("b")
    c = g.add_input("c")
    g.add_output("y", g.xor2(g.xor2(a, b), c))
    return g


class TestLiterals:
    def test_encoding(self):
        assert lit(5) == 10
        assert lit(5, True) == 11
        assert lit_node(11) == 5
        assert lit_inverted(11)
        assert lit_not(10) == 11


class TestConstruction:
    def test_constant_folding(self):
        g = AIG()
        a = g.add_input("a")
        assert g.and2(a, CONST0_LIT) == CONST0_LIT
        assert g.and2(a, CONST1_LIT) == a
        assert g.and2(a, a) == a
        assert g.and2(a, lit_not(a)) == CONST0_LIT

    def test_structural_hashing(self):
        g = AIG()
        a = g.add_input("a")
        b = g.add_input("b")
        x = g.and2(a, b)
        y = g.and2(b, a)
        assert x == y
        assert g.n_ands() == 1

    def test_or_demorgan(self):
        g = AIG()
        a = g.add_input("a")
        b = g.add_input("b")
        y = g.or2(a, b)
        assert lit_inverted(y)

    def test_inputs_before_ands_enforced(self):
        g = AIG()
        a = g.add_input("a")
        b = g.add_input("b")
        g.and2(a, b)
        with pytest.raises(AssertionError):
            g.add_input("c")

    def test_and_many_balanced(self):
        g = AIG()
        lits = [g.add_input(f"i{i}") for i in range(8)]
        g.add_output("y", g.and_many(lits))
        assert g.depth() == 3  # perfectly balanced over 8 inputs


class TestFunctionality:
    def test_xor3_table(self):
        g = xor3_aig()
        a, b, c = TruthTable.inputs(3)
        assert g.output_table()["y"] == (a ^ b ^ c)

    def test_mux(self):
        g = AIG()
        s = g.add_input("s")
        d0 = g.add_input("d0")
        d1 = g.add_input("d1")
        g.add_output("y", g.mux(s, d0, d1))
        table = g.output_table()["y"]
        assert table(0, 1, 0) == 1
        assert table(1, 0, 1) == 1

    def test_from_table_all_3input(self):
        for mask in range(0, 256, 11):
            g = AIG()
            lits = [g.add_input(f"i{i}") for i in range(3)]
            g.add_output("y", g.from_table(TruthTable(3, mask), lits))
            assert g.output_table()["y"].mask == mask

    def test_from_table_constant(self):
        g = AIG()
        lits = [g.add_input("a")]
        assert g.from_table(TruthTable(1, 0b11), lits) == CONST1_LIT

    def test_simulate_words(self):
        g = xor3_aig()
        words = g.simulate([0b1100, 0b1010, 0b0110])
        name, literal = g.outputs[0]
        value = words[lit_node(literal)]
        if lit_inverted(literal):
            value = ~value
        assert value & 0xF == 0b1100 ^ 0b1010 ^ 0b0110

    def test_levels_and_depth(self):
        g = xor3_aig()
        assert g.depth() >= 2

    def test_reachable_from_outputs(self):
        g = AIG()
        a = g.add_input("a")
        b = g.add_input("b")
        used = g.and2(a, b)
        g.and2(a, lit_not(b))  # dead node
        g.add_output("y", used)
        assert len(g.reachable_from_outputs()) == 1


class TestOptimize:
    def test_cleanup_removes_dead(self):
        g = AIG()
        a = g.add_input("a")
        b = g.add_input("b")
        g.add_output("y", g.and2(a, b))
        g.and2(a, lit_not(b))
        fresh = cleanup(g)
        assert fresh.n_ands() == 1
        assert fresh.output_table() == g.output_table()

    def test_balance_reduces_chain_depth(self):
        g = AIG()
        lits = [g.add_input(f"i{i}") for i in range(8)]
        acc = lits[0]
        for lit in lits[1:]:
            acc = g.and2(acc, lit)
        g.add_output("y", acc)
        assert g.depth() == 7
        balanced = balance(g)
        assert balanced.depth() == 3
        assert balanced.output_table() == g.output_table()

    def test_balance_preserves_function_with_sharing(self):
        g = AIG()
        a = g.add_input("a")
        b = g.add_input("b")
        c = g.add_input("c")
        shared = g.and2(a, b)
        g.add_output("y1", g.and2(shared, c))
        g.add_output("y2", g.or2(shared, c))
        balanced = balance(g)
        assert balanced.output_table() == g.output_table()

    def test_rewrite_preserves_function(self):
        g = xor3_aig()
        rewritten = rewrite_cuts(g)
        assert rewritten.output_table() == g.output_table()

    def test_optimize_chain(self):
        g = xor3_aig()
        for effort in (1, 2):
            opt = optimize(g, effort=effort)
            assert opt.output_table() == g.output_table()
            assert opt.n_ands() <= g.n_ands() + 2
