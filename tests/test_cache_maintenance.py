"""Tests for stage-cache maintenance: stats, LRU gc, and the cache CLI.

The eviction contract: ``get`` refreshes an entry's mtime, so mtime order
is LRU order; ``collect_garbage`` removes by age first, then oldest-first
until under the size budget, and never lets a single bad entry abort the
pass (corruption tolerance mirrors the read path).
"""

import json
import os

import pytest

from repro.flow.cache import (
    StageCache,
    collect_garbage,
    iter_entries,
    parse_age,
    parse_size,
    usage_summary,
)


def _put(cache, stage, key, payload, mtime=None):
    cache.put(stage, key, payload)
    path = cache._path(stage, key)
    if mtime is not None:
        os.utime(path, (mtime, mtime))
    return path


class TestParsers:
    def test_parse_size_units(self):
        assert parse_size("1024") == 1024
        assert parse_size("1K") == 1024
        assert parse_size("2M") == 2 * 1024**2
        assert parse_size("1.5G") == int(1.5 * 1024**3)
        assert parse_size("1T") == 1024**4
        assert parse_size(" 3k ") == 3 * 1024

    def test_parse_size_rejects_junk(self):
        with pytest.raises(ValueError, match="unparsable size"):
            parse_size("lots")
        with pytest.raises(ValueError, match="negative size"):
            parse_size("-5M")

    def test_parse_age_units(self):
        assert parse_age("45") == 45.0
        assert parse_age("45s") == 45.0
        assert parse_age("30m") == 1800.0
        assert parse_age("12h") == 43200.0
        assert parse_age("7d") == 7 * 86400.0
        assert parse_age("2w") == 2 * 604800.0

    def test_parse_age_rejects_junk(self):
        with pytest.raises(ValueError, match="unparsable age"):
            parse_age("soon")
        with pytest.raises(ValueError, match="negative age"):
            parse_age("-1d")


class TestIterAndSummary:
    def test_entries_sorted_oldest_first(self, tmp_path):
        cache = StageCache(root=tmp_path)
        _put(cache, "synthesis", "newer", b"x" * 10, mtime=2000.0)
        _put(cache, "physical", "oldest", b"x" * 20, mtime=1000.0)
        _put(cache, "route_a", "middle", b"x" * 30, mtime=1500.0)
        entries = iter_entries(tmp_path)
        assert [e.stage for e in entries] == ["physical", "route_a",
                                             "synthesis"]
        assert [e.mtime for e in entries] == [1000.0, 1500.0, 2000.0]

    def test_missing_root_is_empty(self, tmp_path):
        assert iter_entries(tmp_path / "nope") == []

    def test_strays_ignored(self, tmp_path):
        cache = StageCache(root=tmp_path)
        _put(cache, "synthesis", "real", b"payload")
        (tmp_path / "synthesis" / "notes.txt").write_text("not an entry")
        (tmp_path / "toplevel.pkl").write_bytes(b"wrong level")
        entries = iter_entries(tmp_path)
        assert [e.stage for e in entries] == ["synthesis"]

    def test_usage_summary_buckets_by_stage(self, tmp_path):
        cache = StageCache(root=tmp_path)
        _put(cache, "synthesis", "a", b"x" * 100)
        _put(cache, "synthesis", "b", b"x" * 100)
        _put(cache, "packing", "c", b"x" * 100)
        summary = usage_summary(tmp_path)
        assert summary["entries"] == 3
        assert summary["stages"]["synthesis"]["entries"] == 2
        assert summary["stages"]["packing"]["entries"] == 1
        assert summary["bytes"] == sum(
            b["bytes"] for b in summary["stages"].values()
        )
        assert summary["oldest_mtime"] <= summary["newest_mtime"]


class TestEvictionOrdering:
    def test_size_gc_evicts_least_recently_used_first(self, tmp_path):
        cache = StageCache(root=tmp_path)
        old = _put(cache, "synthesis", "old", b"x" * 50, mtime=1000.0)
        mid = _put(cache, "synthesis", "mid", b"x" * 50, mtime=2000.0)
        new = _put(cache, "synthesis", "new", b"x" * 50, mtime=3000.0)
        entry_size = old.stat().st_size
        report = collect_garbage(tmp_path, max_bytes=2 * entry_size)
        assert report.removed == 1
        assert report.removed_paths == [str(old)]
        assert not old.exists() and mid.exists() and new.exists()
        assert report.kept == 2
        assert report.freed_bytes == entry_size

    def test_hit_refreshes_recency(self, tmp_path):
        """A get() promotes the entry: the *other* one is evicted."""
        cache = StageCache(root=tmp_path)
        a = _put(cache, "synthesis", "a", b"x" * 50, mtime=1000.0)
        b = _put(cache, "synthesis", "b", b"x" * 50, mtime=2000.0)
        assert cache.get("synthesis", "a") is not None  # touch the LRU one
        assert a.stat().st_mtime > b.stat().st_mtime
        report = collect_garbage(tmp_path, max_bytes=a.stat().st_size)
        assert report.removed == 1
        assert a.exists() and not b.exists()

    def test_age_gc_uses_cutoff(self, tmp_path):
        cache = StageCache(root=tmp_path)
        stale = _put(cache, "synthesis", "stale", b"x", mtime=1000.0)
        fresh = _put(cache, "synthesis", "fresh", b"x", mtime=9000.0)
        report = collect_garbage(
            tmp_path, max_age_seconds=5000.0, now=10000.0
        )
        assert report.removed == 1
        assert not stale.exists() and fresh.exists()

    def test_age_and_size_compose(self, tmp_path):
        """Age pass first, then LRU size pass over the survivors."""
        cache = StageCache(root=tmp_path)
        ancient = _put(cache, "synthesis", "ancient", b"x" * 50, mtime=100.0)
        older = _put(cache, "synthesis", "older", b"x" * 50, mtime=6000.0)
        newer = _put(cache, "synthesis", "newer", b"x" * 50, mtime=9000.0)
        report = collect_garbage(
            tmp_path,
            max_bytes=older.stat().st_size,
            max_age_seconds=5000.0,
            now=10000.0,
        )
        # ancient by age; older by size; newer survives.
        assert report.removed == 2
        assert not ancient.exists() and not older.exists()
        assert newer.exists()

    def test_dry_run_removes_nothing(self, tmp_path):
        cache = StageCache(root=tmp_path)
        path = _put(cache, "synthesis", "a", b"x" * 50)
        report = collect_garbage(tmp_path, max_bytes=0, dry_run=True)
        assert report.dry_run
        assert report.removed == 1  # reported...
        assert path.exists()        # ...but untouched
        assert "would remove" in report.format()

    def test_noop_when_under_budget(self, tmp_path):
        cache = StageCache(root=tmp_path)
        _put(cache, "synthesis", "a", b"x")
        report = collect_garbage(tmp_path, max_bytes=10**9,
                                 max_age_seconds=10**9)
        assert report.removed == 0
        assert report.kept == 1


class TestCorruptionTolerantGc:
    def test_unremovable_entry_counted_not_fatal(self, tmp_path):
        """A directory masquerading as an entry can't be unlink()ed: gc
        counts the error, keeps going, and still evicts the rest."""
        cache = StageCache(root=tmp_path)
        victim = _put(cache, "synthesis", "victim", b"x" * 50, mtime=1000.0)
        bogus = tmp_path / "synthesis" / "bogus.pkl"
        bogus.mkdir()
        os.utime(bogus, (500.0, 500.0))  # oldest: first eviction candidate
        report = collect_garbage(tmp_path, max_bytes=0)
        assert report.errors == 1
        assert report.removed >= 1
        assert not victim.exists()
        assert bogus.exists()
        assert "1 errors" in report.format()

    def test_racing_deletion_is_not_an_error(self, tmp_path, monkeypatch):
        """An entry deleted between scan and unlink counts as removed."""
        from pathlib import Path

        cache = StageCache(root=tmp_path)
        a = _put(cache, "synthesis", "a", b"x" * 50, mtime=1000.0)

        real_unlink = Path.unlink

        def racing_unlink(self, *args, **kwargs):
            if self == a:
                real_unlink(self)  # someone else got there first
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        report = collect_garbage(tmp_path, max_bytes=0)
        assert report.errors == 0
        assert report.removed == 1
        assert not a.exists()

    def test_corrupt_payloads_still_evictable(self, tmp_path):
        """gc never reads payloads, so corrupt entries evict like any
        other file."""
        cache = StageCache(root=tmp_path)
        path = _put(cache, "synthesis", "corrupt", b"x" * 50, mtime=1000.0)
        path.write_bytes(b"garbage, not digest-framed pickle")
        report = collect_garbage(tmp_path, max_bytes=0)
        assert report.removed == 1
        assert report.errors == 0
        assert not path.exists()


class TestCacheCli:
    def _populate(self, root):
        cache = StageCache(root=root)
        _put(cache, "synthesis", "a", b"x" * 100, mtime=1000.0)
        _put(cache, "physical", "b", b"x" * 200, mtime=2000.0)
        return cache

    def test_stats_json(self, tmp_path, capsys):
        from repro.cli import main

        self._populate(tmp_path)
        assert main(["cache", "--dir", str(tmp_path), "stats",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2
        assert set(payload["stages"]) == {"synthesis", "physical"}

    def test_stats_respects_cache_dir_env(self, tmp_path, monkeypatch,
                                          capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self._populate(tmp_path)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "2 entries" in out

    def test_gc_json_and_eviction(self, tmp_path, capsys):
        from repro.cli import main

        self._populate(tmp_path)
        assert main(["cache", "--dir", str(tmp_path), "gc",
                     "--max-size", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["removed"] == 2
        assert payload["errors"] == 0
        assert not payload["dry_run"]
        assert usage_summary(tmp_path)["entries"] == 0

    def test_gc_dry_run_keeps_entries(self, tmp_path, capsys):
        from repro.cli import main

        self._populate(tmp_path)
        assert main(["cache", "--dir", str(tmp_path), "gc",
                     "--max-age", "0s", "--dry-run"]) == 0
        assert "would remove 2" in capsys.readouterr().out
        assert usage_summary(tmp_path)["entries"] == 2

    def test_gc_without_budget_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "--dir", str(tmp_path), "gc"]) == 2
        assert "--max-size" in capsys.readouterr().err

    def test_gc_bad_size_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "--dir", str(tmp_path), "gc",
                     "--max-size", "plenty"]) == 2
        assert "unparsable size" in capsys.readouterr().err


class TestConcurrentAccess:
    """gc racing live ``get``/``put`` traffic must never corrupt or
    crash — the serve executor collects garbage while jobs run."""

    def test_gc_racing_get_and_put(self, tmp_path):
        import threading

        cache = StageCache(root=tmp_path, enabled=True)
        payload = {"vector": list(range(256))}
        stop = threading.Event()
        failures = []

        def churn(worker: int) -> None:
            try:
                n = 0
                while not stop.is_set():
                    key = cache.key("synthesis", "churn", worker, n % 17)
                    cache.put("synthesis", key, payload)
                    got = cache.get("synthesis", key)
                    # Eviction between put and get is legal; a value,
                    # when present, must be intact.
                    if got is not None and got != payload:
                        failures.append((worker, n, got))
                    n += 1
            except Exception as exc:  # noqa: BLE001 - record, don't hang
                failures.append((worker, "exception", repr(exc)))

        threads = [
            threading.Thread(target=churn, args=(w,)) for w in range(3)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(25):
                report = collect_garbage(root=tmp_path, max_bytes=4096)
                assert report.errors == 0
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert failures == []
        # The cache stays fully usable after the churn.
        key = cache.key("synthesis", "after")
        cache.put("synthesis", key, payload)
        assert cache.get("synthesis", key) == payload

    def test_gc_subprocess_racing_writer(self, tmp_path):
        """A real ``repro cache gc`` process racing in-process writes."""
        import subprocess
        import sys
        import threading
        from pathlib import Path

        cache = StageCache(root=tmp_path, enabled=True)
        stop = threading.Event()
        failures = []

        def churn() -> None:
            try:
                n = 0
                while not stop.is_set():
                    key = cache.key("physical", "sub", n % 13)
                    cache.put("physical", key, n)
                    value = cache.get("physical", key)
                    if value is not None and value != n:
                        failures.append((n, value))
                    n += 1
            except Exception as exc:  # noqa: BLE001
                failures.append(("exception", repr(exc)))

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            env = dict(os.environ)
            src = str(Path(__file__).resolve().parents[1] / "src")
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src, env.get("PYTHONPATH")) if p
            )
            for _ in range(3):
                proc = subprocess.run(
                    [sys.executable, "-m", "repro", "cache",
                     "--dir", str(tmp_path), "gc", "--max-size", "2K",
                     "--json"],
                    capture_output=True, text=True, env=env, timeout=120,
                )
                assert proc.returncode == 0, proc.stderr
                report = json.loads(proc.stdout)
                assert report["errors"] == 0
        finally:
            stop.set()
            writer.join(timeout=30)
        assert failures == []
