"""Unit tests for repro.logic.truthtable."""

import pytest

from repro.logic.truthtable import TruthTable, all_functions, all_permutations


class TestConstruction:
    def test_constant_false(self):
        t = TruthTable.constant(3, False)
        assert t.mask == 0
        assert t.is_constant()

    def test_constant_true(self):
        t = TruthTable.constant(3, True)
        assert t.mask == 0xFF
        assert t.is_constant()

    def test_input_var_lsb_convention(self):
        a = TruthTable.input_var(2, 0)
        assert a.rows() == (0, 1, 0, 1)
        b = TruthTable.input_var(2, 1)
        assert b.rows() == (0, 0, 1, 1)

    def test_input_var_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.input_var(2, 2)

    def test_from_function(self):
        t = TruthTable.from_function(2, lambda a, b: a and not b)
        assert t.mask == 0b0010

    def test_from_rows(self):
        t = TruthTable.from_rows([0, 1, 1, 0])
        assert t == TruthTable(2, 0b0110)

    def test_from_rows_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            TruthTable.from_rows([0, 1, 1])

    def test_from_rows_rejects_bad_value(self):
        with pytest.raises(ValueError):
            TruthTable.from_rows([0, 2])

    def test_mask_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable(1, 5)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(-1, 0)

    def test_immutability(self):
        t = TruthTable(2, 6)
        with pytest.raises(AttributeError):
            t.mask = 9


class TestEvaluation:
    def test_call_xor(self):
        t = TruthTable(2, 0b0110)
        assert t(0, 0) == 0
        assert t(1, 0) == 1
        assert t(0, 1) == 1
        assert t(1, 1) == 0

    def test_call_arity_check(self):
        with pytest.raises(ValueError):
            TruthTable(2, 6)(1)

    def test_call_value_check(self):
        with pytest.raises(ValueError):
            TruthTable(1, 2)(3)

    def test_rows_roundtrip(self):
        t = TruthTable(3, 0b10110100)
        assert TruthTable.from_rows(t.rows()) == t


class TestAlgebra:
    def test_and_or_xor_invert(self):
        a, b = TruthTable.inputs(2)
        assert (a & b).mask == 0b1000
        assert (a | b).mask == 0b1110
        assert (a ^ b).mask == 0b0110
        assert (~a).mask == 0b0101

    def test_de_morgan(self):
        a, b = TruthTable.inputs(2)
        assert ~(a & b) == (~a | ~b)
        assert ~(a | b) == (~a & ~b)

    def test_mux(self):
        s, d0, d1 = TruthTable.inputs(3)
        m = TruthTable.mux(s, d0, d1)
        assert m(0, 1, 0) == 1  # s=0 selects d0
        assert m(1, 0, 1) == 1  # s=1 selects d1
        assert m(1, 1, 0) == 0

    def test_incompatible_arity(self):
        with pytest.raises(ValueError):
            TruthTable(1, 1) & TruthTable(2, 1)


class TestShannon:
    def test_cofactor_identity(self):
        a, b, c = TruthTable.inputs(3)
        f = (a & b) | c
        assert f.cofactor(2, 1) == TruthTable.constant(2, True)
        x, y = TruthTable.inputs(2)
        assert f.cofactor(2, 0) == (x & y)

    def test_cofactor_rebuild(self):
        for mask in (0x6A, 0x96, 0x17, 0xE8):
            f = TruthTable(3, mask)
            g = f.cofactor(2, 0)
            h = f.cofactor(2, 1)
            s = TruthTable.input_var(3, 2)
            rebuilt = TruthTable.mux(s, g.extend(3), h.extend(3))
            assert rebuilt == f

    def test_cofactor_bad_args(self):
        t = TruthTable(2, 6)
        with pytest.raises(ValueError):
            t.cofactor(5, 0)
        with pytest.raises(ValueError):
            t.cofactor(0, 2)

    def test_depends_on(self):
        a, b, _c = TruthTable.inputs(3)
        f = a ^ b
        assert f.depends_on(0)
        assert f.depends_on(1)
        assert not f.depends_on(2)

    def test_support(self):
        a, _b, c = TruthTable.inputs(3)
        assert (a & c).support() == (0, 2)
        assert TruthTable.constant(3, True).support() == ()


class TestStructure:
    def test_flip_input(self):
        a, b = TruthTable.inputs(2)
        assert (a & b).flip_input(0) == (~a & b)

    def test_permute(self):
        a, b, c = TruthTable.inputs(3)
        f = a & ~b & c
        g = f.permute((2, 1, 0))  # swap inputs 0 and 2
        assert g == (c & ~b & a).permute((0, 1, 2))
        assert g(1, 0, 1) == 1

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            TruthTable(2, 6).permute((0, 0))

    def test_extend(self):
        a = TruthTable.input_var(1, 0)
        bigger = a.extend(3)
        assert bigger.n_inputs == 3
        assert bigger.support() == (0,)
        assert bigger.cofactor(2, 0).cofactor(1, 0) == a

    def test_extend_cannot_shrink(self):
        with pytest.raises(ValueError):
            TruthTable(2, 6).extend(1)

    def test_shrink_to_support(self):
        a, _b, c = TruthTable.inputs(3)
        f = a ^ c
        shrunk, kept = f.shrink_to_support()
        assert kept == (0, 2)
        x, y = TruthTable.inputs(2)
        assert shrunk == (x ^ y)

    def test_compose(self):
        f = TruthTable(2, 0b0110)  # xor
        a, b, c = TruthTable.inputs(3)
        composed = f.compose([a & b, c])
        assert composed == ((a & b) ^ c)

    def test_compose_arity_mismatch(self):
        with pytest.raises(ValueError):
            TruthTable(2, 6).compose([TruthTable.input_var(2, 0)])

    def test_compose_mixed_outer(self):
        f = TruthTable(2, 0b0110)
        with pytest.raises(ValueError):
            f.compose([TruthTable.input_var(2, 0), TruthTable.input_var(3, 0)])


class TestClassification:
    def test_is_parity(self):
        a, b, c = TruthTable.inputs(3)
        assert (a ^ b ^ c).is_parity()
        assert (~(a ^ b ^ c)).is_parity()
        assert not (a & b & c).is_parity()

    def test_parity_needs_two_inputs(self):
        assert not TruthTable.input_var(1, 0).is_parity()

    def test_minterm_count(self):
        assert TruthTable(3, 0b10110100).minterm_count() == 4


class TestEnumeration:
    def test_all_functions_count(self):
        assert sum(1 for _ in all_functions(2)) == 16
        assert sum(1 for _ in all_functions(3)) == 256

    def test_all_functions_limit(self):
        with pytest.raises(ValueError):
            list(all_functions(5))

    def test_all_permutations(self):
        assert len(all_permutations(3)) == 6
