"""Unit tests for NPN canonicalization."""

from repro.logic.npn import (
    npn_canonical,
    npn_canonical_with_transform,
    npn_class,
    npn_classes,
    npn_equivalent,
    npn_transforms,
)
from repro.logic.truthtable import TruthTable, all_functions


class TestCanonical:
    def test_class_counts_classic(self):
        # Classic NPN class counts: n=1 -> 2, n=2 -> 4, n=3 -> 14.
        assert len(npn_classes(1)) == 2
        assert len(npn_classes(2)) == 4
        assert len(npn_classes(3)) == 14

    def test_canonical_idempotent(self):
        for table in all_functions(2):
            canon = npn_canonical(table)
            assert npn_canonical(canon) == canon

    def test_canonical_transform_consistent(self):
        for mask in (0x00, 0x6A, 0x96, 0xE8, 0x17):
            table = TruthTable(3, mask)
            canon, transform = npn_canonical_with_transform(table)
            assert transform.apply(table) == canon

    def test_and_or_same_class(self):
        a, b = TruthTable.inputs(2)
        assert npn_equivalent(a & b, a | b)
        assert npn_equivalent(a & b, ~(a & b))

    def test_xor_not_and_class(self):
        a, b = TruthTable.inputs(2)
        assert not npn_equivalent(a ^ b, a & b)

    def test_different_arity_never_equivalent(self):
        assert not npn_equivalent(TruthTable(1, 2), TruthTable(2, 10))


class TestClassEnumeration:
    def test_class_membership(self):
        a, b = TruthTable.inputs(2)
        members = npn_class(a & b)
        assert (a | b) in members
        assert (~a & ~b) in members
        assert (a ^ b) not in members

    def test_classes_partition_all_functions(self):
        covered = set()
        for representative in npn_classes(2):
            covered |= {t.mask for t in npn_class(representative)}
        assert covered == set(range(16))

    def test_transform_count(self):
        assert sum(1 for _ in npn_transforms(2)) == 2 * 4 * 2  # perms * flips * out
        assert sum(1 for _ in npn_transforms(3)) == 6 * 8 * 2

    def test_parity_class_size(self):
        a, b, c = TruthTable.inputs(3)
        assert npn_class(a ^ b ^ c) == frozenset({a ^ b ^ c, ~(a ^ b ^ c)})
