"""Tests for the runtime lock sanitizer (repro.check.lockwatch, CC005).

The end-to-end contract: install the shim, run threaded code with a
seeded lock-order inversion, write the journal, and get a CC005 error
back through `repro check --lockwatch` — plus the wrapper mechanics
(Condition wait semantics, hold-time accounting, reentrancy) that make
the shim safe to leave on for the whole serve/scheduler suite.
"""

import json
import threading

import pytest

from repro.check.lockwatch import (
    enabled,
    findings_from_journal,
    install,
    installed,
    scoped_watch,
    uninstall,
    watch,
    write_report,
)
from repro.cli import main


@pytest.fixture
def lockwatch():
    """Instrument this test with a private recorder.

    Seeded defects (deliberate inversions) must not leak into a
    session-wide lockwatch report when the whole suite runs under
    REPRO_LOCKWATCH=1, so each test gets its own scoped LockWatch.
    """
    with scoped_watch() as scoped:
        yield scoped


def seed_inversion():
    """Take two locks in opposite orders on two (serialized) threads."""
    a = threading.Lock()
    b = threading.Lock()

    def first():
        with a:
            with b:
                pass

    def second():
        with b:
            with a:
                pass

    for target in (first, second):
        thread = threading.Thread(target=target)
        thread.start()
        thread.join()


class TestShimMechanics:
    def test_install_is_idempotent_and_reversible(self):
        if installed():
            pytest.skip("lockwatch installed session-wide")
        assert install() is True
        try:
            assert installed()
            assert install() is False
        finally:
            assert uninstall() is True
            assert uninstall() is False
        assert not installed()
        watch().reset()

    def test_locks_keep_working(self, lockwatch):
        lock = threading.Lock()
        assert lock.acquire()
        assert lock.locked()
        assert lock.acquire(blocking=False) is False
        lock.release()
        with lock:
            pass

    def test_rlock_reentrancy(self, lockwatch):
        lock = threading.RLock()
        with lock:
            with lock:
                pass

    def test_condition_wait_notify_roundtrip(self, lockwatch):
        cond = threading.Condition()
        ready = []

        def producer():
            with cond:
                ready.append(1)
                cond.notify_all()

        with cond:
            thread = threading.Thread(target=producer)
            thread.start()
            assert cond.wait_for(lambda: ready, timeout=5.0)
        thread.join()
        # The held stack balanced across the wait: we can go again.
        with cond:
            pass

    def test_event_through_patched_factories(self, lockwatch):
        event = threading.Event()
        event.set()
        assert event.wait(timeout=1.0)

    def test_acquisitions_and_hold_times_recorded(self, lockwatch):
        lock = threading.Lock()
        with lock:
            pass
        snap = lockwatch.snapshot()
        stats = [
            s for s in snap["sites"].values()
            if s["acquisitions"] > 0 and s["kind"] == "lock"
            and "test_lockwatch" in s["site"]
        ]
        assert stats, snap["sites"]
        assert all(s["hold_total_s"] >= 0.0 for s in stats)


class TestInversionDetection:
    def test_seeded_inversion_is_reported(self, lockwatch):
        seed_inversion()
        snap = lockwatch.snapshot()
        assert len(snap["inversions"]) == 1
        inversion = snap["inversions"][0]
        assert inversion["first_order"] == list(
            reversed(inversion["second_order"])
        )

    def test_inversion_reported_once_per_pair(self, lockwatch):
        seed_inversion()
        seed_inversion()  # distinct lock objects: a second pair
        assert len(lockwatch.snapshot()["inversions"]) == 2

    def test_consistent_order_reports_nothing(self, lockwatch):
        a = threading.Lock()
        b = threading.Lock()
        for _ in range(3):
            with a:
                with b:
                    pass
        snap = lockwatch.snapshot()
        assert snap["inversions"] == []
        assert any(e["count"] == 3 for e in snap["edges"])


class TestReportAndFindings:
    def test_journal_roundtrip_with_inversion(self, lockwatch, tmp_path):
        seed_inversion()
        path = write_report(tmp_path / "lockwatch.jsonl")
        events = [
            json.loads(line)
            for line in path.read_text().splitlines() if line
        ]
        assert events[0]["type"] == "meta"
        summary = [
            e for e in events if e.get("name") == "lockwatch.summary"
        ][0]
        assert summary["inversions"] == 1
        findings = findings_from_journal(path)
        assert [f.rule_id for f in findings] == ["CC005"]
        assert findings[0].severity.label == "error"

    def test_clean_run_yields_no_findings(self, lockwatch, tmp_path):
        lock = threading.Lock()
        with lock:
            pass
        path = write_report(tmp_path / "clean.jsonl")
        assert findings_from_journal(path) == []

    def test_out_env_picks_the_path(self, lockwatch, tmp_path, monkeypatch):
        out = tmp_path / "via-env" / "lw.jsonl"
        monkeypatch.setenv("REPRO_LOCKWATCH_OUT", str(out))
        assert write_report() == out
        assert out.exists()

    def test_non_lockwatch_journal_is_rejected(self, tmp_path):
        bogus = tmp_path / "other.jsonl"
        bogus.write_text('{"type": "meta", "label": "run"}\n')
        with pytest.raises(ValueError, match="not a lockwatch journal"):
            findings_from_journal(bogus)

    def test_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKWATCH", raising=False)
        assert not enabled()
        monkeypatch.setenv("REPRO_LOCKWATCH", "1")
        assert enabled()


class TestLockwatchCli:
    def test_cli_fails_on_observed_inversion(
        self, lockwatch, tmp_path, capsys
    ):
        seed_inversion()
        path = write_report(tmp_path / "lockwatch.jsonl")
        assert main(["-q", "check", "--lockwatch", str(path)]) == 1
        out = capsys.readouterr().out
        assert "CC005" in out and "inversion" in out

    def test_cli_passes_on_clean_journal(self, lockwatch, tmp_path, capsys):
        path = write_report(tmp_path / "clean.jsonl")
        assert main(["-q", "check", "--lockwatch", str(path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_rejects_non_journal(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("{}\n")
        assert main(["-q", "check", "--lockwatch", str(bogus)]) == 2

    def test_cli_sarif_export(self, lockwatch, tmp_path, capsys):
        seed_inversion()
        path = write_report(tmp_path / "lockwatch.jsonl")
        assert main([
            "-q", "check", "--lockwatch", str(path), "--sarif",
        ]) == 1
        doc = json.loads(capsys.readouterr().out)
        results = doc["runs"][0]["results"]
        assert any(r["ruleId"] == "CC005" for r in results)
