#!/usr/bin/env python
"""Granularity design-space exploration (the paper's future-work study).

Evaluates a family of candidate PLBs — from coarse (LUT-based) to very
granular (mux-rich) and sequential-heavy variants — with the granularity
explorer, printing coverage, full-adder packability, density and the
area-delay figure of merit.  Mirrors the paper's conclusion that the best
mix of WI-NAND gates, XOR-capable muxes, and flip-flops depends on the
application domain.

Run:  python examples/granularity_exploration.py
"""

from repro.core.explorer import (
    CandidatePLB,
    GranularityExplorer,
    paper_candidates,
)


def sweep_candidates():
    """The paper's architectures plus a granularity/DFF-ratio sweep."""
    sweep = list(paper_candidates())
    for n_mux in (1, 2, 4):
        sweep.append(
            CandidatePLB(
                f"mux{n_mux}_nd1",
                {"MUX2": max(0, n_mux - 1), "XOA": min(1, n_mux),
                 "ND3WI": 1, "DFF": 1},
            )
        )
    for n_dff in (2, 3):
        sweep.append(
            CandidatePLB(
                f"granular_dff{n_dff}",
                {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": n_dff},
            )
        )
    return sweep


def main() -> None:
    explorer = GranularityExplorer()
    candidates = sweep_candidates()

    print("Candidate PLB evaluation (datapath weighting):\n")
    header = (
        f"{'candidate':16s} {'area':>7s} {'cover':>6s} {'no-LUT':>7s} "
        f"{'FA/PLB':>7s} {'fns/PLB':>8s} {'delay':>8s} {'score':>8s}"
    )
    print(header)
    print("-" * len(header))
    for candidate, metrics, score in explorer.rank(candidates):
        density = explorer.functions_per_plb(candidate)
        print(
            f"{metrics.name:16s} {metrics.total_area:7.1f} "
            f"{metrics.total_coverage:6d} {metrics.lut_free_coverage:7d} "
            f"{str(metrics.full_adder_in_one_plb):>7s} {density:8.0f} "
            f"{metrics.mean_function_delay:8.4f} {score:8.2f}"
        )

    print("\nControl-dominated weighting (Firewire-like domain):")
    for candidate, metrics, score in explorer.rank(candidates, datapath_weight=0.0)[:3]:
        print(f"  {metrics.name:16s} score={score:.2f} "
              f"(DFFs per PLB: {metrics.dff_count})")

    print("\nPaper conclusion: combine WI-NAND gates, XOR-capable muxes and")
    print("flip-flops; the optimal ratio varies with the application domain.")


if __name__ == "__main__":
    main()
