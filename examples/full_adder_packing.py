#!/usr/bin/env python
"""The paper's Section 2.2 argument, executed: a full adder in one PLB.

* Shows why the plain S3 gate fails on the adder (XOR cofactors) and how
  the modified S3 / granular configurations recover it;
* builds the paper's 3-mux + ND3WI full adder, simulates it, and packs it
  into a single granular PLB with the real quadrisection packer;
* contrasts with the LUT-based PLB, which needs two PLBs.

Run:  python examples/full_adder_packing.py
"""

from collections import Counter

from repro.core.adder import (
    AdderFunctions,
    carry_nd3wi_feasible,
    granular_configs_for_adder,
    granular_full_adder,
    lut_full_adder,
)
from repro.core.plb import granular_plb, lut_plb
from repro.core.s3 import classify_infeasible, s3_feasible
from repro.pack.quadrisection import pack
from repro.pack.resources import min_plbs
from repro.place.grid import grid_for_netlist
from repro.place.sa import AnnealingPlacer


def main() -> None:
    funcs = AdderFunctions.build()
    print("Full-adder functions over (A, B, Cin):")
    print(f"  sum   = A ^ B ^ Cin     mask {funcs.sum_table.mask:#04x}")
    print(f"  carry = MAJ(A, B, Cin)  mask {funcs.carry_table.mask:#04x}\n")

    print("S3 feasibility (paper Section 2.1):")
    print(f"  sum   S3-feasible? {s3_feasible(funcs.sum_table)} "
          f"-> category {classify_infeasible(funcs.sum_table).name}")
    print(f"  carry S3-feasible? {s3_feasible(funcs.carry_table)}")
    print(f"  carry fits a single ND3WI? {carry_nd3wi_feasible()}\n")

    sum_cfg, carry_cfg = granular_configs_for_adder()
    print(f"Granular PLB configurations: sum -> {sum_cfg}, carry -> {carry_cfg}\n")

    for label, netlist, arch in (
        ("granular", granular_full_adder(), granular_plb()),
        ("LUT-based", lut_full_adder(), lut_plb()),
    ):
        cells = Counter(i.cell.name for i in netlist.instances.values())
        needed = min_plbs(arch, netlist)
        grid = grid_for_netlist(netlist)
        placement = AnnealingPlacer(netlist, grid, seed=0, effort=0.05).place()
        cols = needed
        result = pack(netlist, placement, arch, cols, 1)
        plbs = {a.plb for a in result.assignments.values()}
        print(f"{label:10s} PLB: cells {dict(cells)} -> {len(plbs)} PLB(s) "
              f"({arch.area * len(plbs):.0f} um^2)")

    print("\nPaper: the granular PLB packs a full adder in ONE block; the")
    print("LUT-based PLB needs the LUTs of TWO blocks (sum is a 3-input")
    print("XOR and carry is the majority — neither fits an ND3WI).")


if __name__ == "__main__":
    main()
