#!/usr/bin/env python
"""Application-domain-specific PLB design (the paper's future work, run).

Builds custom PLB architectures with ``custom_plb`` and pushes them
through the complete flow on two opposite workloads:

* the ALU (datapath): the paper's granular PLB should win;
* Firewire (sequential-dominated): the paper predicts "this overhead can
  be avoided by using a PLB with a greater ratio of Flip Flops to
  combinational logic elements" — the seq-heavy custom PLB tests exactly
  that.

Run:  python examples/domain_specific_plb.py
"""

from repro import FlowOptions, custom_plb, run_design
from repro.flow.experiments import build_design


def main() -> None:
    options = FlowOptions(place_effort=0.1, seed=5)
    candidates = {
        "granular (paper)": "granular",
        "lut (paper)": "lut",
        "seq_heavy (DFF:3)": custom_plb(
            "seq_heavy", {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 3}
        ),
        "mux_rich (4 muxes)": custom_plb(
            "mux_rich", {"MUX2": 3, "XOA": 1, "ND3WI": 1, "DFF": 1}
        ),
    }

    for design in ("alu", "firewire"):
        print(f"\n=== {design} ===")
        print(f"{'architecture':20s} {'die b':>9s} {'PLBs':>6s} {'slack b':>9s}")
        rows = {}
        for label, arch in candidates.items():
            run = run_design(build_design(design, scale=0.4), arch, options)
            rows[label] = run.flow_b
            print(f"{label:20s} {run.flow_b.die_area:9.0f} "
                  f"{run.flow_b.plbs_used:6d} {run.flow_b.average_slack:9.3f}")
        best = min(rows, key=lambda r: rows[r].die_area)
        print(f"--> smallest die: {best}")

    print("\nPaper conclusion, confirmed end to end: the optimal PLB")
    print("composition varies with the application domain — granular for")
    print("datapath, flip-flop-enriched for sequential-dominated control.")


if __name__ == "__main__":
    main()
