#!/usr/bin/env python
"""Render the packed PLB array as SVG (the flow's "GDSII" artifact).

Runs the ALU through flow b on both architectures and writes one SVG per
architecture into ``results/``: tiles shaded by occupancy, slot marks
colored by component class, routed nets overlaid as upper-metal segments.
Open the files in any browser.

Run:  python examples/render_layout.py
"""

import pathlib

from repro.flow.experiments import build_design
from repro.flow.flow import FlowOptions, architecture_of, run_design
from repro.pack.quadrisection import pack
from repro.pack.resources import size_array
from repro.route.extract import route_and_extract
from repro.route.grid import RoutingGrid
from repro.viz import render_packing_svg

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def main() -> None:
    RESULTS.mkdir(exist_ok=True)
    options = FlowOptions(place_effort=0.15, seed=2)
    for arch_name in ("lut", "granular"):
        run = run_design(build_design("alu", scale=0.5), arch_name, options)
        arch = architecture_of(arch_name)
        netlist = run.physical.netlist
        cols, rows = size_array(arch, netlist)
        packing = pack(netlist, run.physical.placement, arch, cols, rows)
        grid = RoutingGrid(
            cols=cols, rows=rows, bin_pitch=arch.tile_side, tracks=28
        )
        routing, _ = route_and_extract(grid, packing.net_pin_points(netlist))
        svg = render_packing_svg(
            packing, routing,
            title=f"ALU on the {arch_name} PLB array "
                  f"({packing.die_area:.0f} um^2)",
        )
        path = RESULTS / f"layout_alu_{arch_name}.svg"
        path.write_text(svg)
        print(f"{arch_name:9s}: {packing.plbs_used}/{packing.n_plbs} PLBs, "
              f"{routing.total_wirelength():.0f} um of routing -> {path}")


if __name__ == "__main__":
    main()
