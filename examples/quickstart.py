#!/usr/bin/env python
"""Quickstart: run one design through the full VPGA flow.

Builds a 8-bit ALU, pushes it through both flows (paper Figure 6) on both
PLB architectures, and prints the die-area and timing comparison — a
single-design slice of the paper's Tables 1 and 2.

Run:  python examples/quickstart.py
"""

from repro import FlowOptions, build_alu, run_design


def main() -> None:
    options = FlowOptions(place_effort=0.2, seed=1)
    print("Running the 8-bit ALU through both architectures...\n")

    runs = {}
    for arch in ("lut", "granular"):
        runs[arch] = run_design(build_alu(width=8), arch, options)

    header = (
        f"{'arch':10s} {'cells':>6s} {'compaction':>11s} "
        f"{'die a (um^2)':>13s} {'die b (um^2)':>13s} "
        f"{'slack a (ns)':>13s} {'slack b (ns)':>13s} {'PLBs':>6s}"
    )
    print(header)
    print("-" * len(header))
    for arch, run in runs.items():
        print(
            f"{arch:10s} {run.synthesis.stats.n_instances:6d} "
            f"{run.synthesis.compaction.reduction:11.1%} "
            f"{run.flow_a.die_area:13.0f} {run.flow_b.die_area:13.0f} "
            f"{run.flow_a.average_slack:13.3f} {run.flow_b.average_slack:13.3f} "
            f"{run.flow_b.plbs_used:6d}"
        )

    lut_b = runs["lut"].flow_b
    gran_b = runs["granular"].flow_b
    print(
        f"\nGranular PLB vs LUT-based PLB (flow b): "
        f"die area {1 - gran_b.die_area / lut_b.die_area:+.1%}, "
        f"slack deficit {1 - (-gran_b.average_slack) / (-lut_b.average_slack):+.1%}"
    )
    print("(Paper: ~32% smaller on datapath designs, ~18% better slack.)")


if __name__ == "__main__":
    main()
