#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Runs the full 4-design x 2-architecture x 2-flow matrix and prints:

* Table 1 (die area) with the paper's derived claims,
* Table 2 (average slack over the top-10 critical paths),
* the compaction summary (Section 3.1's ~15% claim),
* the Figure 2 / Figure 3 / Section 2 function-analysis data.

Design sizes follow ``REPRO_SCALE`` (default 1.0); expect a few minutes
of pure-Python CAD at full scale.

Run:  REPRO_SCALE=0.6 python examples/reproduce_tables.py
"""

import time

from repro.flow.experiments import (
    run_compaction_summary,
    run_figure2,
    run_matrix,
    run_table1,
    run_table2,
)


def main() -> None:
    start = time.time()
    print("Running the evaluation matrix (4 designs x 2 architectures)...")
    matrix = run_matrix()
    print(f"...done in {time.time() - start:.0f}s\n")

    print(run_table1(matrix).format())
    print()
    print(run_table2(matrix).format())
    print()
    print(run_compaction_summary(matrix).format())
    print()
    print(run_figure2().format())


if __name__ == "__main__":
    main()
