#!/usr/bin/env python
"""Submit the full Table-1/Table-2 matrix to a repro job server.

Starts an in-process server (or targets a running one with ``--server``)
and submits every (design, arch) cell of the paper's evaluation matrix
as its own concurrent job, streaming per-stage progress as jobs run.
When all cells finish, the per-cell metrics are reassembled into the
paper's Table 1 (die area) and Table 2 (timing) — demonstrating that a
served sweep and ``repro tables`` compute the same numbers.

Identical cells submitted twice coalesce server-side onto a single
execution, so rerunning the sweep against a warm server costs nothing.

Run:  python examples/serve_sweep.py [--scale 0.3] [--server URL]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.flow.experiments import ARCHES, DESIGNS  # noqa: E402
from repro.serve import ReproServer, ServeClient, ServeConfig  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--server", default=None,
                        help="base URL of a running server (default: "
                             "start one in-process)")
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--effort", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=4,
                        help="executor threads for the in-process server")
    args = parser.parse_args()

    server = None
    if args.server:
        base_url = args.server
    else:
        server = ReproServer(ServeConfig(port=0, workers=args.workers,
                                         queue_limit=32))
        server.start()
        base_url = f"http://127.0.0.1:{server.port}"
        print(f"started in-process server on {base_url}")

    client = ServeClient(base_url, timeout=120.0)
    options = {"seed": args.seed, "place_effort": args.effort}

    tickets = {}
    for design in DESIGNS:
        for arch in ARCHES:
            ticket = client.submit(
                design=design, arch=arch, scale=args.scale,
                options=options,
                priority="high" if design == "alu" else "normal",
            )
            tickets[(design, arch)] = ticket
            note = (f" (coalesced into {ticket['coalesced_into']})"
                    if ticket.get("coalesced_into") else "")
            print(f"submitted {design}/{arch}: {ticket['id']}{note}")

    started = time.monotonic()
    runs = {}
    for cell, ticket in tickets.items():
        def narrate(event, cell=cell):
            attrs = event.get("attrs") or {}
            if event.get("name") == "job.stage":
                print(f"  {cell[0]}/{cell[1]}: {attrs.get('stage')} "
                      f"({'cached' if attrs.get('cached') else 'computed'}"
                      f" in {attrs.get('seconds')}s)")

        job = client.wait(ticket["id"], timeout=1800, on_event=narrate)
        if job["state"] != "done":
            print(f"{cell[0]}/{cell[1]} {job['state']}: {job.get('error')}",
                  file=sys.stderr)
            return 1
        runs[cell] = job["result"]["metrics"]
    elapsed = time.monotonic() - started
    print(f"\nall {len(runs)} cells done in {elapsed:.1f}s\n")

    # Reassemble the paper's tables from the served per-cell metrics.
    header = f"{'design':<10} {'arch':<9} {'die area b':>12} {'slack b':>9}"
    print("Table 1/2 inputs (flow b, from served metrics):")
    print(header)
    print("-" * len(header))
    for (design, arch), metrics in sorted(runs.items()):
        flow_b = metrics["flow_b"]
        print(f"{design:<10} {arch:<9} "
              f"{flow_b['die_area_um2']:>12.0f} "
              f"{flow_b['average_slack_ns']:>9.3f}")
    for design in DESIGNS:
        granular = runs[(design, "granular")]["flow_b"]["die_area_um2"]
        lut = runs[(design, "lut")]["flow_b"]["die_area_um2"]
        print(f"{design}: granular die is {granular / lut:.2f}x "
              f"the LUT die (paper Table 1 direction: < 1 for datapath)")

    if server is not None:
        server.close()
        print("server drained and closed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
