#!/usr/bin/env python
"""Power and via-programmability analysis (extension example).

Runs the FPU on both PLB architectures and compares:

* estimated post-packing power (dynamic / clock / leakage) — the
  probability-propagation activity model feeding the standard
  0.5*a*C*V^2*f estimate;
* configuration-via statistics — the silicon cost of each PLB's
  programmability and the SRAM-bit equivalent an FPGA would pay, which
  is the paper's Section 1 argument for via-patterned heterogeneity.

Run:  python examples/power_and_vias.py
"""

from repro.core.vias import design_via_stats, granularity_cost_comparison
from repro.flow.experiments import build_design
from repro.flow.flow import FlowOptions, architecture_of, run_design
from repro.power.power import estimate_power


def main() -> None:
    options = FlowOptions(place_effort=0.15, seed=3)
    print("Running the FPU on both architectures...\n")

    print(f"{'arch':10s} {'die b':>9s} {'dynamic':>9s} {'clock':>7s} "
          f"{'leakage':>8s} {'total mW':>9s}")
    runs = {}
    for arch in ("lut", "granular"):
        run = run_design(build_design("fpu", scale=0.5), arch, options)
        runs[arch] = run
        power = estimate_power(
            run.physical.netlist,
            run.synthesis.timing_library,
            wires=run.physical.wires,
            leakage_area_um2=run.flow_b.die_area,
        )
        print(f"{arch:10s} {run.flow_b.die_area:9.0f} {power.dynamic:9.3f} "
              f"{power.clock:7.3f} {power.leakage:8.4f} {power.total:9.3f}")

    print("\nVia-programmability cost per PLB:")
    for name, stats in granularity_cost_comparison().items():
        print(f"  {name:9s} {stats['potential_sites']:5.0f} sites, "
              f"{stats['site_area_fraction']:.1%} of PLB area as via sites "
              f"(SRAM equivalent would be {stats['sram_area_fraction']:.1f}x "
              f"the whole PLB)")

    print("\nConfigured vias for this FPU:")
    for arch, run in runs.items():
        stats = design_via_stats(
            run.physical.netlist, architecture_of(arch),
            run.flow_b.plbs_used, design="fpu",
        )
        print(f"  {arch:9s} {stats.configured_vias:6d} configured of "
              f"{stats.potential_sites:6d} potential "
              f"({stats.utilization:.1%} site utilization)")


if __name__ == "__main__":
    main()
