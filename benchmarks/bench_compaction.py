"""Benchmark for the logic-compaction claim (paper Section 3.1).

"For both the PLB architectures that we considered, this compaction step
resulted in a significant reduction in total gate area of about 15% on
the average."

Reports the measured per-design/per-architecture reductions from the
shared matrix, and times one standalone compaction run (mapped netlist ->
FlowMap supernodes -> matched structures -> rebuilt netlist).
"""

from conftest import write_result

from repro.cells.library import granular_plb_library
from repro.flow.experiments import build_design, run_compaction_summary
from repro.synth.compaction import compact
from repro.synth.from_netlist import extract_core
from repro.synth.optimize import optimize
from repro.synth.techmap import map_core


def test_compaction_summary(matrix):
    summary = run_compaction_summary(matrix)
    text = summary.format()
    print("\n" + text)
    write_result("compaction.txt", text)

    # Shape: compaction helps on average and never regresses anywhere.
    assert summary.average > 0.02
    assert all(v >= 0.0 for v in summary.reductions.values())


def test_compaction_throughput(benchmark):
    """Time compaction itself on the mapped ALU (granular library)."""
    library = granular_plb_library()
    src = build_design("alu", scale=0.5)
    core = extract_core(src)
    core = type(core)(
        aig=optimize(core.aig),
        primary_inputs=core.primary_inputs,
        primary_outputs=core.primary_outputs,
        dffs=core.dffs,
    )
    mapped = map_core(core, "granular", library)

    def run():
        compacted, report = compact(mapped, "granular", library)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.area_after <= report.area_before
