"""Ablation: PLB granularity design-space sweep (the paper's conclusion).

"our results suggest that the logic block architecture should consist of
some combination of Nand gates with programmable inversion, XOR gates,
and MUXes ... the optimal combination of these logic elements, and the
optimal ratio of combinational to sequential logic elements varies with
the application-domain."

Sweeps candidate PLBs along two axes — mux count (granularity) and DFF
ratio (application domain) — through the granularity explorer, and runs
the two paper architectures end-to-end on a datapath and a control design
to confirm the domain crossover.
"""

from conftest import write_result

from repro.core.explorer import (
    CandidatePLB,
    GranularityExplorer,
    paper_candidates,
)
from repro.flow.experiments import run_table1


def test_explorer_ranks_granular_first(benchmark):
    explorer = GranularityExplorer()
    ranked = benchmark.pedantic(
        lambda: explorer.rank(paper_candidates()), rounds=1, iterations=1
    )
    lines = ["Granularity ablation (lower score = better):"]
    for candidate, metrics, score in ranked:
        lines.append(
            f"  {metrics.name:14s} area={metrics.total_area:6.1f} "
            f"lut_free={metrics.lut_free_coverage:3d}/256 "
            f"FA_in_1_PLB={str(metrics.full_adder_in_one_plb):5s} "
            f"score={score:7.2f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_granularity.txt", text)

    names = [metrics.name for _c, metrics, _s in ranked]
    assert names[0] == "granular_plb"
    assert names.index("granular_plb") < names.index("lut_plb")


def test_mux_count_sweep():
    """More muxes help up to the point where coverage stops improving."""
    explorer = GranularityExplorer()
    metrics = {}
    for n_mux in (1, 2, 3, 4):
        slots = {"MUX2": max(0, n_mux - 1), "XOA": min(1, n_mux),
                 "ND3WI": 1, "DFF": 1}
        metrics[n_mux] = explorer.evaluate(CandidatePLB(f"mux{n_mux}", slots))
    # Coverage without a LUT is monotone in mux count.
    coverages = [metrics[n].lut_free_coverage for n in (1, 2, 3, 4)]
    assert coverages == sorted(coverages)
    # Two muxes already cover everything (XOAMX + composites).
    assert metrics[2].lut_free_coverage == 256
    # Full-adder packing needs the third mux.
    assert not metrics[2].full_adder_in_one_plb
    assert metrics[3].full_adder_in_one_plb


def test_domain_crossover(matrix):
    """Granular wins datapath, loses the sequential-dominated design."""
    table = run_table1(matrix)
    assert table.rows["fpu"].granular_reduction > 0
    assert table.rows["alu"].granular_reduction > 0
    assert table.rows["firewire"].granular_reduction < 0


def test_dff_ratio_axis():
    """A seq-heavy PLB trades area for DFF capacity — the Firewire fix
    the paper proposes ('a PLB with a greater ratio of Flip Flops to
    combinational logic elements')."""
    explorer = GranularityExplorer()
    base = explorer.evaluate(
        CandidatePLB("base", {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 1})
    )
    seq = explorer.evaluate(
        CandidatePLB("seq", {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 3})
    )
    assert seq.total_area > base.total_area
    assert seq.dff_count == 3
    assert seq.sequential_fraction > base.sequential_fraction
