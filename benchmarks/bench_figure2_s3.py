"""Benchmark regenerating the paper's Section 2 function analysis.

* Figure 2: the five categories of S3-infeasible 3-input functions
  (28 + 28 + 1 + 1 + 2 = 60; 196 of 256 are S3-feasible);
* Figure 3: the modified S3 cell covers all 256 functions;
* Figure 5: a 3-LUT is exactly three re-arranged 2:1 MUXes (all 256
  configurations verified);
* Section 2.3: coverage of the granular logic configurations
  (MX / ND3 / NDMX / XOAMX / XOANDMX) whose union needs no LUT.

Everything is computed by exhaustive enumeration, so this also serves as
a microbenchmark of the Boolean substrate.
"""

from conftest import write_result

from repro.core.configs import coverage_summary, granular_configs
from repro.core.lut_decompose import decompose_lut3
from repro.core.s3 import S3Category
from repro.flow.experiments import run_figure2
from repro.logic.truthtable import TruthTable


def _figure2():
    # Recompute from scratch (clear enumeration caches are cheap and the
    # benchmark should time the real enumeration at least once warm).
    return run_figure2()


def test_figure2_categories(benchmark):
    data = benchmark(_figure2)
    text = data.format()
    print("\n" + text)
    write_result("figure2_s3.txt", text)

    assert data.s3_feasible == 196
    assert data.s3_infeasible == 60
    assert data.category_counts[S3Category.ND2WI_COFACTOR_WITH_XOR.name] == 28
    assert data.category_counts[S3Category.XOR_COFACTOR_WITH_ND2WI.name] == 28
    assert data.category_counts[S3Category.BOTH_XOR.name] == 1
    assert data.category_counts[S3Category.BOTH_XNOR.name] == 1
    assert data.category_counts[S3Category.COMPLEMENTARY_XOR.name] == 2
    assert data.modified_s3_coverage == 256


def test_figure5_lut_split(benchmark):
    def split_all():
        return all(
            decompose_lut3(TruthTable(3, mask)).evaluate() == TruthTable(3, mask)
            for mask in range(256)
        )

    assert benchmark(split_all)


def test_granular_config_coverage(benchmark):
    summary = benchmark(coverage_summary)
    print("\nGranular configuration coverage:", summary)
    assert summary == {
        "ND3": 48, "MX": 62, "NDMX": 174, "XOAMX": 224, "XOANDMX": 254,
    }
    union = set()
    for config in granular_configs():
        union |= config.functions
    assert len(union) == 256
