"""Per-stage flow microbenchmarks (Figure 6 pipeline costs).

Times each stage of the flow on the ALU at benchmark scale: synthesis +
mapping, logic compaction, physical synthesis (SA placement), packing,
and routing + extraction.  Useful for tracking performance of the CAD
substrates themselves.

Also measures the evaluation-matrix runner end to end — serial vs
``jobs=4`` workers, cold vs warm stage cache — and records the snapshot
in ``results/perf_matrix.txt`` so the speedup is measured, not asserted.

Runnable directly as a wall-time regression guard::

    python benchmarks/bench_flow_stages.py --smoke            # check
    python benchmarks/bench_flow_stages.py --smoke --record   # rebaseline

``--smoke`` times one cold (design, arch) cell and one cold stage-graph
matrix against the recorded baseline in ``benchmarks/perf_baseline.json``
and exits nonzero when any guarded time regresses more than 2x — a
coarse tripwire for accidentally disabling the persistent realization
tables, the array cost engine, or the stage-graph scheduler.  Every
guarded timing is a **best-of-3**: the minimum is compared against the
budget (the minimum of repeated runs estimates true cost; the max-min
spread is reported so noisy-runner variance is visible instead of
tripping the guard).  The physical (SA placement) stage is additionally
budgeted on its own, so a placement-kernel regression trips the guard
even when the other stages mask it in the total.  ``--json PATH`` writes
the measurements — including per-sample spreads — as JSON for CI
artifact upload; ``--chrome PATH`` records the first matrix run traced
and writes the scheduler's Chrome trace (load in chrome://tracing or
ui.perfetto.dev) for CI upload.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import pytest

from conftest import write_result

from repro.cells.characterize import characterize_library
from repro.cells.library import granular_plb_library
from repro.core.plb import granular_plb
from repro.flow.experiments import build_design
from repro.flow.flow import STAGES, run_design
from repro.flow.options import FlowOptions
from repro.flow.parallel import run_cells
from repro.pack.iterative import run_packing_loop
from repro.place.physical_synthesis import run_physical_synthesis
from repro.route.extract import route_and_extract
from repro.route.grid import RoutingGrid
from repro.synth.compaction import compact
from repro.synth.from_netlist import CombCore, extract_core
from repro.synth.optimize import optimize
from repro.synth.techmap import map_core

ARCH = "granular"
SCALE = 0.5


@pytest.fixture(scope="module")
def stage_artifacts():
    """Run the flow once, capturing each stage's inputs."""
    library = granular_plb_library()
    timing = characterize_library(library)
    arch = granular_plb()
    src = build_design("alu", scale=SCALE)
    core = extract_core(src)
    core = CombCore(
        aig=optimize(core.aig),
        primary_inputs=core.primary_inputs,
        primary_outputs=core.primary_outputs,
        dffs=core.dffs,
    )
    mapped = map_core(core, ARCH, library)
    compacted, _report = compact(mapped, ARCH, library)
    physical = run_physical_synthesis(
        compacted.copy(), library, timing, period=0.5, seed=1, effort=0.1
    )
    return {
        "src": src,
        "core": core,
        "library": library,
        "timing": timing,
        "arch": arch,
        "mapped": mapped,
        "compacted": compacted,
        "physical": physical,
    }


def test_stage_synthesis(benchmark, stage_artifacts):
    src = stage_artifacts["src"]

    def synth():
        core = extract_core(src)
        return optimize(core.aig)

    aig = benchmark(synth)
    assert aig.n_ands() > 0


def test_stage_techmap(benchmark, stage_artifacts):
    core = stage_artifacts["core"]
    library = stage_artifacts["library"]
    mapped = benchmark(lambda: map_core(core, ARCH, library))
    assert len(mapped.instances) > 0


def test_stage_compaction(benchmark, stage_artifacts):
    mapped = stage_artifacts["mapped"]
    library = stage_artifacts["library"]
    _net, report = benchmark(lambda: compact(mapped, ARCH, library))
    assert report.area_after <= report.area_before


def test_stage_placement(benchmark, stage_artifacts):
    compacted = stage_artifacts["compacted"]
    library = stage_artifacts["library"]
    timing = stage_artifacts["timing"]

    result = benchmark.pedantic(
        lambda: run_physical_synthesis(
            compacted.copy(), library, timing, period=0.5, seed=2,
            iterations=1, effort=0.1,
        ),
        rounds=1, iterations=1,
    )
    assert result.timing.critical_path_delay > 0


@pytest.mark.parametrize("engine", ["array", "object"])
def test_stage_placement_kernel(benchmark, stage_artifacts, engine):
    """Raw SA move-kernel throughput (moves/s) for both cost engines.

    Bypasses the cooling schedule: one fixed-temperature sweep through
    :meth:`AnnealingPlacer.benchmark_kernel`, so the number isolates the
    speculative-delta evaluate/commit path from the rest of the flow.
    """
    from repro.place.grid import grid_for_netlist
    from repro.place.sa import AnnealingPlacer

    compacted = stage_artifacts["compacted"]
    placer = AnnealingPlacer(
        compacted.copy(), grid_for_netlist(compacted), seed=3, engine=engine
    )
    stats = benchmark.pedantic(
        lambda: placer.benchmark_kernel(KERNEL_MOVES), rounds=1, iterations=1
    )
    assert stats["evaluated"] > 0
    print(f"\n{engine} engine: {stats['moves_per_s']:,.0f} moves/s "
          f"({stats['evaluated']} evaluated, {stats['accepted']} accepted)")


def test_stage_packing(benchmark, stage_artifacts):
    physical = stage_artifacts["physical"]
    packed = benchmark.pedantic(
        lambda: run_packing_loop(
            physical.netlist.copy(), physical.placement,
            stage_artifacts["arch"], stage_artifacts["library"],
            stage_artifacts["timing"], period=0.5, iterations=1,
        ),
        rounds=1, iterations=1,
    )
    assert packed.die_area > 0


def test_stage_routing(benchmark, stage_artifacts):
    physical = stage_artifacts["physical"]
    grid = physical.placement.grid
    routing_grid = RoutingGrid(
        cols=max(2, grid.cols // 3),
        rows=max(2, grid.rows // 3),
        bin_pitch=grid.pitch * 3,
        tracks=28,
    )
    points = physical.placement.net_pin_points(physical.netlist)
    result, model = benchmark.pedantic(
        lambda: route_and_extract(routing_grid, points), rounds=1, iterations=1
    )
    assert result.nets


# ----------------------------------------------------------------------
# End-to-end matrix: serial vs parallel, cold vs warm cache
# ----------------------------------------------------------------------

PERF_CELLS = [(d, a) for d in ("alu", "netswitch") for a in ("granular", "lut")]
PERF_SCALE = 0.4
PERF_OPTIONS = FlowOptions(
    place_effort=0.1, place_iterations=1, pack_iterations=1, seed=7
)

#: Annotations for the per-stage breakdown in results/perf_matrix.txt.
STAGE_LABELS = {"physical": "physical (SA placement)"}


def _timed_matrix(monkeypatch, jobs, cache_dir, schedule="cell"):
    from dataclasses import replace

    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    options = replace(PERF_OPTIONS, schedule=schedule)
    start = time.perf_counter()
    runs = run_cells(PERF_CELLS, PERF_SCALE, options, jobs=jobs)
    return time.perf_counter() - start, runs


def test_design_run_stage_instrumentation(tmp_path, monkeypatch):
    """DesignRun carries per-stage wall times and cache events."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    run = run_design(build_design("alu", scale=0.3), ARCH, PERF_OPTIONS)
    assert set(run.stage_seconds) == set(STAGES)
    assert all(seconds >= 0 for seconds in run.stage_seconds.values())
    assert run.cache_stats is not None
    assert "synthesis" in run.performance_report()


def test_matrix_serial_vs_parallel_cold_vs_warm(
    benchmark, tmp_path_factory, monkeypatch
):
    """Measure the matrix runner and snapshot it to results/perf_matrix.txt.

    A warm-cache rerun must beat the cold run by >= 5x (every stage is a
    cache hit), and all configurations — serial, cell pool, stage graph —
    must report identical design metrics (worker count, schedule, and
    cache state never change results).
    """
    serial_dir = tmp_path_factory.mktemp("perf-serial")
    parallel_dir = tmp_path_factory.mktemp("perf-parallel")
    stage_dir = tmp_path_factory.mktemp("perf-stage")

    cold_serial, runs_cold = _timed_matrix(monkeypatch, 1, serial_dir)
    warm_serial, runs_warm = _timed_matrix(monkeypatch, 1, serial_dir)
    cold_parallel, runs_pcold = _timed_matrix(monkeypatch, 4, parallel_dir)
    warm_parallel, runs_pwarm = _timed_matrix(monkeypatch, 4, parallel_dir)
    cold_stage, runs_scold = _timed_matrix(
        monkeypatch, 4, stage_dir, schedule="stage"
    )
    warm_stage, runs_swarm = _timed_matrix(
        monkeypatch, 4, stage_dir, schedule="stage"
    )

    def metrics(runs):
        return [
            (cell, r.flow_a.die_area, r.flow_b.die_area,
             r.flow_a.average_slack, r.flow_b.average_slack)
            for cell, r in runs.items()
        ]

    baseline = metrics(runs_cold)
    assert metrics(runs_warm) == baseline
    assert metrics(runs_pcold) == baseline
    assert metrics(runs_pwarm) == baseline
    assert metrics(runs_scold) == baseline
    assert metrics(runs_swarm) == baseline
    assert warm_serial * 5 <= cold_serial, "warm cache must be >= 5x faster"

    stage_lines = [
        f"  {STAGE_LABELS.get(stage, stage):24s} "
        f"{runs_cold[cell].stage_seconds[stage]:8.3f} s"
        for cell in PERF_CELLS[:1]
        for stage in STAGES
    ]
    text = "\n".join(
        [
            "Evaluation-matrix runner performance "
            f"({len(PERF_CELLS)} cells, scale {PERF_SCALE}, "
            f"{os.cpu_count()} CPU(s) visible)",
            f"{'configuration':26s} {'wall (s)':>10s} {'speedup':>9s}",
            f"{'serial, cold cache':26s} {cold_serial:10.2f} {1.0:9.2f}x",
            f"{'serial, warm cache':26s} {warm_serial:10.2f} "
            f"{cold_serial / warm_serial:9.2f}x",
            f"{'jobs=4 cell, cold cache':26s} {cold_parallel:10.2f} "
            f"{cold_serial / cold_parallel:9.2f}x",
            f"{'jobs=4 cell, warm cache':26s} {warm_parallel:10.2f} "
            f"{cold_serial / warm_parallel:9.2f}x",
            f"{'jobs=4 stage, cold cache':26s} {cold_stage:10.2f} "
            f"{cold_serial / cold_stage:9.2f}x",
            f"{'jobs=4 stage, warm cache':26s} {warm_stage:10.2f} "
            f"{cold_serial / warm_stage:9.2f}x",
            "",
            "cold-run stage breakdown (first cell, alu/granular):",
            *stage_lines,
            "",
            "All configurations produce identical design metrics; parallel",
            "speedup scales with available cores (a 1-CPU runner shows",
            "pool/scheduler overhead instead of wins; the cache rows are",
            "the hardware-independent signal).  The stage rows run the",
            "(cell, stage) task-graph scheduler (repro.flow.scheduler).",
        ]
    )
    print("\n" + text)
    write_result("perf_matrix.txt", text)
    # Give pytest-benchmark a real measurement: one more warm-cache pass.
    benchmark.pedantic(
        lambda: run_cells(PERF_CELLS, PERF_SCALE, PERF_OPTIONS, jobs=1),
        rounds=1, iterations=1,
    )


# ----------------------------------------------------------------------
# Script mode: cold single-cell wall-time regression guard
# ----------------------------------------------------------------------

SMOKE_CELL = ("alu", "granular")
SMOKE_SCALE = 0.3
SMOKE_MATRIX_SCALE = 0.25
SMOKE_MATRIX_JOBS = 4
SMOKE_REPEATS = 3
SMOKE_MAX_REGRESSION = 2.0
KERNEL_MOVES = 20000
BASELINE_PATH = Path(__file__).with_name("perf_baseline.json")


def _best_and_spread(samples):
    """(best, spread): min of the repeats, and max-min as noise estimate."""
    return min(samples), max(samples) - min(samples)


def _time_smoke_cell() -> dict:
    """Cold wall times of one (design, arch) cell in a throwaway cache dir.

    A fresh ``REPRO_CACHE_DIR`` guarantees every stage is computed, not
    loaded, so the numbers track real kernel cost.  One caveat for the
    best-of-3 guard: the realization-table memo is in-process, so only
    the first sample pays table derivation — the minimum measures
    steady-state kernel cost and the derivation shows up in the spread.
    Returns the total wall time plus the physical (SA placement) stage
    on its own, so placement regressions are guarded independently of
    the rest of the flow.
    """
    design, arch = SMOKE_CELL
    netlist = build_design(design, scale=SMOKE_SCALE)
    with tempfile.TemporaryDirectory() as cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        start = time.perf_counter()
        run = run_design(netlist, arch, PERF_OPTIONS)
        elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "physical_seconds": run.stage_seconds["physical"],
        "placement": dict(getattr(run.physical, "placement_stats", None) or {}),
    }


def _time_smoke_matrix(chrome_path: str = None) -> float:
    """Cold stage-graph matrix wall time in a throwaway cache dir.

    Runs ``PERF_CELLS`` under ``--schedule stage`` with
    ``SMOKE_MATRIX_JOBS`` workers — the guarded ``matrix_seconds``
    budget.  With ``chrome_path`` the run is traced and the scheduler's
    Chrome trace is written there (observation is inert by contract, so
    the traced sample is still a valid timing; best-of-3 discards any
    residual overhead anyway).
    """
    from dataclasses import replace

    options = PERF_OPTIONS if chrome_path is None else replace(
        PERF_OPTIONS, observe=True
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        start = time.perf_counter()
        run_cells(PERF_CELLS, SMOKE_MATRIX_SCALE, options,
                  jobs=SMOKE_MATRIX_JOBS)
        elapsed = time.perf_counter() - start
    if chrome_path is not None:
        from repro.obs import export as obs_export
        from repro.obs import journal as obs_journal

        events = obs_journal.read_journal(obs_journal.last_journal())
        Path(chrome_path).write_text(
            json.dumps(obs_export.chrome_trace(events)), encoding="utf-8"
        )
        print(f"scheduler chrome trace written to {chrome_path}")
    return elapsed


def _kernel_throughput() -> dict:
    """Moves/s of the raw SA move kernel for both cost engines."""
    from repro.place.grid import grid_for_netlist
    from repro.place.sa import AnnealingPlacer
    from repro.synth.compaction import compact
    from repro.synth.from_netlist import extract_core
    from repro.synth.techmap import map_core

    design, _arch = SMOKE_CELL
    library = granular_plb_library()
    core = extract_core(build_design(design, scale=SMOKE_SCALE))
    mapped = map_core(core, ARCH, library)
    compacted, _report = compact(mapped, ARCH, library)
    out = {}
    for engine in ("array", "object"):
        placer = AnnealingPlacer(
            compacted.copy(), grid_for_netlist(compacted),
            seed=3, engine=engine,
        )
        out[engine] = placer.benchmark_kernel(KERNEL_MOVES)
    return out


def _traced_smoke_report(repeats: int = 3) -> None:
    """Record a traced smoke journal and print per-stage percentiles.

    Runs the smoke cell ``repeats`` times (first cold, rest warm-cache)
    under one trace session, finalizes a single journal — written to the
    journal dir (``results/journals/`` by default) so CI can upload it —
    and summarizes the ``stage.seconds.*`` histograms from the journal
    itself, exercising the full record -> write -> read -> export path.
    """
    from repro.obs import core as obs_core
    from repro.obs import export as obs_export
    from repro.obs import journal as obs_journal

    design, arch = SMOKE_CELL
    netlist = build_design(design, scale=SMOKE_SCALE)
    with tempfile.TemporaryDirectory() as cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        obs_core.begin(label="smoke-bench", repeats=repeats)
        for _ in range(repeats):
            run_design(netlist, arch, PERF_OPTIONS)
        path = obs_journal.finalize("smoke-bench")
    events = obs_journal.read_journal(path)
    histograms = obs_export.merge_histograms(events)
    print(f"\ntraced journal ({repeats} runs, 1 cold): {path}")
    print(f"{'stage':24s} {'count':>5s} {'p50 (s)':>9s} {'p95 (s)':>9s}")
    for name in sorted(histograms):
        if not name.startswith("stage.seconds."):
            continue
        hist = histograms[name]
        stage = name[len("stage.seconds."):]
        print(f"{stage:24s} {hist.count:5d} "
              f"{hist.percentile(50):9.3f} {hist.percentile(95):9.3f}")


def run_smoke(record: bool, json_path: str = None,
              chrome_path: str = None) -> int:
    design, arch = SMOKE_CELL
    cell_samples = [_time_smoke_cell() for _ in range(SMOKE_REPEATS)]
    elapsed, spread = _best_and_spread(
        [s["seconds"] for s in cell_samples]
    )
    physical, physical_spread = _best_and_spread(
        [s["physical_seconds"] for s in cell_samples]
    )
    best = min(cell_samples, key=lambda s: s["seconds"])
    print(f"cold {design}/{arch} cell (scale {SMOKE_SCALE}, "
          f"best of {SMOKE_REPEATS}): {elapsed:.2f} s "
          f"(spread {spread:.2f} s, physical stage {physical:.2f} s, "
          f"engine {best['placement'].get('engine', '?')})")
    matrix_samples = [
        _time_smoke_matrix(chrome_path if i == 0 else None)
        for i in range(SMOKE_REPEATS)
    ]
    matrix_seconds, matrix_spread = _best_and_spread(matrix_samples)
    print(f"cold stage-graph matrix ({len(PERF_CELLS)} cells, scale "
          f"{SMOKE_MATRIX_SCALE}, jobs {SMOKE_MATRIX_JOBS}, best of "
          f"{SMOKE_REPEATS}): {matrix_seconds:.2f} s "
          f"(spread {matrix_spread:.2f} s)")
    kernel = _kernel_throughput()
    for engine, stats in kernel.items():
        print(f"{engine} kernel: {stats['moves_per_s']:,.0f} moves/s "
              f"({KERNEL_MOVES} proposals)")
    _traced_smoke_report()
    if json_path:
        Path(json_path).write_text(json.dumps({
            "design": design,
            "arch": arch,
            "scale": SMOKE_SCALE,
            "repeats": SMOKE_REPEATS,
            "seconds": round(elapsed, 3),
            "seconds_spread": round(spread, 3),
            "seconds_samples": [
                round(s["seconds"], 3) for s in cell_samples
            ],
            "physical_seconds": round(physical, 3),
            "physical_seconds_spread": round(physical_spread, 3),
            "matrix_seconds": round(matrix_seconds, 3),
            "matrix_seconds_spread": round(matrix_spread, 3),
            "matrix_seconds_samples": [
                round(s, 3) for s in matrix_samples
            ],
            "matrix_cells": len(PERF_CELLS),
            "matrix_scale": SMOKE_MATRIX_SCALE,
            "matrix_jobs": SMOKE_MATRIX_JOBS,
            "placement": best["placement"],
            "kernel_moves_per_s": {
                engine: round(stats["moves_per_s"], 1)
                for engine, stats in kernel.items()
            },
        }, indent=2) + "\n")
        print(f"measurements written to {json_path}")
    if record:
        BASELINE_PATH.write_text(json.dumps({
            "design": design,
            "arch": arch,
            "scale": SMOKE_SCALE,
            "seconds": round(elapsed, 3),
            "physical_seconds": round(physical, 3),
            "matrix_seconds": round(matrix_seconds, 3),
        }, indent=2) + "\n")
        print(f"baseline recorded to {BASELINE_PATH}")
        return 0
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --record first",
              file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    failed = False

    def guard(label, value, budget):
        nonlocal failed
        if budget is None:
            print(f"note: baseline has no {label}; "
                  "rerun with --record to guard it")
            return
        limit = budget * SMOKE_MAX_REGRESSION
        print(f"{label} baseline {budget:.2f} s, limit {limit:.2f} s "
              f"({SMOKE_MAX_REGRESSION:.0f}x)")
        if value > limit:
            print(f"FAIL: {label} {value:.2f} s exceeds {limit:.2f} s",
                  file=sys.stderr)
            failed = True

    guard("cold cell seconds", elapsed, baseline.get("seconds"))
    guard("placement physical_seconds", physical,
          baseline.get("physical_seconds"))
    guard("stage-graph matrix_seconds", matrix_seconds,
          baseline.get("matrix_seconds"))
    if failed:
        return 1
    print("OK: within budget")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="flow-stage benchmarks (pytest) / perf smoke guard (script)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="time one cold cell against the recorded baseline")
    parser.add_argument("--record", action="store_true",
                        help="with --smoke: (re)write the baseline file")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="with --smoke: write measurements as JSON "
                             "(for CI artifact upload)")
    parser.add_argument("--chrome", metavar="PATH", default=None,
                        help="with --smoke: trace the first matrix run and "
                             "write the scheduler Chrome trace to PATH")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run under pytest for the benchmarks, "
                     "or pass --smoke for the regression guard")
    return run_smoke(record=args.record, json_path=args.json,
                     chrome_path=args.chrome)


if __name__ == "__main__":
    sys.exit(main())
