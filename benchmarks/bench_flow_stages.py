"""Per-stage flow microbenchmarks (Figure 6 pipeline costs).

Times each stage of the flow on the ALU at benchmark scale: synthesis +
mapping, logic compaction, physical synthesis (SA placement), packing,
and routing + extraction.  Useful for tracking performance of the CAD
substrates themselves.
"""

import pytest

from repro.cells.characterize import characterize_library
from repro.cells.library import granular_plb_library
from repro.core.plb import granular_plb
from repro.flow.experiments import build_design
from repro.pack.iterative import run_packing_loop
from repro.place.physical_synthesis import run_physical_synthesis
from repro.route.extract import route_and_extract
from repro.route.grid import RoutingGrid
from repro.synth.compaction import compact
from repro.synth.from_netlist import CombCore, extract_core
from repro.synth.optimize import optimize
from repro.synth.techmap import map_core

ARCH = "granular"
SCALE = 0.5


@pytest.fixture(scope="module")
def stage_artifacts():
    """Run the flow once, capturing each stage's inputs."""
    library = granular_plb_library()
    timing = characterize_library(library)
    arch = granular_plb()
    src = build_design("alu", scale=SCALE)
    core = extract_core(src)
    core = CombCore(
        aig=optimize(core.aig),
        primary_inputs=core.primary_inputs,
        primary_outputs=core.primary_outputs,
        dffs=core.dffs,
    )
    mapped = map_core(core, ARCH, library)
    compacted, _report = compact(mapped, ARCH, library)
    physical = run_physical_synthesis(
        compacted.copy(), library, timing, period=0.5, seed=1, effort=0.1
    )
    return {
        "src": src,
        "core": core,
        "library": library,
        "timing": timing,
        "arch": arch,
        "mapped": mapped,
        "compacted": compacted,
        "physical": physical,
    }


def test_stage_synthesis(benchmark, stage_artifacts):
    src = stage_artifacts["src"]

    def synth():
        core = extract_core(src)
        return optimize(core.aig)

    aig = benchmark(synth)
    assert aig.n_ands() > 0


def test_stage_techmap(benchmark, stage_artifacts):
    core = stage_artifacts["core"]
    library = stage_artifacts["library"]
    mapped = benchmark(lambda: map_core(core, ARCH, library))
    assert len(mapped.instances) > 0


def test_stage_compaction(benchmark, stage_artifacts):
    mapped = stage_artifacts["mapped"]
    library = stage_artifacts["library"]
    _net, report = benchmark(lambda: compact(mapped, ARCH, library))
    assert report.area_after <= report.area_before


def test_stage_placement(benchmark, stage_artifacts):
    compacted = stage_artifacts["compacted"]
    library = stage_artifacts["library"]
    timing = stage_artifacts["timing"]

    result = benchmark.pedantic(
        lambda: run_physical_synthesis(
            compacted.copy(), library, timing, period=0.5, seed=2,
            iterations=1, effort=0.1,
        ),
        rounds=1, iterations=1,
    )
    assert result.timing.critical_path_delay > 0


def test_stage_packing(benchmark, stage_artifacts):
    physical = stage_artifacts["physical"]
    packed = benchmark.pedantic(
        lambda: run_packing_loop(
            physical.netlist.copy(), physical.placement,
            stage_artifacts["arch"], stage_artifacts["library"],
            stage_artifacts["timing"], period=0.5, iterations=1,
        ),
        rounds=1, iterations=1,
    )
    assert packed.die_area > 0


def test_stage_routing(benchmark, stage_artifacts):
    physical = stage_artifacts["physical"]
    grid = physical.placement.grid
    routing_grid = RoutingGrid(
        cols=max(2, grid.cols // 3),
        rows=max(2, grid.rows // 3),
        bin_pitch=grid.pitch * 3,
        tracks=28,
    )
    points = physical.placement.net_pin_points(physical.netlist)
    result, model = benchmark.pedantic(
        lambda: route_and_extract(routing_grid, points), rounds=1, iterations=1
    )
    assert result.nets
