"""Benchmark regenerating paper Table 2: average slack of the top-10 paths.

"The cycle time for all the designs is .5 ns.  We compare the average
slack over the top 10 critical paths in the design."

Derived claims:

* T2-a: the granular PLB improves the slack deficit ~18% on average
  (FPU up to ~40%);
* T2-b: ~68% less performance degradation from flow a to flow b with the
  granular PLB (denser arrays mean shorter post-packing wires).
"""

from conftest import write_result

from repro.flow.experiments import run_table2


def test_table2_path_slack(benchmark, matrix):
    table = benchmark.pedantic(
        lambda: run_table2(matrix), rounds=1, iterations=1
    )
    text = table.format()
    print("\n" + text)
    write_result("table2_timing.txt", text)

    assert table.period == 0.5  # the paper's cycle target
    # T2-a: granular wins on the datapath designs.
    for design in ("alu", "fpu", "netswitch"):
        assert table.rows[design].slack_improvement > 0.05, design
    assert table.average_slack_improvement > 0.05
    # T2-b: less a->b degradation in aggregate.
    assert table.degradation_reduction > 0.0


def test_fpu_is_among_biggest_timing_wins(matrix):
    table = run_table2(matrix)
    fpu = table.rows["fpu"].slack_improvement
    others = [
        row.slack_improvement
        for name, row in table.rows.items()
        if name not in ("fpu", "firewire")
    ]
    # Paper: FPU improves the most (~40%); require it be competitive.
    assert fpu >= 0.6 * max(others)


def test_flow_a_faster_than_flow_b(matrix):
    """Packing perturbs placement, so flow b can only be slower."""
    table = run_table2(matrix)
    for row in table.rows.values():
        assert row.granular_flow_a >= row.granular_flow_b - 1e-9
        assert row.lut_flow_a >= row.lut_flow_b - 1e-9
