"""Benchmark for the full-adder packing claim (paper Section 2.2).

"only one more MUX ... is required to implement a full adder in a single
PLB" — while the LUT-based PLB needs the LUTs of two PLBs (the sum is a
3-input XOR and the carry is the majority function, neither of which an
ND3WI can produce).

Verified end-to-end through the real packer: the paper's hand construction
is packed by recursive quadrisection and the PLB counts are measured.
"""

from collections import defaultdict

from repro.core.adder import granular_full_adder, lut_full_adder
from repro.core.plb import granular_plb, lut_plb
from repro.pack.quadrisection import pack
from repro.pack.resources import min_plbs
from repro.place.grid import grid_for_netlist
from repro.place.sa import AnnealingPlacer


def _pack_adder(netlist, arch, cols, rows):
    grid = grid_for_netlist(netlist)
    placement = AnnealingPlacer(netlist, grid, seed=0, effort=0.05).place()
    return pack(netlist, placement, arch, cols, rows)


def test_granular_adder_fits_one_plb(benchmark):
    netlist = granular_full_adder()
    arch = granular_plb()
    assert min_plbs(arch, netlist) == 1

    result = benchmark.pedantic(
        lambda: _pack_adder(netlist, arch, 1, 1), rounds=1, iterations=1
    )
    plbs = {a.plb for a in result.assignments.values()}
    print(f"\ngranular full adder: {len(plbs)} PLB(s), "
          f"slots used: {sorted(a.slot for a in result.assignments.values())}")
    assert len(plbs) == 1


def test_lut_adder_needs_two_plbs(benchmark):
    netlist = lut_full_adder()
    arch = lut_plb()
    needed = min_plbs(arch, netlist)
    assert needed == 2  # one LUT slot per PLB, two LUT functions

    result = benchmark.pedantic(
        lambda: _pack_adder(netlist, arch, 2, 1), rounds=1, iterations=1
    )
    plbs = {a.plb for a in result.assignments.values()}
    print(f"\nLUT-based full adder: {len(plbs)} PLB(s)")
    assert len(plbs) == 2


def test_adder_slot_usage_matches_paper():
    """The granular packing uses exactly the paper's component mix."""
    netlist = granular_full_adder()
    arch = granular_plb()
    result = _pack_adder(netlist, arch, 1, 1)
    by_slot = defaultdict(int)
    for assignment in result.assignments.values():
        by_slot[assignment.slot] += 1
    # Three muxes (2 plain + XOA), one ND3WI, inverters on free buffers.
    assert by_slot["MUX2"] == 2
    assert by_slot["XOA"] == 1
    assert by_slot["ND3WI"] == 1
    assert by_slot["POLBUF"] >= 1
