"""Extension benchmarks: power comparison and via-programmability cost.

Beyond the paper's area/timing evaluation (its companion work [10] also
compares power), this reports:

* estimated post-packing power per design and architecture — the LUT
  PLB's larger arrays leak more and its LUT input caps burn more dynamic
  power on datapath designs;
* the via-site accounting behind the paper's Section 1 argument that
  heterogeneity is cheap for via-patterned fabrics.
"""

from conftest import write_result

from repro.core.vias import design_via_stats, granularity_cost_comparison
from repro.flow.flow import architecture_of
from repro.power.power import estimate_power


def test_power_comparison(benchmark, matrix):
    def compute():
        rows = {}
        for (design, arch), run in matrix.runs.items():
            report = estimate_power(
                run.physical.netlist,
                run.synthesis.timing_library,
                wires=run.physical.wires,
                leakage_area_um2=run.flow_b.die_area,
            )
            rows[(design, arch)] = report
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["Estimated flow-b power (mW @ 200 MHz):",
             f"{'design':12s} {'arch':9s} {'dynamic':>8s} {'clock':>7s} "
             f"{'leakage':>8s} {'total':>7s}"]
    for (design, arch), report in sorted(rows.items()):
        lines.append(
            f"{design:12s} {arch:9s} {report.dynamic:8.3f} {report.clock:7.3f} "
            f"{report.leakage:8.4f} {report.total:7.3f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("power.txt", text)

    # On datapath designs the granular implementation should not burn
    # more total power than the LUT one (smaller arrays, cheaper pins).
    for design in ("alu", "fpu"):
        gran = rows[(design, "granular")].total
        lut = rows[(design, "lut")].total
        assert gran < lut * 1.10, design


def test_via_cost_argument(benchmark, matrix):
    comparison = benchmark(granularity_cost_comparison)
    lines = ["Via-programmability cost per PLB:"]
    for name, stats in comparison.items():
        lines.append(
            f"  {name:9s} sites={stats['potential_sites']:5.0f} "
            f"via_area={stats['via_site_area_um2']:6.1f} um^2 "
            f"({stats['site_area_fraction']:.1%} of PLB), "
            f"SRAM equiv={stats['sram_equivalent_area_um2']:7.1f} um^2 "
            f"({stats['sram_area_fraction']:.1f}x PLB)"
        )
    # Per-design configured-via utilization.
    for (design, arch), run in sorted(matrix.runs.items()):
        stats = design_via_stats(
            run.physical.netlist, architecture_of(arch),
            run.flow_b.plbs_used, design=design,
        )
        lines.append(
            f"  {design:12s} {arch:9s} configured={stats.configured_vias:6d} "
            f"of {stats.potential_sites:6d} sites "
            f"({stats.utilization:.1%})"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("vias.txt", text)

    gran = comparison["granular"]
    lut = comparison["lut"]
    # The paper's argument: more sites, but still a modest area fraction,
    # while SRAM-programmed equivalents would dominate the block.
    assert gran["potential_sites"] > lut["potential_sites"]
    assert gran["site_area_fraction"] < 0.5
    assert gran["sram_area_fraction"] > 1.0
