"""Shared benchmark configuration.

The full evaluation matrix (4 designs x 2 architectures x flows a/b) is
computed once per session and shared by the Table 1 and Table 2
benchmarks, exactly as in the paper where both tables come from the same
runs.  ``REPRO_SCALE`` (default 0.6 for benchmark cadence; use 1.0+ for a
full run) controls design sizes.

Formatted experiment outputs are also written to ``results/`` next to
this directory so EXPERIMENTS.md can cite a concrete artifact.
"""

from __future__ import annotations

import os
import pathlib

os.environ.setdefault("REPRO_SCALE", "0.6")

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def matrix():
    from repro.flow.experiments import run_matrix

    return run_matrix()
