"""Benchmark: application-domain-specific PLB exploration (future work).

The paper's closing proposal — "the optimal combination of these logic
elements, and the optimal ratio of combinational to sequential logic
elements varies with the application-domain.  Accordingly, we propose to
explore these issues in an application-domain specific manner" — run for
real: custom PLB architectures (built with :func:`repro.core.plb.custom_plb`)
go through the complete Figure-6 flow on a datapath design (ALU) and the
sequential-dominated Firewire.

Expected crossover: the paper's granular PLB wins the datapath; a
DFF-enriched variant wins Firewire (the fix Section 3.2 suggests).
"""

from conftest import write_result

from repro.core.plb import custom_plb
from repro.flow.experiments import build_design, default_options
from repro.flow.flow import run_design

SCALE = 0.4


def _candidates():
    return {
        "granular": "granular",
        "seq_heavy": custom_plb(
            "seq_heavy", {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 3}
        ),
        "mux_rich": custom_plb(
            "mux_rich", {"MUX2": 3, "XOA": 1, "ND3WI": 1, "DFF": 1}
        ),
    }


def test_domain_specific_exploration(benchmark):
    from dataclasses import replace

    options = replace(default_options(), place_effort=0.1)
    results = {}

    def sweep():
        for design in ("alu", "firewire"):
            src = build_design(design, SCALE)
            for label, arch in _candidates().items():
                run = run_design(src.copy(), arch, options)
                results[(design, label)] = run.flow_b
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Domain-specific PLB exploration (flow b die area, um^2):"]
    for design in ("alu", "firewire"):
        row = {
            label: results[(design, label)].die_area
            for label in _candidates()
        }
        best = min(row, key=row.get)
        lines.append(
            f"  {design:9s} " +
            "  ".join(f"{label}={area:8.0f}" for label, area in row.items()) +
            f"   best: {best}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("domain_specific.txt", text)

    # The crossover: granular-class PLBs win the datapath, the DFF-heavy
    # variant wins the sequential-dominated controller.
    alu_best = min(
        _candidates(), key=lambda c: results[("alu", c)].die_area
    )
    fw_best = min(
        _candidates(), key=lambda c: results[("firewire", c)].die_area
    )
    assert alu_best != "seq_heavy"
    assert fw_best == "seq_heavy"
