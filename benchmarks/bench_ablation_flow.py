"""Flow-level ablations for the design choices DESIGN.md calls out.

* **Compaction on/off** — how much of the final flow-b result the
  regularity-driven compaction step is worth (the paper motivates it but
  never ablates it);
* **Routing-track sweep** — the paper's future work ("exploring regular
  routing architectures for the VPGA fabric"): how track count over the
  PLB array trades congestion against the post-layout slack.
"""

from dataclasses import replace

from conftest import write_result

from repro.flow.experiments import build_design, default_options
from repro.flow.flow import run_design


def test_ablation_compaction(benchmark):
    """Disable logic compaction and measure the flow-b impact."""
    options = replace(default_options(), place_effort=0.1)
    scale = 0.4

    def run_pair():
        with_c = run_design(build_design("alu", scale), "granular", options)
        without = run_design(
            build_design("alu", scale), "granular",
            replace(options, run_compaction=False),
        )
        return with_c, without

    with_c, without = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    lines = [
        "Ablation: logic compaction (granular ALU)",
        f"  with compaction:    area={with_c.synthesis.stats.total_area:8.0f} "
        f"die_b={with_c.flow_b.die_area:8.0f} plbs={with_c.flow_b.plbs_used}",
        f"  without compaction: area={without.synthesis.stats.total_area:8.0f} "
        f"die_b={without.flow_b.die_area:8.0f} plbs={without.flow_b.plbs_used}",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_compaction.txt", text)

    # Compaction must never hurt gate area, and should not hurt PLB count.
    assert with_c.synthesis.stats.total_area <= without.synthesis.stats.total_area
    assert with_c.flow_b.die_area <= without.flow_b.die_area * 1.10


def test_ablation_routing_tracks(benchmark):
    """Sweep per-tile track count over the PLB array (future-work axis)."""
    scale = 0.4
    results = {}

    def sweep():
        for tracks in (6, 12, 28):
            options = replace(
                default_options(), place_effort=0.1, routing_tracks=tracks
            )
            run = run_design(build_design("alu", scale), "granular", options)
            results[tracks] = run.flow_b
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: routing tracks over the PLB array (granular ALU)"]
    for tracks, flow_b in sorted(results.items()):
        lines.append(
            f"  tracks={tracks:3d}: routed={str(flow_b.routing.success):5s} "
            f"overused={flow_b.routing.overused_edges:3d} "
            f"slack_b={flow_b.average_slack:7.3f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_routing.txt", text)

    # More tracks can only reduce overuse.
    overuse = [results[t].routing.overused_edges for t in (6, 12, 28)]
    assert overuse[0] >= overuse[1] >= overuse[2]
    assert results[28].routing.success
