"""Benchmark regenerating paper Table 1: die-area comparison.

Runs the full Figure-6 flow (synthesis, compaction, physical synthesis,
packing, routing, STA) for every design on both PLB architectures and
reports flow-a / flow-b die areas plus the paper's derived claims:

* T1-a: granular PLB reduces datapath die area ~32% on average;
* T1-b: FPU reduction is the largest (paper: up to ~40%);
* T1-c: the sequential-dominated Firewire gets *larger* (granular PLB is
  20% bigger and both architectures are DFF-bound);
* T1-d: the granular PLB pays far less flow-a -> flow-b packing overhead
  on the datapath designs (paper: ~48% less on average, up to 88.6%).
"""

from conftest import write_result

from repro.flow.experiments import run_table1


def test_table1_die_area(benchmark, matrix):
    table = benchmark.pedantic(
        lambda: run_table1(matrix), rounds=1, iterations=1
    )
    text = table.format()
    print("\n" + text)
    write_result("table1_area.txt", text)

    # Shape assertions against the paper's claims.
    assert table.datapath_average_reduction > 0.15, "T1-a: granular must win on datapath"
    assert table.fpu_reduction > 0.25, "T1-b: FPU is the biggest win"
    assert table.firewire_reduction < 0.0, "T1-c: Firewire must invert"
    assert table.datapath_overhead_reduction > 0.0, "T1-d: less packing overhead"

    # The Firewire inversion tracks the PLB area ratio (both DFF-bound).
    assert -0.35 < table.firewire_reduction < -0.05


def test_table1_flow_b_exceeds_flow_a_on_datapath(matrix):
    """Packing a regular array always costs area over the raw ASIC flow."""
    table = run_table1(matrix)
    for design in ("alu", "fpu", "netswitch"):
        row = table.rows[design]
        assert row.granular_flow_b > row.granular_flow_a
        assert row.lut_flow_b > row.lut_flow_a
