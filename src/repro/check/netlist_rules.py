"""Deep structural netlist analysis (family ``NL``).

Audits one :class:`~repro.netlist.core.Netlist` *as data* — it never
mutates the netlist and never raises on a malformed one; every defect
becomes a finding.  This family subsumes the original
``repro.netlist.validate`` string checks (NL001–NL007) and adds the
deeper invariants the flow silently assumed: multi-driven nets,
unreachable logic cones, dangling drivers, and configuration
feasibility against the cell's via-programmable function set.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..netlist.core import Netlist
from .findings import Finding, Severity
from .rules import rule

NL001 = rule(
    "NL001", Severity.ERROR, "netlist",
    "every non-input net has a driver",
    paper_ref="Section 3.1 (mapped netlist feeds every later stage)",
)
NL002 = rule(
    "NL002", Severity.ERROR, "netlist",
    "a primary input is never also driven by an instance",
)
NL003 = rule(
    "NL003", Severity.ERROR, "netlist",
    "net driver references name a real instance pin and agree both ways",
)
NL004 = rule(
    "NL004", Severity.ERROR, "netlist",
    "net sink references name a real instance pin and agree both ways",
)
NL005 = rule(
    "NL005", Severity.ERROR, "netlist",
    "every instance pin connects to an existing net",
)
NL006 = rule(
    "NL006", Severity.ERROR, "netlist",
    "every primary output names an existing net",
)
NL007 = rule(
    "NL007", Severity.ERROR, "netlist",
    "the combinational network is loop-free",
    paper_ref="Section 3.1 (synchronous design style; STA requires a DAG)",
)
NL008 = rule(
    "NL008", Severity.ERROR, "netlist",
    "no net is driven by more than one instance output",
)
NL009 = rule(
    "NL009", Severity.ERROR, "netlist",
    "each combinational config is in its cell's feasible function set",
    paper_ref="Section 2 (via configuration realizes a feasible function)",
)
NL010 = rule(
    "NL010", Severity.WARNING, "netlist",
    "no instance drives a cone unreachable from any output or register",
    paper_ref="Section 3.1 (compaction must not strand logic)",
)


def _combinational_cycle(netlist: Netlist) -> List[str]:
    """Instance names on a combinational cycle ([] when loop-free).

    A defensive re-derivation of :meth:`Netlist.topological_order` that
    tolerates broken references (those are NL003–NL005's job) and
    returns the stuck instances rather than raising.
    """
    indegree: Dict[str, int] = {}
    dependents: Dict[str, List[str]] = {}
    for inst in netlist.instances.values():
        if inst.is_sequential:
            continue
        count = 0
        for net_name in inst.input_nets():
            net = netlist.nets.get(net_name)
            if net is None or net.driver is None:
                continue
            driver = netlist.instances.get(net.driver[0])
            if driver is not None and not driver.is_sequential:
                count += 1
                dependents.setdefault(driver.name, []).append(inst.name)
        indegree[inst.name] = count
    queue = [name for name, deg in indegree.items() if deg == 0]
    seen: Set[str] = set()
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        for dep in dependents.get(name, ()):
            indegree[dep] -= 1
            if indegree[dep] == 0:
                queue.append(dep)
    return sorted(name for name in indegree if name not in seen)


def _reachable_instances(netlist: Netlist) -> Set[str]:
    """Instances in the transitive fanin of any output or register.

    Registers are architectural state and always observable, so every
    sequential instance (and hence its fanin cone) counts as live.
    """
    roots: List[str] = [o for o in netlist.outputs if o in netlist.nets]
    reached: Set[str] = set()
    for inst in netlist.instances.values():
        if inst.is_sequential:
            reached.add(inst.name)
            roots.extend(
                n for n in inst.input_nets() if n in netlist.nets
            )
    stack = list(roots)
    while stack:
        net = netlist.nets.get(stack.pop())
        if net is None or net.driver is None:
            continue
        name = net.driver[0]
        if name in reached:
            continue
        inst = netlist.instances.get(name)
        if inst is None:
            continue
        reached.add(name)
        stack.extend(inst.input_nets())
    return reached


def check_netlist(netlist: Netlist) -> List[Finding]:
    """Run every NL rule over ``netlist``; returns findings (maybe [])."""
    findings: List[Finding] = []

    # --- net-side reference integrity (NL001-NL004) -------------------
    for name, net in netlist.nets.items():
        if net.driver is None and not net.is_input:
            findings.append(NL001.finding(
                f"net {name}", "undriven non-input net",
                fix_hint="connect a driver or remove the net",
            ))
        if net.driver is not None and net.is_input:
            findings.append(NL002.finding(
                f"net {name}", "primary input is also driven",
                fix_hint="rename the instance output net",
            ))
        if net.driver is not None:
            inst_name, pin = net.driver
            inst = netlist.instances.get(inst_name)
            if inst is None:
                findings.append(NL003.finding(
                    f"net {name}",
                    f"driver names unknown instance {inst_name!r}",
                ))
            elif inst.pin_nets.get(pin) != name:
                findings.append(NL003.finding(
                    f"net {name}",
                    f"driver back-reference broken ({inst_name}.{pin})",
                ))
        for inst_name, pin in net.sinks:
            inst = netlist.instances.get(inst_name)
            if inst is None:
                findings.append(NL004.finding(
                    f"net {name}",
                    f"sink names unknown instance {inst_name!r}",
                ))
            elif inst.pin_nets.get(pin) != name:
                findings.append(NL004.finding(
                    f"net {name}",
                    f"sink back-reference broken ({inst_name}.{pin})",
                ))

    # --- instance-side integrity (NL005, NL008, NL009) ----------------
    drivers_of_net: Dict[str, List[str]] = {}
    for inst in netlist.instances.values():
        for pin, net_name in inst.pin_nets.items():
            if net_name not in netlist.nets:
                findings.append(NL005.finding(
                    f"instance {inst.name}",
                    f"pin {pin} on unknown net {net_name!r}",
                ))
        out_net = inst.pin_nets.get(inst.cell.output_pin)
        if out_net is not None:
            drivers_of_net.setdefault(out_net, []).append(inst.name)
        if not inst.is_sequential:
            config = inst.config
            if config is None:
                findings.append(NL009.finding(
                    f"instance {inst.name}",
                    f"combinational cell {inst.cell.name} has no config",
                ))
            elif (inst.cell.feasible is not None
                    and config not in inst.cell.feasible):
                findings.append(NL009.finding(
                    f"instance {inst.name}",
                    f"config {config!r} is not via-realizable by "
                    f"{inst.cell.name}",
                    fix_hint="re-map through the realization table",
                ))
    for net_name, drivers in sorted(drivers_of_net.items()):
        if len(drivers) > 1:
            findings.append(NL008.finding(
                f"net {net_name}",
                f"driven by {len(drivers)} instance outputs: "
                f"{sorted(drivers)}",
            ))

    # --- ports (NL006) -------------------------------------------------
    for out in netlist.outputs:
        if out not in netlist.nets:
            findings.append(NL006.finding(
                f"output {out}", "primary output is not a net",
            ))

    # --- loops (NL007) -------------------------------------------------
    cycle = _combinational_cycle(netlist)
    if cycle:
        shown = ", ".join(cycle[:6]) + ("..." if len(cycle) > 6 else "")
        findings.append(NL007.finding(
            f"netlist {netlist.name}",
            f"combinational cycle through {len(cycle)} instance(s): {shown}",
            fix_hint="break the loop with a register",
        ))

    # --- dead logic (NL010) --------------------------------------------
    # Only meaningful when references are intact; broken refs already
    # fired errors above and make reachability unreliable.
    if not findings:
        reached = _reachable_instances(netlist)
        for name in sorted(netlist.instances):
            if name not in reached:
                findings.append(NL010.finding(
                    f"instance {name}",
                    "drives no primary output or register (dead cone)",
                    fix_hint="sweep_dangling() removes dead logic",
                ))
    return findings
