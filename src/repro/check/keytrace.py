"""Runtime options-access tracer (rule ``CK005``).

The static read-sets built by :mod:`repro.check.cachekey` are a model
of the flow; this module validates that model against *real*
executions.  With ``REPRO_KEYTRACE=1``,
:func:`repro.flow.flow.compute_stage` wraps its ``FlowOptions`` in a
recording proxy before dispatching to the stage compute function, so
every ``options.<field>`` read that actually happens during a stage is
journaled with its stage and count.  The wrap happens *after* cache-key
derivation (``stage_keys`` runs on the raw options), so the trace is
exactly the compute-side read-set the cache-key contract is about.

``repro check --keytrace JOURNAL`` replays a written journal against
the static model and reports CK005 when the three-way containment

    observed reads  ⊆  static reads  ⊆  keyed chain ∪ perf knobs

is violated for any stage: an observed read outside the static model is
a soundness witness against the analyzer (a call edge it failed to
resolve); an observed read outside the key chain is a live cache-key
incoherence — the strongest possible evidence, because the read
*happened*.  Results are aggregated in memory (per-(stage, field)
counts, not per-event records) and written as an obs-format journal via
:func:`repro.obs.journal.write_journal`, so keytrace findings flow
through the same report / ``--sarif`` / ``--fail-on`` machinery as
every other rule.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..flow.options import FlowOptions
from ..obs.journal import (
    environment_fingerprint,
    read_journal,
    write_journal,
)
from .findings import Finding, Severity
from .rules import rule

CK005 = rule(
    "CK005", Severity.ERROR, "self",
    "runtime-observed options reads stay within the static read-set "
    "and the stage key chain (keytrace)",
)

#: Opt-in switch: compute_stage wraps options only when this is "1".
KEYTRACE_ENV = "REPRO_KEYTRACE"

#: Where the harness writes the final report (a fixed path for CI).
KEYTRACE_OUT_ENV = "REPRO_KEYTRACE_OUT"

#: The attribute names the proxy records: exactly the dataclass fields.
#: Method lookups (``to_dict``…) pass through unrecorded.
_FIELD_NAMES = frozenset(f.name for f in dataclass_fields(FlowOptions))


class KeyTrace:
    """The process-wide recorder behind the options proxies."""

    def __init__(self) -> None:
        # threading.Lock may be lockwatch-instrumented when both runtime
        # sanitizers are enabled; either way it is a working lock.
        self._state = threading.Lock()
        self._reads: Dict[Tuple[str, str], int] = {}

    def record(self, stage: str, attr: str) -> None:
        with self._state:
            key = (stage, attr)
            self._reads[key] = self._reads.get(key, 0) + 1

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Observed reads as ``{stage: {field: count}}``."""
        with self._state:
            out: Dict[str, Dict[str, int]] = {}
            for (stage, attr), count in sorted(self._reads.items()):
                out.setdefault(stage, {})[attr] = count
            return out

    def journal_events(self) -> List[Dict[str, object]]:
        """The report as obs-journal events (meta + points)."""
        snap = self.snapshot()
        events: List[Dict[str, object]] = [{
            "type": "meta",
            "label": "keytrace",
            "fingerprint": environment_fingerprint(),
        }]
        total = 0
        for stage in sorted(snap):
            for attr in sorted(snap[stage]):
                count = snap[stage][attr]
                total += count
                events.append({
                    "type": "point",
                    "name": "keytrace.read",
                    "stage": stage,
                    "field": attr,
                    "count": count,
                })
        events.append({
            "type": "point",
            "name": "keytrace.summary",
            "stages": len(snap),
            "fields": sum(len(v) for v in snap.values()),
            "reads": total,
        })
        return events

    def reset(self) -> None:
        with self._state:
            self._reads.clear()


class _TracedOptions:
    """Attribute-recording proxy around one stage's ``FlowOptions``.

    Underscored slot names keep every dataclass field lookup on the
    ``__getattr__`` path; non-field attributes (methods, dunders asked
    for explicitly) pass through to the real object unrecorded.
    """

    __slots__ = ("_keytrace_stage", "_keytrace_target", "_keytrace_rec")

    def __init__(
        self, stage: str, target: FlowOptions, recorder: KeyTrace
    ) -> None:
        self._keytrace_stage = stage
        self._keytrace_target = target
        self._keytrace_rec = recorder

    def __getattr__(self, name: str) -> Any:
        value = getattr(self._keytrace_target, name)
        if name in _FIELD_NAMES:
            self._keytrace_rec.record(self._keytrace_stage, name)
        return value

    def __repr__(self) -> str:
        return (
            f"<keytrace proxy stage={self._keytrace_stage!r} "
            f"of {self._keytrace_target!r}>"
        )


#: The default process-wide trace.
_TRACE = KeyTrace()

#: The recorder new proxies bind to (swapped by :func:`scoped_trace`
#: so tests don't pollute a session-wide report).
_CURRENT = _TRACE


def trace() -> KeyTrace:
    """The currently active :class:`KeyTrace` recorder."""
    return _CURRENT


def enabled() -> bool:
    """True when ``REPRO_KEYTRACE=1`` opts the process in."""
    return os.environ.get(KEYTRACE_ENV, "") == "1"


def traced(stage: str, options: FlowOptions) -> FlowOptions:
    """Wrap ``options`` in a recording proxy for one stage execution.

    The proxy is duck-typed: stage compute functions only ever *read*
    option fields, so it is returned as a ``FlowOptions`` for the
    caller's purposes.
    """
    if isinstance(options, _TracedOptions):
        return options  # idempotent: nested compute paths wrap once
    proxy: Any = _TracedOptions(stage, options, _CURRENT)
    return proxy  # type: ignore[no-any-return]


@contextmanager
def scoped_trace() -> Iterator[KeyTrace]:
    """Route proxies created inside the block into a fresh recorder.

    For tests that run deliberately incoherent stages while a
    session-wide keytrace may be active: the seeded reads land in the
    scoped recorder, not the session report.
    """
    global _CURRENT
    previous = _CURRENT
    scoped = KeyTrace()
    _CURRENT = scoped
    try:
        yield scoped
    finally:
        _CURRENT = previous


def write_report(path: Optional[Path] = None) -> Path:
    """Write the aggregated trace as a keytrace journal.

    An explicit ``path`` (or ``$REPRO_KEYTRACE_OUT``) writes exactly
    there — CI wants a fixed artifact name; otherwise the journal goes
    to the standard journal directory via
    :func:`repro.obs.journal.write_journal`.
    """
    events = _CURRENT.journal_events()
    if path is None:
        out = os.environ.get(KEYTRACE_OUT_ENV, "")
        path = Path(out) if out else None
    if path is None:
        return write_journal(events, label="keytrace")
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True, default=str))
            handle.write("\n")
    return path


def findings_from_keytrace_journal(
    path: Path, model: Optional[Any] = None
) -> List[Finding]:
    """CK005 findings for every out-of-model read in a journal.

    ``model`` is a :class:`repro.check.cachekey.StageKeyModel` (built
    from the working tree when not given).  Raises ``ValueError`` when
    the file is not a keytrace journal (no ``keytrace.summary`` point).
    """
    events = read_journal(path)
    summary = [
        e for e in events if e.get("name") == "keytrace.summary"
    ]
    if not summary:
        raise ValueError(
            f"{path} is not a keytrace journal "
            f"(no keytrace.summary event)"
        )
    if model is None:
        from .cachekey import static_stage_model

        model = static_stage_model()
    findings: List[Finding] = []
    for event in events:
        if event.get("name") != "keytrace.read":
            continue
        stage = str(event.get("stage", "?"))
        attr = str(event.get("field", "?"))
        count = event.get("count", "?")
        if stage not in model.stages:
            findings.append(CK005.finding(
                str(path),
                f"journal records reads of options.{attr} in unknown "
                f"stage {stage!r} (model stages: "
                f"{', '.join(model.stages)})",
            ))
            continue
        if attr not in model.reads.get(stage, frozenset()):
            findings.append(CK005.finding(
                str(path),
                f"stage {stage!r} read options.{attr} at runtime "
                f"({count}x) but the static model never predicted it — "
                f"an unresolved call edge in repro.check.cachekey",
                fix_hint=(
                    "teach the static pass about the call path, or "
                    "stop passing options down it"
                ),
            ))
        covered = model.keyed_chain(stage) | model.perf_knobs
        if attr not in covered:
            findings.append(CK005.finding(
                str(path),
                f"stage {stage!r} read options.{attr} at runtime "
                f"({count}x) but its cache-key chain never includes it "
                f"and it is not a declared perf knob — live cache-key "
                f"incoherence",
                fix_hint=(
                    f"add options.{attr} to stage_cache_key for "
                    f"{stage!r} (or a keyed ancestor), or add it to "
                    f"PERF_KNOBS"
                ),
            ))
    return findings
