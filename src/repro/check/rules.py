"""The rule catalog: every static-analysis rule, in one registry.

A :class:`Rule` is the *description* of one machine-checkable invariant —
id, default severity, which flow stage's artifact it audits, what
invariant it encodes and where in the paper that invariant comes from.
Analyzer functions (:mod:`repro.check.netlist_rules` and friends) cite a
rule by id when they emit findings; registering the rule up front means
``repro check --rules`` can select by id and the SARIF export can carry
tool metadata for rules that produced no findings.

Rule id scheme: a two-letter family prefix plus a 3-digit number —
``NL`` netlist structure, ``LB`` library/realization consistency, ``PK``
packing legality, ``PL`` placement, ``RT`` routing, ``EQ`` equivalence,
``DT`` codebase determinism, ``CC`` codebase concurrency.  A bare
family prefix is itself a valid ``--rules`` selector and expands to
every rule in the family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .findings import Finding, Severity


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule."""

    rule_id: str
    severity: Severity
    stage: str             # "netlist" | "library" | "packing" | ...
    description: str       # the invariant, one line
    paper_ref: str = ""    # figure/section the invariant encodes

    @property
    def family(self) -> str:
        """The two-letter family prefix of the rule id (``NL``, ``CC``)."""
        return self.rule_id[:2]

    def finding(
        self,
        location: str,
        message: str,
        fix_hint: str = "",
        severity: Optional[Severity] = None,
    ) -> Finding:
        """A finding citing this rule (severity defaults to the rule's)."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            location=location,
            message=message,
            fix_hint=fix_hint,
            stage=self.stage,
        )


class RuleRegistry:
    """Rules by id, with stage and id-subset selection."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.rule_id in self._rules:
            raise ValueError(f"duplicate rule id {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(
                f"unknown rule id {rule_id!r} "
                f"(known: {', '.join(sorted(self._rules))})"
            ) from None

    def all(self) -> List[Rule]:
        return [self._rules[k] for k in sorted(self._rules)]

    def for_stage(self, stage: str) -> List[Rule]:
        return [r for r in self.all() if r.stage == stage]

    def stages(self) -> List[str]:
        return sorted({r.stage for r in self._rules.values()})

    def ids(self) -> List[str]:
        return sorted(self._rules)

    def families(self) -> List[str]:
        """Every registered two-letter family prefix, sorted."""
        return sorted({r.family for r in self._rules.values()})

    def for_family(self, family: str) -> List[Rule]:
        return [r for r in self.all() if r.family == family]

    def validate_selection(self, rule_ids: Iterable[str]) -> Set[str]:
        """Resolve a ``--rules`` selection, raising on unknown ids.

        A selector is either a full rule id (``CC001``) or a bare
        two-letter family prefix (``CC``), which expands to every rule
        in that family.
        """
        selected = set()
        for rule_id in rule_ids:
            if rule_id in self._rules:
                selected.add(rule_id)
                continue
            family = [
                r.rule_id for r in self._rules.values()
                if r.family == rule_id
            ]
            if family:
                selected.update(family)
                continue
            self.get(rule_id)  # raises with the known-id list
        return selected


#: The process-wide registry every analyzer module registers into.
REGISTRY = RuleRegistry()


def rule(
    rule_id: str,
    severity: Severity,
    stage: str,
    description: str,
    paper_ref: str = "",
) -> Rule:
    """Register one rule in the global registry (import-time)."""
    return REGISTRY.register(
        Rule(rule_id=rule_id, severity=severity, stage=stage,
             description=description, paper_ref=paper_ref)
    )


def filter_findings(
    findings: Sequence[Finding],
    rule_ids: Optional[Set[str]] = None,
) -> List[Finding]:
    """Keep only findings whose rule id is in ``rule_ids`` (None = all)."""
    if rule_ids is None:
        return list(findings)
    return [f for f in findings if f.rule_id in rule_ids]
