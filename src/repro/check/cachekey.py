"""Cache-key coherence and stage-purity analysis (family ``CK``).

Every scaling layer added since PR 3 — the content-addressed stage
cache, scheduler-level stage dedup, serve-side request coalescing and
warm drain/resume — rests on two hand-maintained contracts: each
stage's key in ``flow.py:stage_cache_key`` lists *exactly* the
:class:`~repro.flow.options.FlowOptions` fields that stage reads, and
stage compute is pure (no ambient env/clock/RNG/global/file reads).
This pass makes both contracts machine-checked, the way the source
paper proves PLB coverage by exhaustively enumerating the 256 3-input
functions: it enumerates every options-attribute read reachable from
``compute_stage``'s per-stage entry points and diffs the result against
the literal field lists in the key builder.

``CK001``
    A field read by a stage (directly or through the call graph along
    edges where the options object is passed) but missing from that
    stage's key *chain* is a stale-cache / wrong-coalesce hazard: two
    runs differing only in that field would share a cache entry.
``CK002``
    The converse drifts too: a key component the stage never reads
    causes spurious invalidation, and an options field neither read nor
    keyed anywhere is dead configuration silently accepted by the job
    API.
``CK003``
    Impure reads in stage-reachable code — ``os.environ``, wall-clock
    calls, module-level ``random``, mutable module globals written by a
    *different* function, file reads outside the stage cache — break
    the purity that makes caching and cross-process scheduling sound.
    Documented bit-identical knobs carry ``# check: allow(CK003)``.
``CK004``
    :data:`repro.flow.options.PERF_KNOBS` is the single source of truth
    for result-neutral fields; it must stay consistent with the key
    builders, ``request_key``'s documented contract, and the serve
    layer's submittable/exempt lists.

Findings on deliberate, justified sites are suppressed with an inline
``# check: allow(CKnnn)`` comment, same as the DT and CC families.  The
static read-sets are validated against *observed* executions by the
runtime tracer in :mod:`repro.check.keytrace` (rule ``CK005``).

Scope and soundness: the read-set analysis follows calls where the
options object is passed as a whole (positionally or by keyword) and
records attribute reads through any tainted local name; extracting a
field's *value* and passing it on ends the taint, by design — the read
happened at the extraction site.  The purity pass follows all
resolvable calls (module functions, imported symbols, ``self.m()``,
constructor-bound locals) from the same entry points.  ``repro.check``
and ``repro.obs`` are outside the model (the analyzer itself, and a
tracing layer that is bit-identical by design); the cache module is
exempt from CK003 because its file I/O *is* the content-addressed
boundary under audit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from .findings import Finding, Severity
from .rules import Rule, rule
from .selflint import default_lint_root, suppressed_lines

CK001 = rule(
    "CK001", Severity.ERROR, "self",
    "every options field a stage reads must be in its key chain",
)
CK002 = rule(
    "CK002", Severity.WARNING, "self",
    "no never-read key components and no dead options fields",
)
CK003 = rule(
    "CK003", Severity.ERROR, "self",
    "no ambient reads (env/clock/RNG/globals/files) in stage code",
)
CK004 = rule(
    "CK004", Severity.ERROR, "self",
    "PERF_KNOBS agrees with key builders and the serve lists",
)

#: Top-level subpackages excluded from the call model: ``check`` is the
#: analyzer itself; ``obs`` is bit-identical by design (every API is a
#: no-op unless tracing is on, and traced runs equal untraced runs).
_EXCLUDED_PARTS = ("check", "obs")

#: Module stems exempt from CK003: the stage cache's file I/O *is* the
#: content-addressed boundary, not an ambient input.
_IMPURITY_EXEMPT_STEMS = ("cache",)

#: Wall-clock callables as (owner, attribute).
_CLOCK_CALLS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("time", "strftime"), ("time", "localtime"),
    ("time", "gmtime"), ("time", "time_ns"), ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "today"), ("datetime", "utcnow"),
    ("date", "today"),
}

#: Shared-state ``random.*`` functions (the module-level global RNG).
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "getrandbits", "betavariate",
    "expovariate", "normalvariate", "seed",
}

#: Attribute calls that read files.
_FILE_READ_ATTRS = {"read_text", "read_bytes"}

#: ``g.<mutator>()`` calls treated as writes to ``g``.
_MUTATOR_ATTRS = {
    "append", "extend", "insert", "pop", "popitem", "remove", "clear",
    "update", "add", "discard", "setdefault", "appendleft", "popleft",
}

#: Constructor names whose module-level result is a mutable container.
_MUTABLE_FACTORIES = {
    "dict", "list", "set", "defaultdict", "deque", "OrderedDict",
    "Counter",
}


@dataclass
class _FnInfo:
    """One analyzable function or method."""

    qualname: str              # "mod:func" or "mod:Cls.method"
    module: str
    cls: Optional[str]
    name: str
    filename: str
    lineno: int
    node: ast.FunctionDef
    params: List[str] = field(default_factory=list)


@dataclass
class _Entry:
    """One ``compute_stage`` dispatch branch: stage -> compute call."""

    stage: str
    module: str
    call: ast.Call
    options_name: str
    lineno: int


@dataclass
class _ModuleInfo:
    """Per-module import tables and mutable module-level globals."""

    name: str
    filename: str
    source: str
    imports_mod: Dict[str, str] = field(default_factory=dict)
    imports_sym: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    mutable_globals: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class StageKeyModel:
    """The statically derived cache-key contract, for external audits.

    ``reads`` maps each stage to the options fields its entry point
    reaches transitively; ``keyed`` to the fields its
    ``stage_cache_key`` branch hashes.  :mod:`repro.check.keytrace`
    audits observed executions against this model (CK005).
    """

    fields: FrozenSet[str]
    perf_knobs: FrozenSet[str]
    stages: Tuple[str, ...]
    keyed: Dict[str, FrozenSet[str]]
    reads: Dict[str, FrozenSet[str]]
    parents: Dict[str, Optional[str]]

    def keyed_chain(self, stage: str) -> FrozenSet[str]:
        """Fields keyed by ``stage`` or any ancestor in the chain."""
        out: Set[str] = set()
        cursor: Optional[str] = stage
        seen: Set[str] = set()
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            out |= self.keyed.get(cursor, frozenset())
            cursor = self.parents.get(cursor)
        return frozenset(out)


def _pos_params(fn: ast.FunctionDef) -> List[str]:
    args = fn.args
    return [a.arg for a in list(args.posonlyargs) + list(args.args)]


def _all_params(fn: ast.FunctionDef) -> List[ast.arg]:
    args = fn.args
    return (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1]
    return None


def _options_param(fn: ast.FunctionDef) -> str:
    """The parameter carrying the FlowOptions object, by annotation or
    by the conventional name ``options``."""
    for arg in _all_params(fn):
        if _annotation_name(arg.annotation) == "FlowOptions":
            return arg.arg
    for arg in _all_params(fn):
        if arg.arg == "options":
            return arg.arg
    return "options"


def _stage_eq(test: ast.expr) -> Optional[str]:
    """``stage == "name"`` comparisons in dispatch/key-builder code."""
    if not isinstance(test, ast.Compare):
        return None
    if len(test.ops) != 1 or not isinstance(test.ops[0], ast.Eq):
        return None
    left, right = test.left, test.comparators[0]
    if isinstance(left, ast.Name) and left.id == "stage":
        if isinstance(right, ast.Constant) and isinstance(right.value, str):
            return right.value
    return None


def _const_str_seq(node: ast.AST) -> Optional[List[str]]:
    """A literal tuple/list/set of strings, or None."""
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else None
        if name in ("frozenset", "tuple", "set", "list") and node.args:
            return _const_str_seq(node.args[0])
        return None
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    out: List[str] = []
    for elt in node.elts:
        if not isinstance(elt, ast.Constant):
            return None
        if not isinstance(elt.value, str):
            return None
        out.append(elt.value)
    return out


def _const_parent_map(node: ast.AST) -> Optional[Dict[str, Optional[str]]]:
    """A literal ``{str: str|None}`` dict, or None."""
    if not isinstance(node, ast.Dict):
        return None
    out: Dict[str, Optional[str]] = {}
    for key, value in zip(node.keys, node.values):
        if not isinstance(key, ast.Constant):
            return None
        if not isinstance(key.value, str):
            return None
        if not isinstance(value, ast.Constant):
            return None
        if value.value is not None and not isinstance(value.value, str):
            return None
        out[key.value] = value.value
    return out


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES
    return False


class _Model:
    """The whole-program model the CK findings are computed from."""

    def __init__(self) -> None:
        self.modules: Dict[str, _ModuleInfo] = {}
        self.functions: Dict[str, _FnInfo] = {}
        self.by_bare: Dict[str, str] = {}
        #: class name -> method name -> function qualname.
        self.classes: Dict[str, Dict[str, str]] = {}
        # -- anchors -----------------------------------------------------
        self.options_fields: List[Tuple[str, int]] = []
        self.options_file: Optional[str] = None
        self.perf_knobs: Optional[Set[str]] = None
        self.perf_knobs_site: Optional[Tuple[str, int]] = None
        self.stages: List[str] = []
        self.key_parent: Dict[str, Optional[str]] = {}
        #: stage -> options field -> first keyed-read lineno.
        self.keyed: Dict[str, Dict[str, int]] = {}
        self.key_file: Optional[str] = None
        self.entries: Dict[str, _Entry] = {}
        self.request_key_doc: Optional[str] = None
        self.request_key_site: Optional[Tuple[str, int]] = None
        self.submittable_knobs: Optional[Set[str]] = None
        self.submittable_knobs_site: Optional[Tuple[str, int]] = None
        self.submittable_options: Optional[Set[str]] = None
        self.submittable_options_site: Optional[Tuple[str, int]] = None

    # -- phase 1: declaration scan -------------------------------------

    def add_module(
        self, source: str, filename: str, modname: Optional[str] = None
    ) -> Optional[Finding]:
        """Parse one module and fold its declarations in."""
        name = modname if modname is not None else Path(filename).stem
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            return CK004.finding(
                f"{filename}:{exc.lineno or 0}",
                f"not parseable: {exc.msg}",
            )
        info = _ModuleInfo(name=name, filename=filename, source=source)
        self.modules[name] = info
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    info.imports_mod[alias.asname or alias.name] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom):
                target = self._resolve_from(name, node)
                for alias in node.names:
                    local = alias.asname or alias.name
                    info.imports_sym[local] = (target, alias.name)
            elif isinstance(node, ast.Assign):
                self._scan_global(
                    info, node,
                    [t.id for t in node.targets
                     if isinstance(t, ast.Name)],
                    node.value,
                )
            elif isinstance(node, ast.AnnAssign):
                # Annotated module globals (STAGE_KEY_PARENT and
                # friends carry type annotations).
                if isinstance(node.target, ast.Name) and (
                    node.value is not None
                ):
                    self._scan_global(
                        info, node, [node.target.id], node.value,
                    )
            elif isinstance(node, ast.ClassDef):
                self._add_class(info, node)
            elif isinstance(node, ast.FunctionDef):
                self._add_function(info, node)
        return None

    @staticmethod
    def _resolve_from(module: str, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        parts = module.split(".")
        base = parts[:-node.level] if node.level <= len(parts) else []
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def _scan_global(
        self,
        info: _ModuleInfo,
        node: ast.stmt,
        names: List[str],
        value: ast.expr,
    ) -> None:
        if not names:
            return
        name = names[0]
        site = (info.filename, node.lineno)
        if name == "STAGES" and not self.stages:
            self.stages = _const_str_seq(value) or []
            return
        if name == "STAGE_KEY_PARENT" and not self.key_parent:
            self.key_parent = _const_parent_map(value) or {}
            return
        if name == "PERF_KNOBS" and self.perf_knobs is None:
            seq = _const_str_seq(value)
            if seq is not None:
                self.perf_knobs = set(seq)
                self.perf_knobs_site = site
            return
        if (
            name == "_SUBMITTABLE_PERF_KNOBS"
            and self.submittable_knobs is None
        ):
            seq = _const_str_seq(value)
            if seq is not None:
                self.submittable_knobs = set(seq)
                self.submittable_knobs_site = site
            return
        if (
            name == "_SUBMITTABLE_OPTIONS"
            and self.submittable_options is None
        ):
            seq = _const_str_seq(value)
            if seq is not None:
                self.submittable_options = set(seq)
                self.submittable_options_site = site
            return
        if _is_mutable_literal(value):
            for target in names:
                info.mutable_globals.setdefault(target, node.lineno)

    def _add_class(self, info: _ModuleInfo, node: ast.ClassDef) -> None:
        if node.name == "FlowOptions" and not self.options_fields:
            self.options_file = info.filename
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if not stmt.target.id.startswith("_"):
                        self.options_fields.append(
                            (stmt.target.id, stmt.lineno)
                        )
        methods = self.classes.setdefault(node.name, {})
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            qualname = f"{info.name}:{node.name}.{item.name}"
            self.functions[qualname] = _FnInfo(
                qualname=qualname, module=info.name, cls=node.name,
                name=item.name, filename=info.filename,
                lineno=item.lineno, node=item, params=_pos_params(item),
            )
            methods.setdefault(item.name, qualname)

    def _add_function(
        self, info: _ModuleInfo, node: ast.FunctionDef
    ) -> None:
        qualname = f"{info.name}:{node.name}"
        self.functions[qualname] = _FnInfo(
            qualname=qualname, module=info.name, cls=None,
            name=node.name, filename=info.filename, lineno=node.lineno,
            node=node, params=_pos_params(node),
        )
        self.by_bare.setdefault(node.name, qualname)
        if node.name == "stage_cache_key":
            self._scan_key_builder(info, node)
        elif node.name == "compute_stage":
            self._scan_dispatch(info, node)
        elif node.name == "request_key":
            self.request_key_doc = ast.get_docstring(node) or ""
            self.request_key_site = (info.filename, node.lineno)

    def _scan_key_builder(
        self, info: _ModuleInfo, fn: ast.FunctionDef
    ) -> None:
        """Extract keyed(S): options fields hashed per stage branch."""
        if self.key_file is not None:
            return
        self.key_file = info.filename
        opts = _options_param(fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            stage = _stage_eq(node.test)
            if stage is None:
                continue
            reads: Dict[str, int] = {}
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == opts
                    ):
                        reads.setdefault(sub.attr, sub.lineno)
            self.keyed.setdefault(stage, reads)

    def _scan_dispatch(
        self, info: _ModuleInfo, fn: ast.FunctionDef
    ) -> None:
        """Extract per-stage entry calls from ``compute_stage``."""
        opts = _options_param(fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            stage = _stage_eq(node.test)
            if stage is None:
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Return) and isinstance(
                        sub.value, ast.Call
                    ):
                        self.entries.setdefault(stage, _Entry(
                            stage=stage, module=info.name,
                            call=sub.value, options_name=opts,
                            lineno=sub.value.lineno,
                        ))
                        break

    # -- call resolution -----------------------------------------------

    def _function(self, qualname: Optional[str]) -> Optional[_FnInfo]:
        if qualname is None:
            return None
        return self.functions.get(qualname)

    def _resolve_name(
        self, module: str, name: str
    ) -> Tuple[Optional[_FnInfo], Optional[str]]:
        """Resolve a bare-name call to (function, constructed class)."""
        local = self._function(f"{module}:{name}")
        if local is not None:
            return local, None
        mod = self.modules.get(module)
        if mod is not None and name in mod.imports_sym:
            tmod, sym = mod.imports_sym[name]
            target = self._function(f"{tmod}:{sym}")
            if target is not None:
                return target, None
            if sym in self.classes:
                ctor = self._function(self.classes[sym].get("__init__"))
                return ctor, sym
        if name in self.classes:
            ctor = self._function(self.classes[name].get("__init__"))
            if ctor is not None:
                return ctor, name
        return self._function(self.by_bare.get(name)), None

    def _local_class_bindings(self, info: _FnInfo) -> Dict[str, str]:
        """Locals bound to constructor calls: ``placer = Annealing...``."""
        out: Dict[str, str] = {}
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            fn = node.value.func
            if not isinstance(fn, ast.Name):
                continue
            _target, cls = self._resolve_name(info.module, fn.id)
            if cls is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.setdefault(target.id, cls)
        return out

    def _call_target(
        self,
        info: _FnInfo,
        call: ast.Call,
        bindings: Dict[str, str],
    ) -> Tuple[Optional[_FnInfo], int]:
        """Resolve one call; returns (callee, positional offset)."""
        fn = call.func
        if isinstance(fn, ast.Name):
            target, cls = self._resolve_name(info.module, fn.id)
            return target, 1 if cls is not None else 0
        if not isinstance(fn, ast.Attribute):
            return None, 0
        owner = fn.value
        if isinstance(owner, ast.Name):
            if owner.id == "self" and info.cls is not None:
                methods = self.classes.get(info.cls, {})
                return self._function(methods.get(fn.attr)), 1
            if owner.id in bindings:
                methods = self.classes.get(bindings[owner.id], {})
                return self._function(methods.get(fn.attr)), 1
            mod = self.modules.get(info.module)
            if mod is not None:
                alias = mod.imports_mod.get(owner.id)
                if alias is not None and alias in self.modules:
                    return self._function(f"{alias}:{fn.attr}"), 0
                if owner.id in mod.imports_sym:
                    tmod, sym = mod.imports_sym[owner.id]
                    sub = f"{tmod}.{sym}" if tmod else sym
                    if sub in self.modules:
                        return self._function(f"{sub}:{fn.attr}"), 0
        return None, 0

    def _tainted_callee_params(
        self,
        callee: _FnInfo,
        offset: int,
        call: ast.Call,
        tainted: Set[str],
    ) -> FrozenSet[str]:
        """Callee params that receive a tainted name at this call."""
        out: Set[str] = set()
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and arg.id in tainted:
                slot = index + offset
                if slot < len(callee.params):
                    out.add(callee.params[slot])
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            value = keyword.value
            if isinstance(value, ast.Name) and value.id in tainted:
                out.add(keyword.arg)
        return frozenset(out)

    # -- phase 2: per-stage options read-sets --------------------------

    def _taint_scan(
        self, info: _FnInfo, tainted: FrozenSet[str]
    ) -> Tuple[
        Dict[str, Tuple[str, int]],
        List[Tuple[_FnInfo, FrozenSet[str]]],
    ]:
        """Attribute reads through tainted names, plus tainted calls."""
        names: Set[str] = set(tainted)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Name
            ):
                if node.value.id in names:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        bindings = self._local_class_bindings(info)
        reads: Dict[str, Tuple[str, int]] = {}
        edges: List[Tuple[_FnInfo, FrozenSet[str]]] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in names
                    and isinstance(node.ctx, ast.Load)
                ):
                    reads.setdefault(
                        node.attr, (info.filename, node.lineno)
                    )
            elif isinstance(node, ast.Call):
                callee, offset = self._call_target(info, node, bindings)
                if callee is None:
                    continue
                passed = self._tainted_callee_params(
                    callee, offset, node, names
                )
                if passed:
                    edges.append((callee, passed))
        return reads, edges

    def stage_reads(self) -> Dict[str, Dict[str, Tuple[str, int]]]:
        """Per stage: options field -> first witness read site."""
        out: Dict[str, Dict[str, Tuple[str, int]]] = {}
        for stage in sorted(self.entries):
            entry = self.entries[stage]
            reads: Dict[str, Tuple[str, int]] = {}
            seeds: List[Tuple[_FnInfo, FrozenSet[str]]] = []
            fake = self.functions.get(f"{entry.module}:compute_stage")
            if fake is not None:
                callee, offset = self._call_target(fake, entry.call, {})
                if callee is not None:
                    passed = self._tainted_callee_params(
                        callee, offset, entry.call,
                        {entry.options_name},
                    )
                    if passed:
                        seeds.append((callee, passed))
            visited: Set[Tuple[str, FrozenSet[str]]] = set()
            stack = list(seeds)
            while stack:
                info, tainted = stack.pop()
                key = (info.qualname, tainted)
                if key in visited:
                    continue
                visited.add(key)
                found, edges = self._taint_scan(info, tainted)
                for attr, site in found.items():
                    reads.setdefault(attr, site)
                stack.extend(edges)
            out[stage] = reads
        return out

    # -- phase 3: full reachability (for CK003) ------------------------

    def reachable_functions(self) -> List[_FnInfo]:
        """Functions reachable from any stage entry via resolvable
        calls (constructor calls reach ``__init__`` and any method
        invoked on a constructor-bound local)."""
        stack: List[_FnInfo] = []
        for stage in sorted(self.entries):
            entry = self.entries[stage]
            fake = self.functions.get(f"{entry.module}:compute_stage")
            if fake is None:
                continue
            callee, _offset = self._call_target(fake, entry.call, {})
            if callee is not None:
                stack.append(callee)
        seen: Dict[str, _FnInfo] = {}
        while stack:
            info = stack.pop()
            if info.qualname in seen:
                continue
            seen[info.qualname] = info
            bindings = self._local_class_bindings(info)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee, _offset = self._call_target(
                    info, node, bindings
                )
                if callee is not None:
                    stack.append(callee)
        return sorted(
            seen.values(), key=lambda f: (f.filename, f.lineno)
        )

    # -- phase 4: purity scan ------------------------------------------

    def _impure_sites(self, info: _FnInfo) -> List[Tuple[int, str]]:
        """Ambient-input reads inside one function body."""
        sites: List[Tuple[int, str]] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "os"
                    and node.attr == "environ"
                ):
                    sites.append((node.lineno, "os.environ read"))
                continue
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if isinstance(fn, ast.Name):
                if fn.id == "open":
                    sites.append((node.lineno, "file I/O open()"))
                elif fn.id == "getenv":
                    sites.append((node.lineno, "os.getenv() read"))
                continue
            if not isinstance(fn, ast.Attribute):
                continue
            owner = fn.value
            owner_name = owner.id if isinstance(owner, ast.Name) else (
                owner.attr if isinstance(owner, ast.Attribute) else None
            )
            if owner_name == "os" and fn.attr == "getenv":
                sites.append((node.lineno, "os.getenv() read"))
            elif (
                owner_name is not None
                and (owner_name, fn.attr) in _CLOCK_CALLS
            ):
                sites.append((
                    node.lineno,
                    f"wall-clock {owner_name}.{fn.attr}()",
                ))
            elif owner_name == "random" and fn.attr in _GLOBAL_RANDOM_FNS:
                sites.append((
                    node.lineno, f"global RNG random.{fn.attr}()",
                ))
            elif fn.attr in _FILE_READ_ATTRS:
                sites.append((
                    node.lineno, f"file I/O .{fn.attr}()",
                ))
        return sites

    def _global_usage(
        self, info: _FnInfo
    ) -> Tuple[List[Tuple[str, int]], Set[str]]:
        """(mutable-global reads, mutable globals mutated) in ``info``."""
        mutable = self.modules[info.module].mutable_globals
        if not mutable:
            return [], set()
        reads: List[Tuple[str, int]] = []
        mutated: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    base: ast.expr = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if (
                        base is not target
                        and isinstance(base, ast.Name)
                        and base.id in mutable
                    ):
                        mutated.add(base.id)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                owner = node.func.value
                if (
                    isinstance(owner, ast.Name)
                    and owner.id in mutable
                    and node.func.attr in _MUTATOR_ATTRS
                ):
                    mutated.add(owner.id)
            elif isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load) and node.id in mutable:
                    reads.append((node.id, node.lineno))
        return reads, mutated

    def _global_mutators(self) -> Dict[Tuple[str, str], Set[str]]:
        """(module, global) -> qualnames of functions that mutate it."""
        out: Dict[Tuple[str, str], Set[str]] = {}
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            if info.module not in self.modules:
                continue
            _reads, mutated = self._global_usage(info)
            for name in mutated:
                out.setdefault((info.module, name), set()).add(qualname)
        return out

    # -- phase 5: findings ---------------------------------------------

    def has_stage_model(self) -> bool:
        return bool(self.options_fields and self.keyed and self.entries)

    def _stage_list(self) -> List[str]:
        if self.stages:
            return list(self.stages)
        return sorted(set(self.keyed) | set(self.entries))

    def _parents(self) -> Dict[str, Optional[str]]:
        if self.key_parent:
            return dict(self.key_parent)
        return {stage: None for stage in self._stage_list()}

    def keyed_chain(self, stage: str) -> Set[str]:
        parents = self._parents()
        out: Set[str] = set()
        cursor: Optional[str] = stage
        seen: Set[str] = set()
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            out |= set(self.keyed.get(cursor, {}))
            cursor = parents.get(cursor)
        return out

    def findings(self) -> List[Finding]:
        hits: List[Tuple[Rule, str, int, str, str]] = []
        if self.has_stage_model():
            reads = self.stage_reads()
            self._find_key_drift(reads, hits)
            self._find_dead_config(reads, hits)
            self._find_knob_drift(hits)
        if self.entries:
            self._find_impurity(hits)
        return self._filtered(hits)

    def _filtered(
        self, hits: List[Tuple[Rule, str, int, str, str]]
    ) -> List[Finding]:
        allowed_by_file = {
            info.filename: suppressed_lines(info.source)
            for info in self.modules.values()
        }
        findings: List[Finding] = []
        for rule_obj, filename, lineno, message, hint in sorted(
            hits, key=lambda h: (h[1], h[2], h[0].rule_id, h[3])
        ):
            allowed = allowed_by_file.get(filename, {})
            if rule_obj.rule_id in allowed.get(lineno, ()):
                continue
            findings.append(rule_obj.finding(
                f"{filename}:{lineno}", message, fix_hint=hint,
            ))
        return findings

    def _find_key_drift(
        self,
        reads: Dict[str, Dict[str, Tuple[str, int]]],
        hits: List[Tuple[Rule, str, int, str, str]],
    ) -> None:
        fields = {name for name, _lineno in self.options_fields}
        knobs = self.perf_knobs or set()
        key_file = self.key_file or "<unknown>"
        for stage in self._stage_list():
            chain = self.keyed_chain(stage)
            for attr in sorted(reads.get(stage, {})):
                filename, lineno = reads[stage][attr]
                if attr not in fields or attr in knobs:
                    continue
                if attr in chain:
                    continue
                hits.append((
                    CK001, filename, lineno,
                    f"stage {stage!r} reads options.{attr} but its key "
                    f"chain never includes it; cached results go stale "
                    f"when {attr} changes",
                    f"hash options.{attr} in the {stage!r} branch of "
                    f"stage_cache_key (or add it to PERF_KNOBS if it "
                    f"provably never changes results)",
                ))
            stage_reads = set(reads.get(stage, {}))
            for attr in sorted(self.keyed.get(stage, {})):
                if attr in stage_reads:
                    continue
                lineno = self.keyed[stage][attr]
                hits.append((
                    CK002, key_file, lineno,
                    f"key component options.{attr} of stage {stage!r} "
                    f"is never read by the stage; every change "
                    f"invalidates its cache for nothing",
                    f"drop options.{attr} from the {stage!r} key or "
                    f"make the stage honor it",
                ))

    def _find_dead_config(
        self,
        reads: Dict[str, Dict[str, Tuple[str, int]]],
        hits: List[Tuple[Rule, str, int, str, str]],
    ) -> None:
        knobs = self.perf_knobs or set()
        all_reads: Set[str] = set()
        for stage_reads in reads.values():
            all_reads |= set(stage_reads)
        all_keyed: Set[str] = set()
        for keyed in self.keyed.values():
            all_keyed |= set(keyed)
        options_file = self.options_file or "<unknown>"
        for name, lineno in self.options_fields:
            if name in knobs or name in all_reads or name in all_keyed:
                continue
            hits.append((
                CK002, options_file, lineno,
                f"options field {name!r} is neither read by any stage "
                f"nor part of any stage key (dead config the job API "
                f"still accepts)",
                f"plumb options.{name} into the stage that should "
                f"honor it and key it there, or delete the field",
            ))

    def _find_knob_drift(
        self, hits: List[Tuple[Rule, str, int, str, str]]
    ) -> None:
        fields = {name for name, _lineno in self.options_fields}
        options_file = self.options_file or "<unknown>"
        if self.perf_knobs is None:
            hits.append((
                CK004, options_file, 1,
                "no PERF_KNOBS frozenset literal found alongside "
                "FlowOptions; the perf-knob contract has no single "
                "source of truth",
                "define PERF_KNOBS = frozenset({...}) next to the "
                "options dataclass",
            ))
            return
        knobs_file, knobs_lineno = self.perf_knobs_site or (
            options_file, 1,
        )
        for name in sorted(self.perf_knobs - fields):
            hits.append((
                CK004, knobs_file, knobs_lineno,
                f"PERF_KNOBS names {name!r}, which is not a "
                f"FlowOptions field",
                "remove the stale name or add the field",
            ))
        key_file = self.key_file or "<unknown>"
        for stage in self._stage_list():
            for attr in sorted(self.keyed.get(stage, {})):
                if attr not in self.perf_knobs:
                    continue
                hits.append((
                    CK004, key_file, self.keyed[stage][attr],
                    f"declared perf knob options.{attr} participates "
                    f"in the {stage!r} stage key; PERF_KNOBS promises "
                    f"it never changes results, the key says it does",
                    f"either un-declare {attr!r} or stop keying it",
                ))
        if self.submittable_knobs is not None:
            site = self.submittable_knobs_site or (options_file, 1)
            for name in sorted(self.submittable_knobs - self.perf_knobs):
                hits.append((
                    CK004, site[0], site[1],
                    f"serve re-admits {name!r} as a perf knob, but it "
                    f"is not in PERF_KNOBS",
                    "keep _SUBMITTABLE_PERF_KNOBS a subset of "
                    "PERF_KNOBS",
                ))
        if self.submittable_options is not None:
            expected = (fields - self.perf_knobs - {"arch"}) | (
                self.submittable_knobs or set()
            )
            if self.submittable_options != expected:
                site = self.submittable_options_site or (
                    options_file, 1,
                )
                extra = sorted(self.submittable_options - expected)
                missing = sorted(expected - self.submittable_options)
                hits.append((
                    CK004, site[0], site[1],
                    f"hand-listed _SUBMITTABLE_OPTIONS drifted from "
                    f"the derived contract (unexpected: {extra}, "
                    f"missing: {missing})",
                    "derive the tuple from dataclasses.fields("
                    "FlowOptions) and PERF_KNOBS",
                ))
        if (
            self.request_key_site is not None
            and self.request_key_doc is not None
            and "PERF_KNOBS" not in self.request_key_doc
        ):
            hits.append((
                CK004, self.request_key_site[0],
                self.request_key_site[1],
                "request_key's documented exclusion contract does not "
                "reference PERF_KNOBS; hand-listed knob names drift "
                "(the 'check' knob was once omitted exactly this way)",
                "cite repro.flow.options.PERF_KNOBS instead of "
                "listing knob names",
            ))

    def _find_impurity(
        self, hits: List[Tuple[Rule, str, int, str, str]]
    ) -> None:
        mutators = self._global_mutators()
        for info in self.reachable_functions():
            stem = info.module.rsplit(".", 1)[-1]
            if stem in _IMPURITY_EXEMPT_STEMS:
                continue
            for lineno, detail in self._impure_sites(info):
                hits.append((
                    CK003, info.filename, lineno,
                    f"{detail} in stage-reachable {info.qualname}; "
                    f"ambient inputs are invisible to the stage cache "
                    f"key, so cached and fresh runs can diverge",
                    "thread the value through FlowOptions (and key "
                    "it), or justify with # check: allow(CK003)",
                ))
            reads, own_mutations = self._global_usage(info)
            reported: Set[str] = set()
            for name, lineno in reads:
                if name in own_mutations or name in reported:
                    continue
                writers = mutators.get((info.module, name), set())
                if not writers - {info.qualname}:
                    continue
                reported.add(name)
                writer = sorted(writers - {info.qualname})[0]
                hits.append((
                    CK003, info.filename, lineno,
                    f"stage-reachable {info.qualname} reads mutable "
                    f"module global {name!r}, which {writer} mutates; "
                    f"its content is ambient state the stage key "
                    f"cannot see",
                    "capture the content in the stage key or justify "
                    "with # check: allow(CK003)",
                ))

    # -- public model --------------------------------------------------

    def stage_model(self) -> Optional[StageKeyModel]:
        if not self.has_stage_model():
            return None
        reads = self.stage_reads()
        fields = frozenset(
            name for name, _lineno in self.options_fields
        )
        return StageKeyModel(
            fields=fields,
            perf_knobs=frozenset(self.perf_knobs or set()),
            stages=tuple(self._stage_list()),
            keyed={
                stage: frozenset(keyed)
                for stage, keyed in self.keyed.items()
            },
            reads={
                stage: frozenset(set(found) & fields)
                for stage, found in reads.items()
            },
            parents=self._parents(),
        )


def _module_name(path: Path, root: Path) -> str:
    try:
        relative = path.relative_to(root)
    except ValueError:
        return path.stem
    parts = list(relative.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def _model_files(roots: List[Path]) -> List[Tuple[Path, str]]:
    out: List[Tuple[Path, str]] = []
    for root in roots:
        if root.is_file():
            out.append((root, root.stem))
            continue
        for path in sorted(root.rglob("*.py")):
            relative = path.relative_to(root)
            if any(
                part in _EXCLUDED_PARTS for part in relative.parts
            ):
                continue
            out.append((path, _module_name(path, root)))
    return out


def _build_model(paths: Optional[Iterable[Path]]) -> Tuple[
    _Model, List[Finding]
]:
    roots = [Path(p) for p in paths] if paths else [default_lint_root()]
    model = _Model()
    findings: List[Finding] = []
    for path, modname in _model_files(roots):
        source = path.read_text(encoding="utf-8")
        parse_error = model.add_module(source, str(path), modname)
        if parse_error is not None:
            findings.append(parse_error)
    return model, findings


def analyze_source(
    source: str, filename: str = "<string>"
) -> List[Finding]:
    """Run the CK analysis over one module's source text.

    Single-module fixtures must carry their own anchors (a FlowOptions
    dataclass, ``stage_cache_key``, ``compute_stage``); the rule family
    is whole-program, so a module without them yields no key findings.
    """
    model = _Model()
    parse_error = model.add_module(source, filename)
    if parse_error is not None:
        return [parse_error]
    return model.findings()


def analyze_cache_keys(
    paths: Optional[Iterable[Path]] = None,
) -> List[Finding]:
    """Run the CK analysis whole-program over ``paths``.

    Defaults to the installed ``repro`` package, mirroring
    :func:`repro.check.selflint.lint_paths`; ``repro.check`` and
    ``repro.obs`` are excluded from the model by construction.
    """
    model, findings = _build_model(paths)
    findings.extend(model.findings())
    return findings


def static_stage_model(
    paths: Optional[Iterable[Path]] = None,
) -> Optional[StageKeyModel]:
    """The static key/read contract, for the CK005 runtime audit."""
    model, _findings = _build_model(paths)
    return model.stage_model()
