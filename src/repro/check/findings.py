"""Findings: the structured output of every static analyzer.

A :class:`Finding` is one rule violation — rule id, severity, a
human-readable location inside the artifact being checked, the message,
and an optional fix hint.  Analyzers never print or raise; they return
findings, and callers decide (by severity) whether to report, warn, or
abort.  A :class:`Report` aggregates findings across analyzers and
renders them as text, JSON, or SARIF 2.1.0 (the interchange format CI
annotation tooling consumes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Finding severity; ordering supports threshold filtering."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r} (choices: info, warning, error)"
            ) from None


#: SARIF result levels per severity.
_SARIF_LEVEL = {Severity.INFO: "note", Severity.WARNING: "warning",
                Severity.ERROR: "error"}


@dataclass(frozen=True)
class Finding:
    """One rule violation in one artifact."""

    rule_id: str
    severity: Severity
    location: str          # e.g. "net n_42", "plb (3,1)", "flow.py:120"
    message: str
    fix_hint: str = ""
    stage: str = ""        # flow stage / analyzer family that produced it

    def format(self) -> str:
        hint = f"  (fix: {self.fix_hint})" if self.fix_hint else ""
        return (
            f"[{self.severity.label:7s}] {self.rule_id} {self.location}: "
            f"{self.message}{hint}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.label,
            "stage": self.stage,
            "location": self.location,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


class Report:
    """An ordered collection of findings with severity-aware queries."""

    def __init__(self, findings: Optional[Iterable[Finding]] = None) -> None:
        self.findings: List[Finding] = list(findings or ())

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def __bool__(self) -> bool:
        return bool(self.findings)

    def at_least(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity >= severity]

    @property
    def errors(self) -> List[Finding]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    def by_rule(self) -> Dict[str, List[Finding]]:
        out: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            out.setdefault(finding.rule_id, []).append(finding)
        return out

    def counts(self) -> Dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len([f for f in self.findings
                         if f.severity == Severity.INFO]),
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format(self) -> str:
        if not self.findings:
            return "no findings"
        lines = [f.format() for f in sorted(
            self.findings,
            key=lambda f: (-int(f.severity), f.rule_id, f.location),
        )]
        counts = self.counts()
        lines.append(
            f"{len(self.findings)} findings "
            f"({counts['error']} error, {counts['warning']} warning, "
            f"{counts['info']} info)"
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "counts": self.counts(),
        }

    def to_sarif(self, rules: Sequence[Any] = ()) -> Dict[str, Any]:
        """SARIF 2.1.0 document (one run, tool ``repro-check``).

        ``rules`` is an optional sequence of rule descriptors (anything
        with ``rule_id`` and ``description``) for the tool metadata.
        """
        rule_meta = [
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL[rule.severity]
                },
            }
            for rule in rules
        ]
        results = [
            {
                "ruleId": f.rule_id,
                "level": _SARIF_LEVEL[f.severity],
                "message": {"text": f"{f.location}: {f.message}"},
                "properties": {
                    "stage": f.stage,
                    "fixHint": f.fix_hint,
                },
            }
            for f in self.findings
        ]
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-check",
                            "informationUri":
                                "https://github.com/repro/repro",
                            "rules": rule_meta,
                        }
                    },
                    "results": results,
                }
            ],
        }


@dataclass
class CheckError(RuntimeError):
    """Raised by fail-fast callers when fatal findings exist."""

    report: Report = field(default_factory=Report)
    context: str = ""

    def __str__(self) -> str:
        errors = self.report.errors
        head = errors[0].format() if errors else "no error findings"
        where = f"{self.context}: " if self.context else ""
        return (
            f"{where}{len(errors)} fatal finding(s); first: {head}"
        )
