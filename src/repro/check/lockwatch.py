"""Runtime lock sanitizer (rule ``CC005``): observed-order validation.

The static lock graph built by :mod:`repro.check.concurrency` is sound
only for the acquisition patterns it can resolve; this module validates
it against *real* executions.  With ``REPRO_LOCKWATCH=1`` the test
harness swaps ``threading.Lock`` / ``threading.RLock`` for instrumented
wrappers that record, per thread, the order locks are taken, how long
they are held and waited for, and any pair of locks observed in *both*
orders across the run — a lock-order inversion, the runtime witness of
a potential deadlock.  ``threading.Condition`` and ``threading.Event``
construct their inner locks through the patched module-level factories,
so they are covered transparently (and stay real ``Condition`` /
``Event`` instances, so ``isinstance`` checks keep working).

Locks are named by allocation site (``queue.py:57``), which is the same
granularity the static pass reasons at.  Inversions are detected at
object identity level — the two orders must involve the *same two lock
objects* — so a report is never a cross-instance false positive.
Results are aggregated in memory (sites, edges, totals — not per-event
records) and written as an obs-format journal via
:func:`repro.obs.journal.write_journal`; ``repro check --lockwatch``
turns a written journal back into findings so inversions flow through
the same report / ``--sarif`` / ``--fail-on`` machinery as every other
rule.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from types import FrameType, TracebackType
from typing import Any, Dict, Iterator, List, Optional, Tuple, cast

from ..obs.journal import (
    environment_fingerprint,
    read_journal,
    write_journal,
)
from .findings import Finding, Severity
from .rules import rule

CC005 = rule(
    "CC005", Severity.ERROR, "self",
    "no lock-order inversions in observed executions (lockwatch)",
)

#: Opt-in switch: the shim installs only when this is "1".
LOCKWATCH_ENV = "REPRO_LOCKWATCH"

#: Where the harness writes the final report (a fixed path for CI).
LOCKWATCH_OUT_ENV = "REPRO_LOCKWATCH_OUT"

#: The real factories, captured before any patching.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_THIS_FILE = str(Path(__file__).resolve())
_THREADING_FILE = str(Path(threading.__file__).resolve())


def _allocation_site() -> str:
    """``file.py:line`` of the nearest frame outside the machinery."""
    frame: Optional[FrameType] = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename not in (_THIS_FILE, _THREADING_FILE):
            break
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{Path(frame.f_code.co_filename).name}:{frame.f_lineno}"


class _SiteStats:
    """Aggregated counters for one allocation site."""

    __slots__ = (
        "site", "kind", "instances", "acquisitions",
        "wait_total", "wait_max", "hold_total", "hold_max",
    )

    def __init__(self, site: str, kind: str) -> None:
        self.site = site
        self.kind = kind
        self.instances = 0
        self.acquisitions = 0
        self.wait_total = 0.0
        self.wait_max = 0.0
        self.hold_total = 0.0
        self.hold_max = 0.0

    def as_point(self) -> Dict[str, object]:
        return {
            "type": "point",
            "name": "lockwatch.lock",
            "site": self.site,
            "kind": self.kind,
            "instances": self.instances,
            "acquisitions": self.acquisitions,
            "wait_total_s": round(self.wait_total, 6),
            "wait_max_s": round(self.wait_max, 6),
            "hold_total_s": round(self.hold_total, 6),
            "hold_max_s": round(self.hold_max, 6),
        }


class _Tls(threading.local):
    """Per-thread acquisition stack: (lock, t_acquired) entries."""

    def __init__(self) -> None:
        self.stack: List[Tuple["_WatchedLockBase", float]] = []


class LockWatch:
    """The process-wide recorder behind the instrumented locks."""

    def __init__(self) -> None:
        # The recorder's own lock must be a *real* one: instrumenting
        # it would recurse.
        self._state = _REAL_LOCK()
        self._tls = _Tls()
        self._sites: Dict[str, _SiteStats] = {}
        # (id(held), id(acquired)) -> edge record; strong refs to every
        # wrapper live in _registry so ids are never reused.
        self._edges: Dict[Tuple[int, int], Dict[str, object]] = {}
        self._registry: Dict[int, "_WatchedLockBase"] = {}
        self._inversions: List[Dict[str, object]] = []
        self._inverted_pairs: set = set()

    # -- registration --------------------------------------------------

    def register(self, lock: "_WatchedLockBase") -> None:
        with self._state:
            self._registry[id(lock)] = lock
            stats = self._sites.get(lock.site)
            if stats is None:
                stats = _SiteStats(lock.site, lock.kind)
                self._sites[lock.site] = stats
            stats.instances += 1

    # -- event recording -----------------------------------------------

    def record_attempt(self, lock: "_WatchedLockBase") -> None:
        """Order edges from every currently held lock to ``lock``."""
        stack = self._tls.stack
        if any(entry[0] is lock for entry in stack):
            return  # reentrant re-acquire: no new ordering
        if not stack:
            return
        held: List[_WatchedLockBase] = []
        seen: set = set()
        for entry in stack:
            if id(entry[0]) not in seen:
                held.append(entry[0])
                seen.add(id(entry[0]))
        thread = threading.current_thread().name
        with self._state:
            for holder in held:
                self._record_edge(holder, lock, thread)

    def _record_edge(
        self,
        holder: "_WatchedLockBase",
        acquired: "_WatchedLockBase",
        thread: str,
    ) -> None:
        key = (id(holder), id(acquired))
        edge = self._edges.get(key)
        if edge is None:
            edge = {
                "src": holder.site,
                "dst": acquired.site,
                "count": 0,
                "first_thread": thread,
            }
            self._edges[key] = edge
        edge["count"] = cast(int, edge["count"]) + 1
        reverse = self._edges.get((id(acquired), id(holder)))
        if reverse is None:
            return
        pair = frozenset((id(holder), id(acquired)))
        if pair in self._inverted_pairs:
            return
        self._inverted_pairs.add(pair)
        self._inversions.append({
            "type": "point",
            "name": "lockwatch.inversion",
            "a": acquired.site,
            "b": holder.site,
            "first_order": [acquired.site, holder.site],
            "first_thread": reverse["first_thread"],
            "second_order": [holder.site, acquired.site],
            "second_thread": thread,
        })

    def _stats_for(self, lock: "_WatchedLockBase") -> _SiteStats:
        """Stats for a lock's site (self-healing: a wrapper created
        before a ``reset()`` must keep working after it)."""
        stats = self._sites.get(lock.site)
        if stats is None:
            stats = _SiteStats(lock.site, lock.kind)
            self._sites[lock.site] = stats
        return stats

    def record_acquired(
        self, lock: "_WatchedLockBase", waited: float
    ) -> None:
        now = time.perf_counter()  # check: allow(DT002)
        self._tls.stack.append((lock, now))
        with self._state:
            stats = self._stats_for(lock)
            stats.acquisitions += 1
            stats.wait_total += waited
            stats.wait_max = max(stats.wait_max, waited)

    def record_released(self, lock: "_WatchedLockBase") -> None:
        stack = self._tls.stack
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] is lock:
                _lock, t_acquired = stack.pop(index)
                held = time.perf_counter() - t_acquired  # check: allow(DT002)
                with self._state:
                    stats = self._stats_for(lock)
                    stats.hold_total += held
                    stats.hold_max = max(stats.hold_max, held)
                return

    def drop_all(self, lock: "_WatchedLockBase") -> int:
        """Pop every stack entry for ``lock`` (Condition release_save)."""
        stack = self._tls.stack
        count = 0
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] is lock:
                stack.pop(index)
                count += 1
        return count

    def push_back(self, lock: "_WatchedLockBase", count: int) -> None:
        now = time.perf_counter()  # check: allow(DT002)
        for _ in range(count):
            self._tls.stack.append((lock, now))

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Aggregate counters as one plain dict (for tests / debug)."""
        with self._state:
            return {
                "sites": {
                    site: stats.as_point()
                    for site, stats in sorted(self._sites.items())
                },
                "edges": [
                    dict(edge) for _key, edge in sorted(
                        self._edges.items(),
                        key=lambda kv: (
                            str(kv[1]["src"]), str(kv[1]["dst"]),
                        ),
                    )
                ],
                "inversions": [dict(i) for i in self._inversions],
            }

    def journal_events(self) -> List[Dict[str, object]]:
        """The report as obs-journal events (meta + points)."""
        snap = self.snapshot()
        sites = cast(Dict[str, Dict[str, object]], snap["sites"])
        edges = cast(List[Dict[str, object]], snap["edges"])
        inversions = cast(List[Dict[str, object]], snap["inversions"])
        events: List[Dict[str, object]] = [{
            "type": "meta",
            "label": "lockwatch",
            "fingerprint": environment_fingerprint(),
        }]
        events.extend(sites[site] for site in sorted(sites))
        for edge in edges:
            events.append({
                "type": "point", "name": "lockwatch.edge", **edge,
            })
        events.extend(inversions)
        events.append({
            "type": "point",
            "name": "lockwatch.summary",
            "locks": len(sites),
            "edges": len(edges),
            "inversions": len(inversions),
        })
        return events

    def reset(self) -> None:
        with self._state:
            self._sites.clear()
            self._edges.clear()
            self._registry.clear()
            self._inversions.clear()
            self._inverted_pairs.clear()


class _WatchedLockBase:
    """Shared plumbing for the Lock and RLock wrappers."""

    kind = "lock"

    def __init__(self, watch: LockWatch, inner: Any) -> None:
        self._watch = watch
        self._inner = inner
        self.site = _allocation_site()
        watch.register(self)

    def acquire(
        self, blocking: bool = True, timeout: float = -1
    ) -> bool:
        self._watch.record_attempt(self)
        start = time.perf_counter()  # check: allow(DT002)
        ok = bool(self._inner.acquire(blocking, timeout))
        if ok:
            waited = time.perf_counter() - start  # check: allow(DT002)
            self._watch.record_acquired(self, waited)
        return ok

    def release(self) -> None:
        self._inner.release()
        self._watch.record_released(self)

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<lockwatch {self.kind} at {self.site}>"


class _WatchedLock(_WatchedLockBase):
    """Instrumented ``threading.Lock``."""

    kind = "lock"

    def __init__(self, watch: LockWatch) -> None:
        super().__init__(watch, _REAL_LOCK())


class _WatchedRLock(_WatchedLockBase):
    """Instrumented ``threading.RLock``.

    Provides the private ``_release_save`` / ``_acquire_restore`` /
    ``_is_owned`` hooks ``threading.Condition`` looks for, so a
    Condition built on an instrumented RLock keeps exact wait
    semantics while the watch's held-stack stays truthful across
    ``wait()``.
    """

    kind = "rlock"

    def __init__(self, watch: LockWatch) -> None:
        super().__init__(watch, _REAL_RLOCK())

    def _release_save(self) -> Tuple[Any, int]:
        count = self._watch.drop_all(self)
        return cast(Any, self._inner)._release_save(), count

    def _acquire_restore(self, state: Tuple[Any, int]) -> None:
        inner_state, count = state
        self._watch.record_attempt(self)
        start = time.perf_counter()  # check: allow(DT002)
        cast(Any, self._inner)._acquire_restore(inner_state)
        waited = time.perf_counter() - start  # check: allow(DT002)
        self._watch.record_acquired(self, waited)
        if count > 1:
            self._watch.push_back(self, count - 1)

    def _is_owned(self) -> bool:
        return bool(cast(Any, self._inner)._is_owned())


#: The default process-wide watch.
_WATCH = LockWatch()

#: The recorder newly created wrappers bind to (swapped by
#: :func:`scoped_watch` so defect-seeding tests don't pollute a
#: session-wide report).
_CURRENT = _WATCH

_INSTALLED = False


def watch() -> LockWatch:
    """The currently active :class:`LockWatch` recorder."""
    return _CURRENT


def enabled() -> bool:
    """True when ``REPRO_LOCKWATCH=1`` opts the process in."""
    return os.environ.get(LOCKWATCH_ENV, "") == "1"


def installed() -> bool:
    return _INSTALLED


def install() -> bool:
    """Patch the ``threading`` lock factories; True if newly installed.

    Only ``Lock`` and ``RLock`` are replaced: ``Condition`` and
    ``Event`` reach the patched factories through the ``threading``
    module globals, so they are instrumented without being wrapped.
    Locks created *before* install stay uninstrumented.
    """
    global _INSTALLED
    if _INSTALLED:
        return False
    setattr(threading, "Lock", lambda: _WatchedLock(_CURRENT))
    setattr(threading, "RLock", lambda: _WatchedRLock(_CURRENT))
    _INSTALLED = True
    return True


def uninstall() -> bool:
    """Restore the real factories; True if previously installed."""
    global _INSTALLED
    if not _INSTALLED:
        return False
    setattr(threading, "Lock", _REAL_LOCK)
    setattr(threading, "RLock", _REAL_RLOCK)
    _INSTALLED = False
    return True


@contextmanager
def scoped_watch() -> Iterator[LockWatch]:
    """Route locks created inside the block into a fresh recorder.

    For tests that *seed* defects (a deliberate inversion) while a
    session-wide lockwatch may be active: the seeded events land in the
    scoped recorder, not the session report, so a clean real run stays
    clean.  Installs the shim if it wasn't already; restores everything
    on exit.
    """
    global _CURRENT
    previous = _CURRENT
    scoped = LockWatch()
    _CURRENT = scoped
    did_install = install()
    try:
        yield scoped
    finally:
        _CURRENT = previous
        if did_install:
            uninstall()


def write_report(path: Optional[Path] = None) -> Path:
    """Write the aggregated report as a lockwatch journal.

    An explicit ``path`` (or ``$REPRO_LOCKWATCH_OUT``) writes exactly
    there — CI wants a fixed artifact name; otherwise the journal goes
    to the standard journal directory via
    :func:`repro.obs.journal.write_journal`.
    """
    events = _CURRENT.journal_events()
    if path is None:
        out = os.environ.get(LOCKWATCH_OUT_ENV, "")
        path = Path(out) if out else None
    if path is None:
        return write_journal(events, label="lockwatch")
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True, default=str))
            handle.write("\n")
    return path


def findings_from_journal(path: Path) -> List[Finding]:
    """CC005 findings for every inversion recorded in a journal.

    Raises ``ValueError`` when the file is not a lockwatch journal
    (no ``lockwatch.summary`` point).
    """
    events = read_journal(path)
    summary = [
        e for e in events if e.get("name") == "lockwatch.summary"
    ]
    if not summary:
        raise ValueError(
            f"{path} is not a lockwatch journal "
            f"(no lockwatch.summary event)"
        )
    findings: List[Finding] = []
    for event in events:
        if event.get("name") != "lockwatch.inversion":
            continue
        first = " -> ".join(event.get("first_order", ["?", "?"]))
        second = " -> ".join(event.get("second_order", ["?", "?"]))
        findings.append(CC005.finding(
            str(path),
            f"observed lock-order inversion: thread "
            f"{event.get('first_thread', '?')!r} took {first} while "
            f"thread {event.get('second_thread', '?')!r} took {second}; "
            f"these orders deadlock under contention",
        ))
    return findings
