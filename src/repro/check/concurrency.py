"""Concurrency static analysis over the repro codebase (family ``CC``).

PRs 6-7 made the reproduction a threaded system: a stage-graph
scheduler over persistent worker pools and a ``ThreadingHTTPServer``
job service with a condition-guarded queue, shared metrics locks, and
drain events.  This pass proves the locking discipline of that layer
*by construction*, the way the source paper proves PLB coverage by
exhaustively enumerating the 256 3-input functions: it enumerates every
lock-acquisition order and every shared-attribute access site in the
``ast`` of the analyzed modules and checks them against four rules.

``CC001``
    The whole-program lock graph must be acyclic.  An edge ``A -> B``
    means some code path acquires ``B`` while holding ``A`` (directly,
    or through the call graph); a cycle means two threads can deadlock
    by taking the locks in opposite orders.  Acquiring a non-reentrant
    ``threading.Lock`` that is already held is the degenerate
    single-lock case and is flagged too.
``CC002``
    No blocking call while a lock is held: ``subprocess`` launches,
    socket/HTTP sends, disk I/O (``open`` / ``Path.open`` / ``fsync``),
    ``time.sleep``, thread ``join``, and ``wait`` on *another*
    synchronization object all stall every thread contending for the
    held lock.  (``Condition.wait`` on the held condition itself is the
    designed use and is exempt — unless additional locks are held
    across the wait.)
``CC003``
    Guarded-somewhere means guarded-everywhere: an attribute of a
    lock-owning class that is written under the lock on one code path
    and without it on another is a data race; so is an unguarded write
    reachable from two distinct thread entry points
    (``Thread(target=...)``, ``do_*`` HTTP handler methods, executor
    callbacks).  Construction (``__init__`` and helpers reachable only
    from it) is single-threaded and exempt.
``CC004``
    Condition-variable discipline: ``wait()`` must re-check its
    predicate in a ``while`` loop (or use ``wait_for``), and
    ``notify()`` / ``notify_all()`` require the condition's lock held.

Findings on deliberate, justified sites are suppressed with an inline
``# check: allow(CCnnn)`` comment, same as the DT family.  The static
lock graph is validated against *observed* executions by the runtime
sanitizer in :mod:`repro.check.lockwatch` (rule ``CC005``).

Scope and soundness: the analysis resolves ``self.method()`` calls,
``self.attr.method()`` calls where ``attr`` was assigned a class
constructed in an analyzed module (or annotated with one), and
module-level function calls.  Calls through locals, callables passed as
values, and cross-object lock aliasing (two names for one runtime lock)
are not tracked — lockwatch covers the residue at runtime.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .findings import Finding, Severity
from .rules import Rule, rule
from .selflint import default_lint_root, suppressed_lines

CC001 = rule(
    "CC001", Severity.ERROR, "self",
    "lock-acquisition orders must be cycle-free (deadlock)",
)
CC002 = rule(
    "CC002", Severity.WARNING, "self",
    "no blocking calls while holding a lock",
)
CC003 = rule(
    "CC003", Severity.ERROR, "self",
    "shared attributes guarded somewhere must be guarded everywhere",
)
CC004 = rule(
    "CC004", Severity.ERROR, "self",
    "condition waits re-check in a loop; notifies hold the lock",
)

#: threading factory -> synchronization-object kind.
_FACTORY_KINDS: Dict[str, str] = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Event": "event",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
}

#: Kinds that participate in the lock graph (events are signals, not
#: mutual exclusion, and have no acquisition order).
_GRAPH_KINDS = ("lock", "rlock", "condition", "semaphore")

#: ``(owner, attr)`` call patterns that block the calling thread.
_BLOCKING_OWNED = {
    ("subprocess", "run"), ("subprocess", "Popen"), ("subprocess", "call"),
    ("subprocess", "check_call"), ("subprocess", "check_output"),
    ("time", "sleep"), ("os", "fsync"), ("socket", "create_connection"),
}

#: Bare attribute names whose calls block regardless of owner.
_BLOCKING_ATTRS = {
    "communicate", "urlopen", "sendall", "recv", "accept", "connect",
    "read_text", "write_text", "read_bytes", "write_bytes", "getresponse",
}

#: ``self.attr.<mutator>()`` calls treated as writes to ``attr``.
_MUTATORS = {
    "append", "extend", "insert", "pop", "popitem", "remove", "clear",
    "update", "add", "discard", "setdefault", "appendleft", "popleft",
}


@dataclass(frozen=True)
class LockInfo:
    """One statically identified synchronization object."""

    lock_id: str       # e.g. "JobQueue._cond" or "server._REGISTRY_LOCK"
    kind: str          # "lock" | "rlock" | "condition" | "event" | ...
    filename: str
    lineno: int

    @property
    def in_graph(self) -> bool:
        return self.kind in _GRAPH_KINDS


@dataclass
class _CallSite:
    """A resolvable call made with a known set of locks held."""

    callee: str                   # qualname key into the summary map
    held: FrozenSet[str]
    lineno: int


@dataclass
class _Site:
    """A line-level event (blocking call, notify, attribute write)."""

    lineno: int
    held: FrozenSet[str]
    detail: str = ""


@dataclass
class _FnSummary:
    """Everything the cross-function passes need about one function."""

    qualname: str                 # "Class.method" or "module:func"
    cls: Optional[str]
    name: str
    filename: str
    lineno: int
    acquires: List[Tuple[str, int]] = field(default_factory=list)
    #: (held lock, acquired lock, lineno) observed lexically.
    edges: List[Tuple[str, str, int]] = field(default_factory=list)
    calls: List[_CallSite] = field(default_factory=list)
    blocking: List[_Site] = field(default_factory=list)
    #: notify/notify_all sites: detail carries the condition's lock id.
    notifies: List[_Site] = field(default_factory=list)
    #: Condition waits outside any ``while`` loop: (lock id, lineno).
    loopless_waits: List[Tuple[str, int]] = field(default_factory=list)
    #: self-attribute writes: detail carries the attribute name.
    writes: List[_Site] = field(default_factory=list)
    #: Non-reentrant locks re-acquired while already held locally.
    self_deadlocks: List[Tuple[str, int]] = field(default_factory=list)


@dataclass
class _ClassModel:
    """Per-class facts: locks, attribute types, entry points."""

    name: str
    filename: str
    locks: Dict[str, LockInfo] = field(default_factory=dict)
    #: attribute -> class name (``self.queue = JobQueue(...)``).
    attr_classes: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, _FnSummary] = field(default_factory=dict)
    bases: List[str] = field(default_factory=list)
    #: Methods that other threads enter (Thread targets, do_* handlers).
    entries: Set[str] = field(default_factory=set)

    @property
    def is_request_handler(self) -> bool:
        return any("RequestHandler" in base for base in self.bases)


def _dotted(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``a.b`` / ``a.b.c`` attribute targets as (owner, attr)."""
    if isinstance(node, ast.Attribute):
        owner = node.value
        if isinstance(owner, ast.Name):
            return owner.id, node.attr
        if isinstance(owner, ast.Attribute):
            return owner.attr, node.attr
    return None


def _annotation_kind(node: Optional[ast.AST]) -> Optional[str]:
    """The lock kind named by a parameter annotation, if any."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return _FACTORY_KINDS.get(node.id)
    if isinstance(node, ast.Attribute):
        dotted = _dotted(node)
        if dotted and dotted[0] == "threading":
            return _FACTORY_KINDS.get(dotted[1])
    return None


def _factory_kind(node: ast.AST) -> Optional[str]:
    """The lock kind constructed by ``node``, if it is a lock factory."""
    if not isinstance(node, ast.Call):
        return None
    fn = node.func
    if isinstance(fn, ast.Name):
        return _FACTORY_KINDS.get(fn.id)
    dotted = _dotted(fn)
    if dotted and dotted[0] == "threading":
        return _FACTORY_KINDS.get(dotted[1])
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _Model:
    """The whole-program model: every module's classes and functions."""

    def __init__(self) -> None:
        self.classes: Dict[str, _ClassModel] = {}
        #: module-level locks by bare name, per file stem.
        self.module_locks: Dict[str, LockInfo] = {}
        self.functions: Dict[str, _FnSummary] = {}
        self._sources: Dict[str, str] = {}

    # -- phase 1: declaration scan -------------------------------------

    def add_module(self, source: str, filename: str) -> Optional[Finding]:
        """Parse one module and fold its declarations in."""
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            return CC001.finding(
                f"{filename}:{exc.lineno or 0}",
                f"not parseable: {exc.msg}",
            )
        self._sources[filename] = source
        stem = Path(filename).stem
        for node in tree.body:
            if isinstance(node, ast.Assign):
                kind = _factory_kind(node.value)
                if kind is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info = LockInfo(
                            f"{stem}.{target.id}", kind, filename,
                            node.lineno,
                        )
                        self.module_locks[target.id] = info
            elif isinstance(node, ast.ClassDef):
                self._add_class(node, filename)
            elif isinstance(node, ast.FunctionDef):
                summary = _FnSummary(
                    qualname=f"{stem}:{node.name}", cls=None,
                    name=node.name, filename=filename, lineno=node.lineno,
                )
                self.functions.setdefault(node.name, summary)
                self.functions[f"{stem}:{node.name}"] = summary
        return None

    def _add_class(self, node: ast.ClassDef, filename: str) -> None:
        model = _ClassModel(name=node.name, filename=filename)
        model.bases = [
            base.id if isinstance(base, ast.Name) else
            (base.attr if isinstance(base, ast.Attribute) else "")
            for base in node.bases
        ]
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            model.methods[item.name] = _FnSummary(
                qualname=f"{node.name}.{item.name}", cls=node.name,
                name=item.name, filename=filename, lineno=item.lineno,
            )
            self._scan_attr_decls(model, item)
            if model.is_request_handler and item.name.startswith("do_"):
                model.entries.add(item.name)
        # First declaration wins on a cross-module name collision so the
        # result is deterministic for sorted file order.
        self.classes.setdefault(node.name, model)

    def _scan_attr_decls(
        self, model: _ClassModel, fn: ast.FunctionDef
    ) -> None:
        """Record lock attributes and attr->class bindings in ``fn``."""
        annotated: Dict[str, str] = {}
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            kind = _annotation_kind(arg.annotation)
            if kind is not None:
                annotated[arg.arg] = kind
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                kind = _factory_kind(node.value)
                if kind is None and isinstance(node.value, ast.Name):
                    kind = annotated.get(node.value.id)
                if kind is not None:
                    model.locks.setdefault(attr, LockInfo(
                        f"{model.name}.{attr}", kind, model.filename,
                        node.lineno,
                    ))
                    continue
                if isinstance(node.value, ast.Call) and isinstance(
                    node.value.func, ast.Name
                ):
                    model.attr_classes.setdefault(
                        attr, node.value.func.id
                    )

    # -- phase 2: per-function behavior scan ---------------------------

    def scan_behavior(self) -> None:
        for filename, source in sorted(self._sources.items()):
            tree = ast.parse(source, filename=filename)
            stem = Path(filename).stem
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    model = self.classes.get(node.name)
                    if model is None or model.filename != filename:
                        continue
                    for item in node.body:
                        if isinstance(item, ast.FunctionDef):
                            self._scan_fn(
                                model.methods[item.name], item, model
                            )
                elif isinstance(node, ast.FunctionDef):
                    summary = self.functions.get(f"{stem}:{node.name}")
                    if summary is not None:
                        self._scan_fn(summary, node, None)

    def _scan_fn(
        self,
        summary: _FnSummary,
        fn: ast.FunctionDef,
        model: Optional[_ClassModel],
    ) -> None:
        scanner = _FnScanner(self, summary, model)
        scanner.scan(fn)

    # -- lock / call resolution ----------------------------------------

    def lock_of(
        self, node: ast.AST, model: Optional[_ClassModel]
    ) -> Optional[LockInfo]:
        """Resolve an expression to a known synchronization object."""
        attr = _self_attr(node)
        if attr is not None and model is not None:
            return model.locks.get(attr)
        if isinstance(node, ast.Name):
            return self.module_locks.get(node.id)
        return None

    def resolve_call(
        self, node: ast.Call, model: Optional[_ClassModel]
    ) -> Optional[_FnSummary]:
        """The summary of a statically resolvable callee, if any."""
        fn = node.func
        if isinstance(fn, ast.Name):
            cls = self.classes.get(fn.id)
            if cls is not None:
                return cls.methods.get("__init__")
            return self.functions.get(fn.id)
        if not isinstance(fn, ast.Attribute):
            return None
        owner_attr = _self_attr(fn.value)
        if isinstance(fn.value, ast.Name) and fn.value.id == "self":
            if model is not None:
                return model.methods.get(fn.attr)
            return None
        if owner_attr is not None and model is not None:
            cls_name = model.attr_classes.get(owner_attr)
            if cls_name is not None:
                cls = self.classes.get(cls_name)
                if cls is not None:
                    return cls.methods.get(fn.attr)
        return None

    # -- phase 3: cross-function fixpoints -----------------------------

    def _all_summaries(self) -> List[_FnSummary]:
        seen: Dict[int, _FnSummary] = {}
        for model in self.classes.values():
            for summary in model.methods.values():
                seen[id(summary)] = summary
        for summary in self.functions.values():
            seen[id(summary)] = summary
        return sorted(
            seen.values(), key=lambda s: (s.filename, s.lineno)
        )

    def held_contexts(self) -> Dict[str, Set[str]]:
        """Locks held at some call site of each function, transitively."""
        summaries = self._all_summaries()
        by_name = {s.qualname: s for s in summaries}
        context: Dict[str, Set[str]] = {s.qualname: set() for s in summaries}
        changed = True
        while changed:
            changed = False
            for summary in summaries:
                inherited = context[summary.qualname]
                for call in summary.calls:
                    if call.callee not in by_name:
                        continue
                    incoming = set(call.held) | inherited
                    target = context[call.callee]
                    if not incoming <= target:
                        target |= incoming
                        changed = True
        return context

    def lock_graph(
        self, context: Dict[str, Set[str]]
    ) -> Dict[Tuple[str, str], Tuple[str, int]]:
        """Every ``held -> acquired`` edge with one witness site each."""
        edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for summary in self._all_summaries():
            for held, acquired, lineno in summary.edges:
                edges.setdefault(
                    (held, acquired), (summary.filename, lineno)
                )
            inherited = context.get(summary.qualname, set())
            for lock_id, lineno in summary.acquires:
                for held in sorted(inherited):
                    if held != lock_id:
                        edges.setdefault(
                            (held, lock_id), (summary.filename, lineno)
                        )
        return edges

    def entry_reach(self) -> Dict[str, Set[str]]:
        """Function qualname -> thread entry points that can reach it."""
        summaries = self._all_summaries()
        by_name = {s.qualname: s for s in summaries}
        entries: List[str] = []
        for model in sorted(self.classes.values(), key=lambda m: m.name):
            for method in sorted(model.entries):
                if method in model.methods:
                    entries.append(model.methods[method].qualname)
        reach: Dict[str, Set[str]] = {s.qualname: set() for s in summaries}
        for entry in entries:
            stack = [entry]
            while stack:
                name = stack.pop()
                if entry in reach[name]:
                    continue
                reach[name].add(entry)
                summary = by_name[name]
                for call in summary.calls:
                    if call.callee in by_name:
                        stack.append(call.callee)
        return reach

    def construction_only(self, model: _ClassModel) -> Set[str]:
        """Methods reachable *only* from ``__init__`` (single-threaded).

        A method is construction-only when every in-class caller is
        itself construction-only and it is not a thread entry point;
        ``__init__``/``__new__`` seed the set.  A method nobody calls is
        assumed to be API surface and stays out.
        """
        callers: Dict[str, Set[str]] = {name: set() for name in model.methods}
        for name, summary in model.methods.items():
            for call in summary.calls:
                callee = call.callee
                if "." in callee:
                    cls, method = callee.split(".", 1)
                    if cls == model.name and method in callers:
                        callers[method].add(name)
        exempt = {
            name for name in ("__init__", "__new__") if name in model.methods
        }
        changed = True
        while changed:
            changed = False
            for name in sorted(model.methods):
                if name in exempt or name in model.entries:
                    continue
                if callers[name] and callers[name] <= exempt:
                    exempt.add(name)
                    changed = True
        return exempt

    # -- phase 4: findings ---------------------------------------------

    def findings(self) -> List[Finding]:
        self.scan_behavior()
        context = self.held_contexts()
        entry_reach = self.entry_reach()
        hits: List[Tuple[Rule, str, int, str]] = []

        self._find_cycles(context, hits)
        self._find_blocking(context, hits)
        self._find_unguarded(context, entry_reach, hits)
        self._find_condition_misuse(context, hits)

        findings: List[Finding] = []
        allowed_by_file = {
            filename: suppressed_lines(source)
            for filename, source in self._sources.items()
        }
        for rule_obj, filename, lineno, message in sorted(
            hits, key=lambda h: (h[1], h[2], h[0].rule_id, h[3])
        ):
            allowed = allowed_by_file.get(filename, {})
            if rule_obj.rule_id in allowed.get(lineno, ()):
                continue
            findings.append(
                rule_obj.finding(f"{filename}:{lineno}", message)
            )
        return findings

    def _find_cycles(
        self,
        context: Dict[str, Set[str]],
        hits: List[Tuple[Rule, str, int, str]],
    ) -> None:
        edges = self.lock_graph(context)
        adjacency: Dict[str, Set[str]] = {}
        for held, acquired in edges:
            adjacency.setdefault(held, set()).add(acquired)
            adjacency.setdefault(acquired, set())
        for cycle in _cycles(adjacency):
            witness = [
                (pair, edges[pair])
                for pair in zip(cycle, cycle[1:] + cycle[:1])
                if pair in edges
            ]
            if not witness:
                continue
            order = " -> ".join(cycle + [cycle[0]])
            sites = "; ".join(
                f"{a}->{b} at {Path(fn).name}:{ln}"
                for (a, b), (fn, ln) in witness
            )
            filename, lineno = witness[0][1]
            hits.append((
                CC001, filename, lineno,
                f"lock-order inversion {order} ({sites}); threads taking "
                f"these locks in opposite orders deadlock",
            ))
        for summary in self._all_summaries():
            for lock_id, lineno in summary.self_deadlocks:
                hits.append((
                    CC001, summary.filename, lineno,
                    f"non-reentrant lock {lock_id} acquired while already "
                    f"held in {summary.qualname} (self-deadlock); use an "
                    f"RLock or restructure",
                ))

    def _find_blocking(
        self,
        context: Dict[str, Set[str]],
        hits: List[Tuple[Rule, str, int, str]],
    ) -> None:
        for summary in self._all_summaries():
            inherited = context.get(summary.qualname, set())
            for site in summary.blocking:
                held = sorted(set(site.held) | inherited)
                if not held:
                    continue
                hits.append((
                    CC002, summary.filename, site.lineno,
                    f"{site.detail} while holding {', '.join(held)} "
                    f"in {summary.qualname}; every contender stalls for "
                    f"the duration",
                ))

    def _find_unguarded(
        self,
        context: Dict[str, Set[str]],
        entry_reach: Dict[str, Set[str]],
        hits: List[Tuple[Rule, str, int, str]],
    ) -> None:
        for model in sorted(self.classes.values(), key=lambda m: m.name):
            if not any(i.in_graph for i in model.locks.values()):
                continue
            exempt = self.construction_only(model)
            by_attr: Dict[str, List[Tuple[_FnSummary, _Site, bool]]] = {}
            for name, summary in sorted(model.methods.items()):
                if name in exempt:
                    continue
                inherited = context.get(summary.qualname, set())
                for site in summary.writes:
                    guarded = bool(set(site.held) | inherited)
                    by_attr.setdefault(site.detail, []).append(
                        (summary, site, guarded)
                    )
            for attr, sites in sorted(by_attr.items()):
                guarded_sites = [s for s in sites if s[2]]
                unguarded = [s for s in sites if not s[2]]
                if not unguarded:
                    continue
                entry_owners = {
                    entry
                    for summary, _site, _g in unguarded
                    for entry in entry_reach.get(summary.qualname, ())
                }
                mixed = bool(guarded_sites)
                racy_entries = len(entry_owners) > 1
                if not mixed and not racy_entries:
                    continue
                for summary, site, _guarded in unguarded:
                    if mixed:
                        other = guarded_sites[0][0]
                        reason = (
                            f"also written under a lock in "
                            f"{other.qualname}"
                        )
                    else:
                        reason = (
                            "written from multiple thread entry points "
                            + ", ".join(sorted(entry_owners))
                        )
                    hits.append((
                        CC003, summary.filename, site.lineno,
                        f"unguarded write to shared attribute "
                        f"{model.name}.{attr} in {summary.qualname} "
                        f"({reason}); hold the lock or make the write "
                        f"single-threaded",
                    ))

    def _find_condition_misuse(
        self,
        context: Dict[str, Set[str]],
        hits: List[Tuple[Rule, str, int, str]],
    ) -> None:
        for summary in self._all_summaries():
            inherited = context.get(summary.qualname, set())
            for lock_id, lineno in summary.loopless_waits:
                hits.append((
                    CC004, summary.filename, lineno,
                    f"{lock_id}.wait() outside a while loop in "
                    f"{summary.qualname}; spurious wakeups require "
                    f"re-checking the predicate (or use wait_for)",
                ))
            for site in summary.notifies:
                if site.detail in set(site.held) | inherited:
                    continue
                hits.append((
                    CC004, summary.filename, site.lineno,
                    f"{site.detail} notified without its lock held in "
                    f"{summary.qualname}; the woken thread can miss the "
                    f"state change",
                ))


class _FnScanner:
    """Statement-ordered walk of one function with a live held-set."""

    def __init__(
        self,
        model: _Model,
        summary: _FnSummary,
        cls: Optional[_ClassModel],
    ) -> None:
        self.model = model
        self.summary = summary
        self.cls = cls
        self.held: List[str] = []
        self.loop_depth = 0

    def scan(self, fn: ast.FunctionDef) -> None:
        self._stmts(fn.body)

    # -- statements ----------------------------------------------------

    def _stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs run later, under unknown locks
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
            return
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            if isinstance(stmt, ast.While):
                self._exprs(stmt.test)
                self.loop_depth += 1
                self._stmts(stmt.body)
                self.loop_depth -= 1
            else:
                self._exprs(stmt.iter)
                self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._exprs(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
            return
        if isinstance(stmt, ast.Assign):
            self._exprs(stmt.value)
            for target in stmt.targets:
                self._write_target(target, stmt.lineno)
            return
        if isinstance(stmt, ast.AugAssign):
            self._exprs(stmt.value)
            self._write_target(stmt.target, stmt.lineno)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._exprs(stmt.value)
            self._write_target(stmt.target, stmt.lineno)
            return
        # Everything else: scan contained expressions in order.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._exprs(child)

    def _with(self, stmt: "ast.With | ast.AsyncWith") -> None:
        acquired: List[str] = []
        for item in stmt.items:
            lock = self.model.lock_of(item.context_expr, self.cls)
            if lock is not None and lock.in_graph:
                self._acquire(lock, item.context_expr.lineno)
                self.held.append(lock.lock_id)
                acquired.append(lock.lock_id)
            else:
                self._exprs(item.context_expr)
        self._stmts(stmt.body)
        for lock_id in reversed(acquired):
            if lock_id in self.held:
                self.held.reverse()
                self.held.remove(lock_id)
                self.held.reverse()

    # -- expressions ---------------------------------------------------

    def _exprs(self, node: ast.expr) -> None:
        """Process calls inside ``node`` in source order."""
        for child in ast.walk(node):
            if isinstance(child, (ast.Lambda,)):
                continue
            if isinstance(child, ast.Call):
                self._call(child)

    def _call(self, node: ast.Call) -> None:
        fn = node.func
        lineno = node.lineno
        held_now = frozenset(self.held)

        # Thread entry registration: Thread(target=...), pool.submit(f).
        self._note_entries(node)

        if isinstance(fn, ast.Attribute):
            lock = self.model.lock_of(fn.value, self.cls)
            if lock is not None:
                self._lock_method(lock, fn.attr, node, lineno, held_now)
                return
            dotted = _dotted(fn)
            if dotted in _BLOCKING_OWNED:
                self.summary.blocking.append(_Site(
                    lineno, held_now,
                    f"blocking call {dotted[0]}.{dotted[1]}()"
                    if dotted else "blocking call",
                ))
            elif fn.attr in _BLOCKING_ATTRS:
                self.summary.blocking.append(_Site(
                    lineno, held_now, f"blocking call .{fn.attr}()"
                ))
            elif fn.attr == "open":
                self.summary.blocking.append(_Site(
                    lineno, held_now, "file I/O .open()"
                ))
            elif fn.attr == "join" and not node.args and not node.keywords:
                self.summary.blocking.append(_Site(
                    lineno, held_now, "blocking call .join()"
                ))
            # Mutator writes: self.attr.append(...) and friends.
            owner = _self_attr(fn.value)
            if (
                owner is not None
                and fn.attr in _MUTATORS
                and self.cls is not None
                and owner not in self.cls.locks
            ):
                self.summary.writes.append(
                    _Site(lineno, held_now, owner)
                )
        elif isinstance(fn, ast.Name):
            if fn.id == "open":
                self.summary.blocking.append(_Site(
                    lineno, held_now, "file I/O open()"
                ))

        callee = self.model.resolve_call(node, self.cls)
        if callee is not None:
            self.summary.calls.append(
                _CallSite(callee.qualname, held_now, lineno)
            )

    def _lock_method(
        self,
        lock: LockInfo,
        attr: str,
        node: ast.Call,
        lineno: int,
        held_now: FrozenSet[str],
    ) -> None:
        """A method call *on* a known synchronization object."""
        if attr == "acquire":
            if lock.in_graph:
                self._acquire(lock, lineno)
                self.held.append(lock.lock_id)
            return
        if attr == "release":
            if lock.lock_id in self.held:
                self.held.reverse()
                self.held.remove(lock.lock_id)
                self.held.reverse()
            return
        if attr in ("notify", "notify_all") and lock.kind == "condition":
            self.summary.notifies.append(
                _Site(lineno, held_now, lock.lock_id)
            )
            return
        if attr == "wait":
            if lock.kind == "condition" and lock.lock_id in held_now:
                if self.loop_depth == 0:
                    self.summary.loopless_waits.append(
                        (lock.lock_id, lineno)
                    )
                others = sorted(set(held_now) - {lock.lock_id})
                if others:
                    self.summary.blocking.append(_Site(
                        lineno, frozenset(others),
                        f"{lock.lock_id}.wait() (releases only its own "
                        f"lock)",
                    ))
            else:
                self.summary.blocking.append(_Site(
                    lineno, held_now, f"blocking {lock.lock_id}.wait()"
                ))
            return
        if attr == "wait_for" and lock.kind == "condition":
            others = sorted(set(held_now) - {lock.lock_id})
            if others:
                self.summary.blocking.append(_Site(
                    lineno, frozenset(others),
                    f"{lock.lock_id}.wait_for() (releases only its own "
                    f"lock)",
                ))
            return

    def _acquire(self, lock: LockInfo, lineno: int) -> None:
        self.summary.acquires.append((lock.lock_id, lineno))
        if lock.lock_id in self.held and lock.kind == "lock":
            self.summary.self_deadlocks.append((lock.lock_id, lineno))
        for held in self.held:
            if held != lock.lock_id:
                self.summary.edges.append(
                    (held, lock.lock_id, lineno)
                )

    def _note_entries(self, node: ast.Call) -> None:
        """Mark methods handed to threads/executors as entry points."""
        fn = node.func
        is_thread = False
        if isinstance(fn, ast.Name) and fn.id in ("Thread", "Timer"):
            is_thread = True
        dotted = _dotted(fn)
        if dotted and dotted[0] == "threading" and dotted[1] in (
            "Thread", "Timer",
        ):
            is_thread = True
        target: Optional[ast.expr] = None
        if is_thread:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = keyword.value
        elif (
            isinstance(fn, ast.Attribute)
            and fn.attr in ("submit", "map", "call_soon", "start_new_thread")
            and node.args
        ):
            target = node.args[0]
        if target is None:
            return
        attr = _self_attr(target)
        if attr is not None and self.cls is not None:
            self.cls.entries.add(attr)

    def _write_target(self, target: ast.expr, lineno: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write_target(element, lineno)
            return
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        attr = _self_attr(node)
        if attr is None:
            return
        if self.cls is not None and attr in self.cls.locks:
            return
        self.summary.writes.append(
            _Site(lineno, frozenset(self.held), attr)
        )


def _cycles(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles of a small digraph, deterministic order.

    Tarjan SCC first, then one representative cycle per non-trivial
    component (the lexicographically smallest rotation of a DFS-found
    cycle) — enough to report each inversion group once.
    """
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(adjacency.get(node, ())):
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component: List[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            components.append(component)

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)

    cycles: List[List[str]] = []
    for component in components:
        if len(component) < 2:
            continue
        ordered = sorted(component)
        # Rotate so the smallest lock id leads; membership in one SCC
        # guarantees a cycle through every member exists.
        cycles.append(ordered)
    return cycles


def analyze_source(
    source: str, filename: str = "<string>"
) -> List[Finding]:
    """Run the CC analysis over one module's source text."""
    model = _Model()
    parse_error = model.add_module(source, filename)
    if parse_error is not None:
        return [parse_error]
    return model.findings()


def analyze_paths(
    paths: Optional[Iterable[Path]] = None,
) -> List[Finding]:
    """Run the CC analysis whole-program over ``paths``.

    Defaults to the installed ``repro`` package, mirroring
    :func:`repro.check.selflint.lint_paths`.  All modules are folded
    into one model first, so cross-module class references (the HTTP
    handler driving the queue, the executor sharing the metrics lock)
    resolve before findings are computed.
    """
    roots = [Path(p) for p in paths] if paths else [default_lint_root()]
    files: List[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.py")))
    model = _Model()
    findings: List[Finding] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        parse_error = model.add_module(source, str(path))
        if parse_error is not None:
            findings.append(parse_error)
    findings.extend(model.findings())
    return findings
