"""Realization-table and cell-library consistency (family ``LB``).

The synthesis and compaction stages trust the precomputed realization
tables (:mod:`repro.synth.realize`): every table entry claims "this
ordered list of component-cell steps computes function *f* with area
*a*".  These rules re-derive each claim symbolically — step configs are
composed into one truth table via :meth:`TruthTable.compose` and
compared against the claimed function — and audit the paper's central
coverage claim: a mux-bearing granular PLB realizes **all 256 3-input
functions** without a LUT (paper Section 2.3, Figure 3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..cells.celltypes import standard_cells
from ..logic.truthtable import TruthTable
from ..synth.realize import Realization
from .findings import Finding, Severity
from .rules import rule

LB001 = rule(
    "LB001", Severity.ERROR, "library",
    "every realization's composed steps compute its claimed function",
    paper_ref="Section 3.1 (mapper correctness rests on the tables)",
)
LB002 = rule(
    "LB002", Severity.ERROR, "library",
    "every realization step uses a known cell with a feasible config "
    "and in-range refs",
    paper_ref="Section 2 (feasible via configurations per component)",
)
LB003 = rule(
    "LB003", Severity.ERROR, "library",
    "compaction tables cover all 256 3-input functions",
    paper_ref="Section 2.3 / Figure 3 (full coverage without a LUT)",
)
LB004 = rule(
    "LB004", Severity.WARNING, "library",
    "realization area equals the sum of its step-cell areas",
)


def _evaluate(realization: Realization, n: int) -> TruthTable:
    """Compose the step configs into one function over ``n`` leaves."""
    values: List[TruthTable] = []
    for step in realization.steps:
        args = []
        for kind, index in step.refs:
            if kind == "leaf":
                args.append(TruthTable.input_var(n, index))
            else:
                args.append(values[index])
        values.append(step.config.compose(args))
    return values[-1]


def check_realization(
    key: Tuple[int, int], realization: Realization
) -> List[Finding]:
    """Audit one table entry (keyed ``(n_inputs, mask)``)."""
    findings: List[Finding] = []
    n, mask = key
    cells = standard_cells()
    where = f"realization[{n},{mask:#x}]"

    claimed = realization.function
    if (claimed.n_inputs, claimed.mask) != key:
        findings.append(LB001.finding(
            where,
            f"table key disagrees with claimed function {claimed!r}",
        ))

    step_area = 0.0
    refs_ok = True
    for j, step in enumerate(realization.steps):
        cell = cells.get(step.cell_name)
        if cell is None:
            findings.append(LB002.finding(
                f"{where} step {j}",
                f"unknown cell {step.cell_name!r}",
            ))
            refs_ok = False
            continue
        step_area += cell.area
        if cell.feasible is not None and step.config not in cell.feasible:
            findings.append(LB002.finding(
                f"{where} step {j}",
                f"config {step.config!r} not via-realizable by {cell.name}",
            ))
        if len(step.refs) != step.config.n_inputs:
            findings.append(LB002.finding(
                f"{where} step {j}",
                f"{len(step.refs)} refs for a "
                f"{step.config.n_inputs}-input config",
            ))
            refs_ok = False
        for kind, index in step.refs:
            if kind == "leaf" and not 0 <= index < n:
                findings.append(LB002.finding(
                    f"{where} step {j}", f"leaf ref {index} out of range",
                ))
                refs_ok = False
            elif kind == "step" and not 0 <= index < j:
                findings.append(LB002.finding(
                    f"{where} step {j}",
                    f"step ref {index} is not an earlier step",
                ))
                refs_ok = False

    if refs_ok and realization.steps:
        try:
            computed = _evaluate(realization, n)
        except (ValueError, IndexError) as exc:
            findings.append(LB001.finding(
                where, f"steps cannot be composed: {exc}",
            ))
        else:
            if computed != claimed:
                findings.append(LB001.finding(
                    where,
                    f"steps compute {computed!r}, table claims {claimed!r}",
                    fix_hint="rebuild the realization table "
                             "(repro.synth.realize)",
                ))

    if abs(step_area - realization.area) > 1e-9:
        findings.append(LB004.finding(
            where,
            f"area {realization.area} != step-cell sum {step_area}",
        ))
    return findings


def check_realization_table(
    table: Dict[Tuple[int, int], Realization],
    require_full_3input_coverage: bool = False,
    label: str = "table",
) -> List[Finding]:
    """Audit a whole realization table."""
    findings: List[Finding] = []
    for key in sorted(table):
        findings.extend(check_realization(key, table[key]))
    if require_full_3input_coverage:
        # Functions not depending on all three inputs live under their
        # reduced support in the 1-/2-input entries; the paper's
        # 256-function claim (Figure 3) is about the full lattice, which
        # the mapper reaches by support reduction plus these entries.
        missing = [
            mask for mask in range(256)
            if (3, mask) not in table
            and len(TruthTable(3, mask).support()) == 3
        ]
        if missing:
            shown = ", ".join(f"{m:#x}" for m in missing[:8])
            findings.append(LB003.finding(
                label,
                f"{len(missing)} full-support 3-input functions "
                f"unrealizable (first: {shown})",
            ))
    return findings


def check_library(arch: Any) -> List[Finding]:
    """Audit both realization tables of one PLB architecture.

    ``arch`` is a :class:`~repro.core.plb.PLBArchitecture`; its cell
    library drives table construction.  Full 3-input coverage (LB003) is
    demanded exactly when the paper claims it: the PLB carries a mux
    (granular composite structures) or a LUT.
    """
    from ..synth.realize import baseline_table, compaction_table

    cells = frozenset(arch.library.cell_names())
    findings = check_realization_table(
        baseline_table(arch.library), label=f"{arch.name}/baseline",
    )
    findings.extend(check_realization_table(
        compaction_table(arch.library),
        require_full_3input_coverage=bool(
            cells & {"MUX2", "XOA", "LUT3"}
        ),
        label=f"{arch.name}/compaction",
    ))
    return findings
