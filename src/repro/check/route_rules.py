"""Routing audits (family ``RT``).

Audits a :class:`~repro.route.pathfinder.RoutingResult` against the net
pin points it was routed from: residual overuse must be zero (the
PathFinder convergence contract), every multi-bin net must have a route
and every single-bin or routed net's tree must actually *connect* the
bins its pins map to — the placed-netlist / routed-geometry
correspondence that extraction and STA silently trust.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from ..route.grid import Bin
from ..route.pathfinder import RoutingResult
from .findings import Finding, Severity
from .rules import rule

RT001 = rule(
    "RT001", Severity.ERROR, "routing",
    "no routing edge is used beyond its track capacity after the "
    "final iteration",
    paper_ref="Section 3.1 (ASIC-style routing must close)",
)
RT002 = rule(
    "RT002", Severity.ERROR, "routing",
    "every routed net corresponds to a netlist net with pins, and "
    "every multi-bin net is routed",
)
RT003 = rule(
    "RT003", Severity.ERROR, "routing",
    "each routed tree is connected and covers all its terminal bins",
)
RT004 = rule(
    "RT004", Severity.ERROR, "routing",
    "routed edges join adjacent in-grid bins",
)


def _tree_connected(bins: Set[Bin], edges: Set[Tuple[Bin, Bin]]) -> bool:
    """True when ``edges`` connect every bin in ``bins``."""
    if len(bins) <= 1:
        return True
    adjacency: Dict[Bin, List[Bin]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)
    start = next(iter(sorted(bins)))
    seen = {start}
    stack = [start]
    while stack:
        for neighbor in adjacency.get(stack.pop(), ()):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return bins <= seen


def check_routing(
    result: RoutingResult,
    net_points: Mapping[str, Sequence[Tuple[float, float]]],
) -> List[Finding]:
    """Run every RT rule over one routing outcome.

    ``net_points`` is the same pin-point mapping the router consumed
    (:meth:`Placement.net_pin_points` / :meth:`PackingResult.net_pin_points`).
    """
    findings: List[Finding] = []
    grid = result.grid

    if result.overused_edges > 0:
        findings.append(RT001.finding(
            f"grid {grid.cols}x{grid.rows}",
            f"{result.overused_edges} edge(s) still over "
            f"{grid.tracks} tracks after {result.iterations} iterations",
            fix_hint="raise routing_tracks or the iteration cap",
        ))

    # Terminal bins per net, exactly as the router derived them.
    terminals: Dict[str, List[Bin]] = {}
    for net, points in net_points.items():
        bins = [grid.bin_of_point(x, y) for x, y in points]
        unique = list(dict.fromkeys(bins))
        if len(unique) >= 2:
            terminals[net] = unique

    for net in sorted(result.nets):
        if net not in net_points:
            findings.append(RT002.finding(
                f"net {net}", "routed net has no netlist pins",
            ))
    for net in sorted(terminals):
        if net not in result.nets:
            findings.append(RT002.finding(
                f"net {net}",
                f"spans {len(terminals[net])} bins but was never routed",
            ))

    for net in sorted(result.nets):
        routed = result.nets[net]
        for a, b in sorted(routed.edges):
            if not (grid.contains(a) and grid.contains(b)):
                findings.append(RT004.finding(
                    f"net {net}", f"edge {(a, b)} leaves the grid",
                ))
            elif abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                findings.append(RT004.finding(
                    f"net {net}", f"edge {(a, b)} joins non-adjacent bins",
                ))
        needed = set(terminals.get(net, ()))
        missing = sorted(needed - routed.bins)
        if missing:
            findings.append(RT003.finding(
                f"net {net}",
                f"terminal bin(s) {missing} not covered by the tree",
            ))
        elif not _tree_connected(routed.bins | needed, routed.edges):
            findings.append(RT003.finding(
                f"net {net}", "routed tree is disconnected",
            ))
    return findings
