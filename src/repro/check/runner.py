"""Check orchestration: run analyzer families over flow artifacts.

Two entry points:

* :func:`check_design_run` — audit every artifact a completed
  :class:`~repro.flow.flow.DesignRun` carries (netlists, realization
  tables, placement, packing, routing, cross-stage equivalence) without
  re-executing any stage.
* :func:`check_stage` — audit one stage boundary; the flow calls this
  behind ``FlowOptions.check`` and aborts on fatal findings.

Findings are also emitted into the live observability trace (one
``check.finding`` point per finding plus ``check.findings`` counters),
so journals record what the static analysis saw for the run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable, List, Optional, Sequence, Set

from ..obs import core as _obs
from .equiv_rules import check_equivalence
from .findings import CheckError, Finding, Report
from .library_rules import check_library
from .netlist_rules import check_netlist
from .pack_rules import check_packing
from .place_rules import check_placement
from .route_rules import check_routing
from .rules import REGISTRY, Rule, filter_findings

#: Artifact-check stages, in flow order (plus the self-lint family,
#: which :mod:`repro.check.selflint` owns).
CHECK_STAGES = (
    "netlist", "library", "placement", "packing", "routing", "equivalence",
)


def _relabel(findings: Iterable[Finding], label: str) -> List[Finding]:
    """Prefix finding locations with the artifact they were found in."""
    return [replace(f, location=f"{label}: {f.location}") for f in findings]


def emit_findings(findings: Sequence[Finding]) -> None:
    """Record findings into the live trace (no-op while tracing is off)."""
    if not _obs.active():
        return
    for finding in findings:
        _obs.point(
            "check.finding",
            rule=finding.rule_id,
            severity=finding.severity.label,
            stage=finding.stage,
            location=finding.location,
            message=finding.message,
        )
        _obs.counter(f"check.findings.{finding.severity.label}")


def check_stage(
    stage: str,
    *,
    netlist: Any = None,
    arch: Any = None,
    placement: Any = None,
    packing: Any = None,
    routing: Any = None,
    net_points: Any = None,
    reference: Any = None,
    implementation: Any = None,
) -> Report:
    """Audit one stage's artifacts; see :data:`CHECK_STAGES` for names."""
    findings: List[Finding] = []
    if stage == "netlist":
        findings = check_netlist(netlist)
    elif stage == "library":
        findings = check_library(arch)
    elif stage == "placement":
        findings = check_placement(netlist, placement)
    elif stage == "packing":
        findings = check_packing(netlist, packing)
    elif stage == "routing":
        findings = check_routing(routing, net_points)
    elif stage == "equivalence":
        findings = check_equivalence(reference, implementation)
    else:
        raise ValueError(
            f"unknown check stage {stage!r} (choices: {CHECK_STAGES})"
        )
    emit_findings(findings)
    return Report(findings)


def enforce(report: Report, context: str) -> None:
    """Raise :class:`CheckError` when ``report`` has fatal findings."""
    if report.errors:
        raise CheckError(report=report, context=context)


def check_design_run(
    run: Any,
    stages: Optional[Sequence[str]] = None,
    rule_ids: Optional[Set[str]] = None,
) -> Report:
    """Audit every artifact of a completed design run.

    ``stages`` selects a subset of :data:`CHECK_STAGES`; ``rule_ids``
    further restricts which rules may report (ids validated against the
    registry by the caller, e.g. the CLI).
    """
    selected = list(stages) if stages else list(CHECK_STAGES)
    unknown = [s for s in selected if s not in CHECK_STAGES]
    if unknown:
        raise ValueError(
            f"unknown check stage(s) {unknown} (choices: {CHECK_STAGES})"
        )
    report = Report()
    packed = getattr(run, "packed", None)

    if "netlist" in selected:
        report.extend(_relabel(
            check_netlist(run.synthesis.netlist), "synthesis"
        ))
        if packed is not None and packed.netlist is not run.synthesis.netlist:
            report.extend(_relabel(check_netlist(packed.netlist), "packed"))

    if "library" in selected:
        report.extend(check_library(run.synthesis.arch))

    if "placement" in selected:
        report.extend(check_placement(
            run.physical.netlist, run.physical.placement
        ))

    if "packing" in selected and packed is not None:
        report.extend(check_packing(packed.netlist, packed.packing))

    if "routing" in selected:
        report.extend(_relabel(
            check_routing(
                run.flow_a.routing,
                run.physical.placement.net_pin_points(run.physical.netlist),
            ),
            "flow_a",
        ))
        if packed is not None:
            report.extend(_relabel(
                check_routing(
                    run.flow_b.routing,
                    packed.packing.net_pin_points(packed.netlist),
                ),
                "flow_b",
            ))

    if "equivalence" in selected:
        reference = (
            run.synthesis.pre_compaction_netlist or run.synthesis.netlist
        )
        implementation = (
            packed.netlist if packed is not None else run.physical.netlist
        )
        report.extend(check_equivalence(reference, implementation))

    filtered = Report(filter_findings(report.findings, rule_ids))
    emit_findings(filtered.findings)
    return filtered


def rule_catalog() -> List[Rule]:
    """Every registered rule, importing all analyzer families first."""
    # Import for registration side effects: selflint registers the DT
    # rules, concurrency CC001-CC004, lockwatch CC005, cachekey
    # CK001-CK004, keytrace CK005.
    from . import (  # noqa: F401
        cachekey,
        concurrency,
        keytrace,
        lockwatch,
        selflint,
    )

    return REGISTRY.all()
