"""Placement audits (family ``PL``).

Audits a :class:`~repro.place.sa.Placement` against its netlist: every
site inside the grid, at most one instance per site (the site grid is
one-cell-per-site by construction), and exact instance correspondence
— the invariants the vectorized annealer and the packing stage assume
but never re-verify.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..netlist.core import Netlist
from ..place.sa import Placement
from .findings import Finding, Severity
from .rules import rule

PL001 = rule(
    "PL001", Severity.ERROR, "placement",
    "every placed site lies inside the placement grid",
)
PL002 = rule(
    "PL002", Severity.ERROR, "placement",
    "no two instances share one placement site",
    paper_ref="Section 3.1 (detailed standard-cell placement)",
)
PL003 = rule(
    "PL003", Severity.ERROR, "placement",
    "placement and netlist instances correspond one-to-one",
)


def check_placement(
    netlist: Netlist, placement: Placement
) -> List[Finding]:
    """Run every PL rule over one placement."""
    findings: List[Finding] = []
    grid = placement.grid

    by_site: Dict[Tuple[int, int], List[str]] = {}
    for name in sorted(placement.sites):
        site = placement.sites[name]
        if not grid.contains(site):
            findings.append(PL001.finding(
                f"instance {name}",
                f"site {site} outside the {grid.cols}x{grid.rows} grid",
            ))
        by_site.setdefault(site, []).append(name)
    for site in sorted(by_site):
        names = by_site[site]
        if len(names) > 1:
            findings.append(PL002.finding(
                f"site {site}",
                f"occupied by {len(names)} instances: {names}",
                fix_hint="re-legalize the placement",
            ))

    placed = set(placement.sites)
    instances = set(netlist.instances)
    for name in sorted(instances - placed):
        findings.append(PL003.finding(
            f"instance {name}", "netlist instance has no site",
        ))
    for name in sorted(placed - instances):
        findings.append(PL003.finding(
            f"instance {name}", "placed name is not a netlist instance",
        ))
    return findings
