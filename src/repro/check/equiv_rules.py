"""Small-cone formal equivalence (family ``EQ``).

Exhaustive-simulation equivalence between two netlists that claim the
same function — typically the pre-compaction mapped netlist against the
post-pack netlist, spanning logic compaction, physical synthesis
buffering, and packing in one oracle.  For designs with at most
:data:`MAX_EXHAUSTIVE_INPUTS` primary inputs the check is *formal*:
every input pattern is applied (bit-parallel, so 256 patterns cost four
``uint64`` words per net) over several clock cycles from the common
all-zero reset state.  Wider designs fall back to dense random vectors
with a fixed seed — still deterministic, no longer complete — and the
report says so with an INFO finding.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..netlist.core import Netlist
from ..netlist.simulate import random_vectors, simulate
from .findings import Finding, Severity
from .rules import rule

#: Input-count bound for complete (exhaustive) equivalence.
MAX_EXHAUSTIVE_INPUTS = 8

#: Clock cycles simulated from the all-zero reset state.
EQUIV_CYCLES = 4

EQ001 = rule(
    "EQ001", Severity.ERROR, "equivalence",
    "pre- and post-transformation netlists agree on every primary "
    "output",
    paper_ref="Section 3.1 (compaction and packing preserve function)",
)
EQ002 = rule(
    "EQ002", Severity.ERROR, "equivalence",
    "pre- and post-transformation netlists expose identical ports",
)
EQ003 = rule(
    "EQ003", Severity.INFO, "equivalence",
    "equivalence was exhaustive (<= 8 inputs) rather than sampled",
)


def exhaustive_vectors(names: List[str]) -> Dict[str, np.ndarray]:
    """One lane per input pattern: lane ``p`` assigns bit ``i`` of ``p``
    to input ``i``; covers all ``2**len(names)`` patterns."""
    n = len(names)
    patterns = 1 << n
    n_words = max(1, (patterns + 63) // 64)
    vectors: Dict[str, np.ndarray] = {}
    for i, name in enumerate(names):
        words = np.zeros(n_words, dtype=np.uint64)
        for p in range(patterns):
            if (p >> i) & 1:
                words[p // 64] |= np.uint64(1) << np.uint64(p % 64)
        vectors[name] = words
    return vectors


def check_equivalence(
    reference: Netlist,
    implementation: Netlist,
    max_exhaustive_inputs: int = MAX_EXHAUSTIVE_INPUTS,
    n_cycles: int = EQUIV_CYCLES,
) -> List[Finding]:
    """Compare two netlists on every primary output."""
    findings: List[Finding] = []
    where = f"{reference.name} vs {implementation.name}"

    if sorted(reference.inputs) != sorted(implementation.inputs):
        findings.append(EQ002.finding(
            where,
            f"input sets differ "
            f"({len(reference.inputs)} vs {len(implementation.inputs)})",
        ))
    if sorted(reference.outputs) != sorted(implementation.outputs):
        findings.append(EQ002.finding(
            where,
            f"output sets differ "
            f"({len(reference.outputs)} vs {len(implementation.outputs)})",
        ))
    if findings:
        return findings

    n = len(reference.inputs)
    exhaustive = n <= max_exhaustive_inputs
    if exhaustive:
        vectors = exhaustive_vectors(list(reference.inputs))
        lanes = 1 << n
    else:
        vectors = random_vectors(reference.inputs, n_words=8, seed=0)
        lanes = 8 * 64
    lane_mask = _lane_mask(lanes)

    try:
        hist_ref = simulate(reference, vectors, n_cycles=n_cycles)
        hist_impl = simulate(implementation, vectors, n_cycles=n_cycles)
    except Exception as exc:  # malformed netlist: NL rules own that
        findings.append(EQ001.finding(
            where, f"simulation failed: {exc}",
            severity=Severity.ERROR,
        ))
        return findings

    for cycle, (ref_vals, impl_vals) in enumerate(
        zip(hist_ref, hist_impl)
    ):
        for out in reference.outputs:
            a = ref_vals[out] & lane_mask
            b = impl_vals[out] & lane_mask
            if not np.array_equal(a, b):
                diff = int(np.count_nonzero(a != b))
                kind = "exhaustive" if exhaustive else "sampled"
                findings.append(EQ001.finding(
                    f"output {out}",
                    f"mismatch at cycle {cycle} "
                    f"({diff} word(s) differ, {kind} stimulus)",
                    fix_hint="diff the transformation that produced "
                             "the implementation netlist",
                ))
        if any(f.rule_id == "EQ001" for f in findings):
            break

    if not findings:
        mode = (
            f"exhaustive over {1 << n} patterns" if exhaustive
            else f"sampled ({lanes} random vectors; "
                 f"{n} inputs exceed the exhaustive bound)"
        )
        findings.append(EQ003.finding(
            where, f"outputs agree for {n_cycles} cycles ({mode})",
        ))
    return findings


def _lane_mask(lanes: int) -> np.ndarray:
    """Mask keeping only the first ``lanes`` bit lanes valid."""
    n_words = max(1, (lanes + 63) // 64)
    mask = np.full(n_words, np.iinfo(np.uint64).max, dtype=np.uint64)
    tail = lanes % 64
    if tail:
        mask[-1] = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
    return mask
