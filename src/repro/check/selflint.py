"""Determinism linter over the repro codebase itself (family ``DT``).

Bit-identical reproducibility is an *asserted* property of this flow:
the stage cache, the parallel matrix runner, and the engine-equivalence
tests all assume that a (netlist, options, seed) triple fully determines
every result.  This pass walks the ``ast`` of ``src/repro`` and flags
the hazard patterns that historically break that assumption:

``DT001``
    Use of an unseeded random source — the shared module-level
    ``random.*`` functions, ``random.Random()`` with no seed, or
    ``numpy.random.default_rng()`` / legacy ``numpy.random.*`` samplers
    with no seed.
``DT002``
    Wall-clock reads (``time.time`` / ``perf_counter`` / ``strftime``,
    ``datetime.now`` ...) outside the observability subsystem, whose
    whole purpose is timestamps.  Timing that feeds *reports* is fine —
    suppress with a justification comment; timing that feeds an
    algorithm is the bug this rule exists for.
``DT003``
    Direct iteration over a set expression (``for x in set(...)``,
    ``{...}`` literals, set comprehensions, or ``list/tuple/enumerate``
    of one).  Set order depends on ``PYTHONHASHSEED`` for str keys; if
    the order reaches a placement, a cache key, or printed output, runs
    stop being reproducible.  Wrap in ``sorted(...)`` or dedup with
    ``dict.fromkeys(...)`` (insertion-ordered) instead.
``DT004``
    Mutable default argument (``def f(x=[])``) — state leaks across
    calls, so results depend on call history.
``DT005``
    Builtin ``hash()`` outside a ``__hash__`` method — salted per
    process for ``str``/``bytes``, so it must never reach persisted
    keys or ordering (use :func:`repro.flow.cache.stable_hash`).

A finding on a deliberate, justified use is suppressed with an inline
``# check: allow(DTnnn)`` comment on the offending line.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .findings import Finding, Severity
from .rules import Rule, rule

DT001 = rule(
    "DT001", Severity.ERROR, "self",
    "random sources must be explicitly seeded",
)
DT002 = rule(
    "DT002", Severity.WARNING, "self",
    "no wall-clock reads outside the observability subsystem",
)
DT003 = rule(
    "DT003", Severity.WARNING, "self",
    "no direct iteration over set expressions (hash-seed ordering)",
)
DT004 = rule(
    "DT004", Severity.ERROR, "self",
    "no mutable default arguments",
)
DT005 = rule(
    "DT005", Severity.WARNING, "self",
    "no builtin hash() outside __hash__ (salted per process)",
)

#: Module path fragments exempt from DT002: timestamps are their job
#: (obs records them; the serve job server schedules with them).
TIME_EXEMPT_PARTS = ("obs", "serve")

#: Shared-state random.* functions (the module-level global RNG).
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "getrandbits", "betavariate",
    "expovariate", "normalvariate", "seed",
}

#: Legacy numpy.random module-level samplers (global state).
_NUMPY_GLOBAL_FNS = {
    "rand", "randn", "randint", "random", "choice", "shuffle",
    "permutation", "uniform", "normal", "seed",
}

#: Wall-clock callables as (module-ish name, attribute).
_CLOCK_CALLS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("time", "strftime"), ("time", "localtime"),
    ("time", "gmtime"), ("time", "time_ns"), ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "today"), ("datetime", "utcnow"),
    ("date", "today"),
}

#: Calls through which a set expression is still "directly iterated".
_ITER_WRAPPERS = {"list", "tuple", "enumerate", "iter", "reversed"}

#: Calls that impose an order (iterating a set through them is fine)
#: or are order-insensitive reductions.
_ORDER_SAFE_WRAPPERS = {
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
}


def _dotted(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``a.b`` / ``a.b.c`` call targets as (owner, attr)."""
    if isinstance(node, ast.Attribute):
        owner = node.value
        if isinstance(owner, ast.Name):
            return owner.id, node.attr
        if isinstance(owner, ast.Attribute):
            return owner.attr, node.attr
    return None


def _is_set_expression(node: ast.AST) -> bool:
    """True when ``node`` syntactically constructs a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
            return True
        dotted = _dotted(fn)
        # dict.keys() is insertion-ordered; set ops like a.union(b) are not.
        if dotted and dotted[1] in (
            "union", "intersection", "difference", "symmetric_difference",
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # a | b etc. over sets can't be proven syntactically; skip.
        return False
    return False


class _DeterminismVisitor(ast.NodeVisitor):
    """One file's walk; collects (rule, line, message) triples."""

    def __init__(self, filename: str, time_exempt: bool) -> None:
        self.filename = filename
        self.time_exempt = time_exempt
        self.hits: List[Tuple[Rule, int, str]] = []
        self._in_hash_method = 0

    # -- DT004 ----------------------------------------------------------
    def _check_defaults(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call):
                fn = default.func
                if isinstance(fn, ast.Name) and fn.id in (
                    "list", "dict", "set", "bytearray",
                ):
                    mutable = True
            if mutable:
                self.hits.append((
                    DT004, default.lineno,
                    f"mutable default argument in {node.name}()",
                ))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        is_hash = node.name == "__hash__"
        self._in_hash_method += is_hash
        self.generic_visit(node)
        self._in_hash_method -= is_hash

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- DT001 / DT002 / DT005 ------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            owner, attr = dotted
            if owner == "random" and attr in _GLOBAL_RANDOM_FNS:
                self.hits.append((
                    DT001, node.lineno,
                    f"random.{attr}() uses the shared global RNG; "
                    f"construct random.Random(seed)",
                ))
            elif owner == "random" and attr == "Random" and not node.args:
                self.hits.append((
                    DT001, node.lineno,
                    "random.Random() without a seed",
                ))
            elif attr == "default_rng" and not node.args:
                self.hits.append((
                    DT001, node.lineno,
                    "default_rng() without a seed",
                ))
            elif owner == "random" and attr in _NUMPY_GLOBAL_FNS:
                # np.random.<sampler>: owner resolves to "random" via
                # the attribute chain np . random . <fn>.
                self.hits.append((
                    DT001, node.lineno,
                    f"numpy.random.{attr}() uses global state; "
                    f"use default_rng(seed)",
                ))
            elif dotted in _CLOCK_CALLS and not self.time_exempt:
                self.hits.append((
                    DT002, node.lineno,
                    f"wall-clock read {owner}.{attr}() in a core path",
                ))
        elif isinstance(node.func, ast.Name):
            if node.func.id == "hash" and not self._in_hash_method:
                self.hits.append((
                    DT005, node.lineno,
                    "builtin hash() is salted per process; use "
                    "repro.flow.cache.stable_hash for persisted keys",
                ))
            if node.func.id in _ITER_WRAPPERS and node.args:
                if _is_set_expression(node.args[0]):
                    self.hits.append((
                        DT003, node.lineno,
                        f"{node.func.id}() over a set expression leaks "
                        f"hash ordering",
                    ))
        self.generic_visit(node)

    # -- DT003 ----------------------------------------------------------
    def _check_iter(self, iterable: ast.AST) -> None:
        if _is_set_expression(iterable):
            self.hits.append((
                DT003, iterable.lineno,
                "iteration over a set expression leaks hash ordering",
            ))

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Line -> rule ids allowed by ``# check: allow(XXnnn)`` comments.

    Shared by every codebase-lint family (DT here, CC in
    :mod:`repro.check.concurrency`): a justified finding is silenced
    with an inline ``# check: allow(<rule id>)`` on the offending line.
    """
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        marker = "# check: allow("
        index = line.find(marker)
        if index < 0:
            continue
        inner = line[index + len(marker):]
        close = inner.find(")")
        if close < 0:
            continue
        ids = {part.strip() for part in inner[:close].split(",")}
        allowed[lineno] = {i for i in ids if i}
    return allowed


def lint_source(
    source: str, filename: str = "<string>"
) -> List[Finding]:
    """Lint one module's source text; returns DT findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [DT001.finding(
            f"{filename}:{exc.lineno or 0}",
            f"not parseable: {exc.msg}",
            severity=Severity.ERROR,
        )]
    parts = Path(filename).parts
    time_exempt = any(part in TIME_EXEMPT_PARTS for part in parts)
    visitor = _DeterminismVisitor(filename, time_exempt)
    visitor.visit(tree)
    allowed = suppressed_lines(source)
    findings: List[Finding] = []
    for rule_obj, lineno, message in visitor.hits:
        if rule_obj.rule_id in allowed.get(lineno, ()):
            continue
        findings.append(rule_obj.finding(f"{filename}:{lineno}", message))
    return findings


def default_lint_root() -> Path:
    """``src/repro`` as installed: the package directory itself."""
    return Path(__file__).resolve().parent.parent


def lint_paths(
    paths: Optional[Iterable[Path]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (default: the package)."""
    roots = [Path(p) for p in paths] if paths else [default_lint_root()]
    findings: List[Finding] = []
    for root in roots:
        files: Sequence[Path]
        if root.is_file():
            files = [root]
        else:
            files = sorted(root.rglob("*.py"))
        for path in files:
            source = path.read_text(encoding="utf-8")
            findings.extend(lint_source(source, filename=str(path)))
    return findings
