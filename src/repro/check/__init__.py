"""Cross-stage static verification for the VPGA flow (``repro.check``).

Two analyzer families share one findings model:

* **Artifact checks** audit the outputs of each flow stage — netlists,
  realization tables, placements, packings, routing results — without
  re-executing the stage, plus a small-cone formal equivalence oracle.
* **Self checks** lint the ``repro`` source tree itself:
  :mod:`repro.check.selflint` for determinism hazards (``DT``),
  :mod:`repro.check.concurrency` for lock-order inversions, locks held
  across blocking calls, unguarded shared writes, and condition-variable
  misuse (``CC``), validated at runtime by the opt-in
  :mod:`repro.check.lockwatch` sanitizer (``REPRO_LOCKWATCH=1``), and
  :mod:`repro.check.cachekey` for cache-key coherence and stage purity
  (``CK``) — per-stage options read-sets diffed against the
  ``stage_cache_key`` chain — validated at runtime by the opt-in
  :mod:`repro.check.keytrace` tracer (``REPRO_KEYTRACE=1``).

Entry points: ``repro check`` on the CLI, ``FlowOptions(check=True)``
inside the flow, or the functions re-exported here.
"""

from .findings import CheckError, Finding, Report, Severity
from .rules import REGISTRY, Rule, RuleRegistry, filter_findings, rule
from .netlist_rules import check_netlist
from .library_rules import (
    check_library,
    check_realization,
    check_realization_table,
)
from .pack_rules import check_packing
from .place_rules import check_placement
from .route_rules import check_routing
from .equiv_rules import check_equivalence
from .selflint import lint_paths, lint_source
from .concurrency import analyze_paths, analyze_source
from .lockwatch import findings_from_journal
from .cachekey import (
    StageKeyModel,
    analyze_cache_keys,
    static_stage_model,
)
from .keytrace import findings_from_keytrace_journal
from .runner import (
    CHECK_STAGES,
    check_design_run,
    check_stage,
    enforce,
    rule_catalog,
)

__all__ = [
    "CheckError",
    "Finding",
    "Report",
    "Severity",
    "REGISTRY",
    "Rule",
    "RuleRegistry",
    "filter_findings",
    "rule",
    "check_netlist",
    "check_library",
    "check_realization",
    "check_realization_table",
    "check_packing",
    "check_placement",
    "check_routing",
    "check_equivalence",
    "lint_paths",
    "lint_source",
    "analyze_paths",
    "analyze_source",
    "findings_from_journal",
    "StageKeyModel",
    "analyze_cache_keys",
    "static_stage_model",
    "findings_from_keytrace_journal",
    "CHECK_STAGES",
    "check_design_run",
    "check_stage",
    "enforce",
    "rule_catalog",
]
