"""Packing-legality analysis (family ``PK``).

Audits a :class:`~repro.pack.quadrisection.PackingResult` against the
netlist it claims to legalize and the PLB architecture's resource model
(:mod:`repro.pack.resources`): per-PLB slot budgets (MUX / ND3WI / DFF /
buffer counts from Figure 1 and Figure 4), slot-compatibility of every
hosted cell, array bounds, one-to-one netlist coverage, polarity
consistency of configs hosted in with-inversion slots (the Benschop
phase-assignment invariant), and an intra-PLB pin-budget proxy for the
Figure-4 topology's local routability.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..cells.celltypes import _polarity_variants, nand_table
from ..core.plb import PLBArchitecture
from ..netlist.core import Netlist
from ..pack.quadrisection import PackingResult
from .findings import Finding, Severity
from .rules import rule

PK001 = rule(
    "PK001", Severity.ERROR, "packing",
    "per-PLB slot occupancy never exceeds the architecture's budget",
    paper_ref="Figures 1 and 4 (component counts per PLB)",
)
PK002 = rule(
    "PK002", Severity.ERROR, "packing",
    "every instance sits in a slot compatible with its cell type",
    paper_ref="Section 3.2 (slot compatibility, e.g. ND2WI in a mux slot)",
)
PK003 = rule(
    "PK003", Severity.ERROR, "packing",
    "every assignment targets a PLB inside the array bounds",
)
PK004 = rule(
    "PK004", Severity.ERROR, "packing",
    "assignments and netlist instances correspond one-to-one",
    paper_ref="Section 3.1 (packing allots every component a legal slot)",
)
PK005 = rule(
    "PK005", Severity.ERROR, "packing",
    "configs hosted in with-inversion slots are NAND polarity variants",
    paper_ref="Section 2 (programmable inversion; Benschop phase "
              "assignment)",
)
PK006 = rule(
    "PK006", Severity.WARNING, "packing",
    "distinct nets incident to one PLB fit its pin budget",
    paper_ref="Figure 4 (intra-PLB routability of the local topology)",
)

#: Slots whose physical cell offers programmable input/output inversion.
_WI_SLOTS = ("ND2WI", "ND3WI")


def plb_pin_budget(arch: PLBArchitecture) -> int:
    """Distinct-net capacity of one PLB: every component pin + output."""
    budget = 0
    for slot, count in arch.slots.items():
        cell = arch.slot_cells[slot]
        budget += count * (cell.n_inputs + 1)
    return budget


def check_packing(
    netlist: Netlist, packing: PackingResult
) -> List[Finding]:
    """Run every PK rule over one packing outcome."""
    findings: List[Finding] = []
    arch = packing.arch

    # --- coverage (PK004) ----------------------------------------------
    assigned = set(packing.assignments)
    instance_names = set(netlist.instances)
    for name in sorted(instance_names - assigned):
        findings.append(PK004.finding(
            f"instance {name}", "netlist instance has no slot assignment",
        ))
    for name in sorted(assigned - instance_names):
        findings.append(PK004.finding(
            f"instance {name}", "assignment names an unknown instance",
        ))

    # --- per-assignment legality (PK002, PK003, PK005) -----------------
    occupancy: Dict[Tuple[int, int], Dict[str, int]] = {}
    incident_nets: Dict[Tuple[int, int], Set[str]] = {}
    for name in sorted(assigned & instance_names):
        assignment = packing.assignments[name]
        inst = netlist.instances[name]
        plb, slot = assignment.plb, assignment.slot
        if not (0 <= plb[0] < packing.cols and 0 <= plb[1] < packing.rows):
            findings.append(PK003.finding(
                f"instance {name}",
                f"assigned to PLB {plb} outside the "
                f"{packing.cols}x{packing.rows} array",
            ))
            continue
        occupancy.setdefault(plb, {})[slot] = (
            occupancy.get(plb, {}).get(slot, 0) + 1
        )
        nets = incident_nets.setdefault(plb, set())
        nets.update(inst.pin_nets.values())
        if slot not in arch.hosting_slots(inst.cell.name):
            findings.append(PK002.finding(
                f"instance {name}",
                f"cell {inst.cell.name} cannot occupy slot {slot!r} "
                f"(allowed: {list(arch.hosting_slots(inst.cell.name))})",
                fix_hint="re-pack with the architecture's "
                         "compatibility table",
            ))
        if slot in _WI_SLOTS and inst.config is not None:
            n = inst.config.n_inputs
            if n in (2, 3):
                if inst.config not in _polarity_variants(nand_table(n)):
                    findings.append(PK005.finding(
                        f"instance {name}",
                        f"config {inst.config!r} in WI slot {slot} is "
                        f"not a polarity variant of NAND{n}",
                        fix_hint="host the cell in a mux or LUT slot",
                    ))

    # --- per-PLB budgets (PK001, PK006) --------------------------------
    capacity = arch.capacity()
    budget = plb_pin_budget(arch)
    for plb in sorted(occupancy):
        for slot, used in sorted(occupancy[plb].items()):
            if used > capacity.get(slot, 0):
                findings.append(PK001.finding(
                    f"plb {plb}",
                    f"slot {slot!r} holds {used} instances, budget is "
                    f"{capacity.get(slot, 0)}",
                    fix_hint="grow the array (pack_headroom) or re-pack",
                ))
        incident = len(incident_nets.get(plb, ()))
        if incident > budget:
            findings.append(PK006.finding(
                f"plb {plb}",
                f"{incident} distinct incident nets exceed the "
                f"{budget}-pin budget",
            ))
    return findings
