"""K-feasible cut enumeration on the AIG.

A *cut* of node ``v`` is a set of nodes (leaves) such that every path from
the inputs to ``v`` passes through a leaf; it is K-feasible when it has at
most K leaves.  Cuts are enumerated bottom-up by merging fanin cut sets,
with dominated-cut pruning (a cut is dominated if a subset of it is also a
cut) and a per-node cap.

``tree_mode`` restricts enumeration to fanout-free regions: a fanin with
external fanout contributes only its trivial cut, which reproduces the
tree-boundary behaviour of a conventional (Design Compiler-style) mapper —
the behaviour the paper's FlowMap-based compaction then improves on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..logic.truthtable import TruthTable
from .aig import AIG, lit_inverted, lit_node

Cut = Tuple[int, ...]  # sorted leaf node ids

#: Per-node cut cap; K=3 cut sets are small, this is a safety valve.
DEFAULT_CUT_CAP = 24


def fanout_counts(aig: AIG) -> Dict[int, int]:
    """Fanout count per node, counting output references."""
    counts: Dict[int, int] = {}
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        counts[lit_node(f0)] = counts.get(lit_node(f0), 0) + 1
        counts[lit_node(f1)] = counts.get(lit_node(f1), 0) + 1
    for _, literal in aig.outputs:
        counts[lit_node(literal)] = counts.get(lit_node(literal), 0) + 1
    return counts


def _merge(a: Cut, b: Cut, k: int) -> Cut | None:
    merged = tuple(sorted(set(a) | set(b)))
    return merged if len(merged) <= k else None


def _prune(cuts: List[Cut], cap: int) -> List[Cut]:
    """Remove dominated cuts, keep at most ``cap`` (smallest first)."""
    cuts = sorted(set(cuts), key=lambda c: (len(c), c))
    kept: List[Cut] = []
    for cut in cuts:
        cut_set = set(cut)
        if any(set(existing) <= cut_set for existing in kept):
            continue
        kept.append(cut)
        if len(kept) >= cap:
            break
    return kept


def enumerate_cuts(
    aig: AIG,
    k: int = 3,
    cap: int = DEFAULT_CUT_CAP,
    tree_mode: bool = False,
) -> Dict[int, List[Cut]]:
    """All K-feasible cuts per node (including the trivial cut)."""
    fanouts = fanout_counts(aig) if tree_mode else {}
    cuts: Dict[int, List[Cut]] = {0: [(0,)]}
    for node in range(1, aig.n_inputs + 1):
        cuts[node] = [(node,)]
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        n0, n1 = lit_node(f0), lit_node(f1)
        if tree_mode and fanouts.get(n0, 0) > 1:
            set0: Sequence[Cut] = [(n0,)]
        else:
            set0 = cuts[n0]
        if tree_mode and fanouts.get(n1, 0) > 1:
            set1: Sequence[Cut] = [(n1,)]
        else:
            set1 = cuts[n1]
        merged: List[Cut] = []
        for c0 in set0:
            for c1 in set1:
                candidate = _merge(c0, c1, k)
                if candidate is not None:
                    merged.append(candidate)
        merged.append((node,))
        cuts[node] = _prune(merged, cap)
    return cuts


def cut_function(aig: AIG, node: int, cut: Cut) -> TruthTable:
    """Truth table of ``node`` over the cut leaves (leaf order = ``cut``).

    Constant leaves (node 0) are evaluated as false.
    """
    n = len(cut)
    leaf_index = {leaf: i for i, leaf in enumerate(cut)}
    cache: Dict[int, TruthTable] = {}

    def table_of(current: int) -> TruthTable:
        if current in cache:
            return cache[current]
        if current in leaf_index:
            result = TruthTable.input_var(n, leaf_index[current])
        elif current == 0:
            result = TruthTable.constant(n, False)
        elif aig.is_input(current):
            raise ValueError(f"input node {current} escapes cut {cut} of {node}")
        else:
            f0, f1 = aig.fanins(current)
            t0 = table_of(lit_node(f0))
            if lit_inverted(f0):
                t0 = ~t0
            t1 = table_of(lit_node(f1))
            if lit_inverted(f1):
                t1 = ~t1
            result = t0 & t1
        cache[current] = result
        return result

    return table_of(node)
