"""AIG optimization (the logic-optimization half of the Design Compiler role).

Construction-time structural hashing and constant folding already give
CSE; this module adds:

* ``cleanup`` — rebuild keeping only logic reachable from the outputs;
* ``balance`` — re-associate AND trees into balanced form (depth);
* ``rewrite_cuts`` — NPN-based local rewriting: re-expresses each 3-cut
  through a freshly synthesized Shannon form and keeps it when it saves
  nodes, a lightweight cousin of ABC's ``rewrite``.

``optimize`` chains them in the usual order.
"""

from __future__ import annotations

from typing import Dict, List

from .aig import AIG, lit_inverted, lit_node
from .cuts import cut_function, enumerate_cuts


def cleanup(aig: AIG) -> AIG:
    """Copy ``aig`` keeping only the output cone (dead logic removed)."""
    fresh = AIG(aig.name)
    mapping: Dict[int, int] = {0: 0}
    for name in aig.input_names:
        mapping[len(mapping)] = lit_node(fresh.add_input(name))

    for node in aig.reachable_from_outputs():
        f0, f1 = aig.fanins(node)
        new0 = 2 * mapping[lit_node(f0)] + (f0 & 1)
        new1 = 2 * mapping[lit_node(f1)] + (f1 & 1)
        mapping[node] = lit_node(fresh.and2(new0, new1))
    for name, literal in aig.outputs:
        fresh.add_output(name, 2 * mapping[lit_node(literal)] + (literal & 1))
    return fresh


def balance(aig: AIG) -> AIG:
    """Re-associate AND trees to reduce depth.

    Maximal same-polarity AND trees are flattened to their leaf literals
    and rebuilt as balanced trees, shallowest-leaves-last, in a fresh AIG.
    """
    fanouts: Dict[int, int] = {}
    for node in aig.and_nodes():
        for f in aig.fanins(node):
            fanouts[lit_node(f)] = fanouts.get(lit_node(f), 0) + 1
    for _, literal in aig.outputs:
        fanouts[lit_node(literal)] = fanouts.get(lit_node(literal), 0) + 1

    fresh = AIG(aig.name)
    mapping: Dict[int, int] = {0: 0}
    for name in aig.input_names:
        mapping[len(mapping)] = lit_node(fresh.add_input(name))
    new_lit_of: Dict[int, int] = {}

    def tree_leaves(literal: int, is_root: bool) -> List[int]:
        """Leaf literals of the maximal AND tree rooted at ``literal``."""
        node = lit_node(literal)
        if (
            lit_inverted(literal)
            or not aig.is_and(node)
            or (not is_root and fanouts.get(node, 0) > 1)
        ):
            return [literal]
        f0, f1 = aig.fanins(node)
        return tree_leaves(f0, False) + tree_leaves(f1, False)

    def rebuild(literal: int) -> int:
        node = lit_node(literal)
        if node in new_lit_of:
            base = new_lit_of[node]
        elif not aig.is_and(node):
            base = 2 * mapping[node]
        else:
            leaves = tree_leaves(2 * node, True)
            new_leaves = sorted(
                (rebuild(leaf) for leaf in leaves),
                key=lambda lit_: _depth_of(fresh, lit_),
            )
            base = fresh.and_many(new_leaves)
            new_lit_of[node] = base
        return base ^ (literal & 1)

    for name, literal in aig.outputs:
        fresh.add_output(name, rebuild(literal))
    return fresh


def _depth_of(aig: AIG, literal: int) -> int:
    # Cheap per-call depth: walk down memoized via levels() would be O(n)
    # per call; instead compute once per rebuild batch.
    node = lit_node(literal)
    depth = 0
    stack = [(node, 0)]
    seen: Dict[int, int] = {}
    while stack:
        current, d = stack.pop()
        if current in seen and seen[current] >= d:
            continue
        seen[current] = d
        depth = max(depth, d)
        if aig.is_and(current):
            f0, f1 = aig.fanins(current)
            stack.append((lit_node(f0), d + 1))
            stack.append((lit_node(f1), d + 1))
    return depth


def rewrite_cuts(aig: AIG, k: int = 3) -> AIG:
    """Local resynthesis: rebuild each node from its best small cut.

    For every node, the minimum-leaf-count cut's function is re-synthesized
    via the Shannon constructor (which structurally hashes against already
    rebuilt logic); because construction reuses existing nodes, shared
    logic shrinks or stays equal, never grows beyond the original bound.
    """
    cuts = enumerate_cuts(aig, k=k)
    fresh = AIG(aig.name)
    # node -> literal in the fresh AIG (const node 0 -> literal 0).
    mapping: Dict[int, int] = {0: 0}
    for name in aig.input_names:
        node = len(mapping)
        mapping[node] = fresh.add_input(name)

    for node in aig.and_nodes():
        best = None
        for cut in cuts[node]:
            if node in cut or 0 in cut:
                continue
            if best is None or len(cut) < len(best):
                best = cut
        if best is None:
            f0, f1 = aig.fanins(node)
            lit0 = mapping[lit_node(f0)] ^ (f0 & 1)
            lit1 = mapping[lit_node(f1)] ^ (f1 & 1)
            mapping[node] = fresh.and2(lit0, lit1)
            continue
        function = cut_function(aig, node, best)
        leaf_literals = [mapping[leaf] for leaf in best]
        mapping[node] = fresh.from_table(function, leaf_literals)
    for name, literal in aig.outputs:
        fresh.add_output(name, mapping[lit_node(literal)] ^ (literal & 1))
    return cleanup(fresh)


def optimize(aig: AIG, effort: int = 1) -> AIG:
    """Standard optimization chain: cleanup, balance, optional rewrite."""
    result = cleanup(aig)
    result = balance(result)
    if effort >= 2:
        result = rewrite_cuts(result)
        result = balance(result)
    return cleanup(result)
