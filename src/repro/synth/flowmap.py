"""FlowMap: depth-optimal K-feasible cut computation via max-flow/min-cut.

The paper's logic-compaction step "finds clusters of logic or supernodes
corresponding to functions with 3 or less inputs ... using a maxflow-
mincut algorithm similar to Flowmap [5]".  This module implements that
algorithm (Cong & Ding, 1994) on an arbitrary DAG:

* labels are computed in topological order; ``label(t)`` is the optimal
  mapping depth of ``t`` in unit-delay K-input clusters;
* for each node, the existence of a height-``(l_max - 1)`` K-feasible cut
  is decided by max-flow on the node-split cone network, with every node
  in the cone carrying unit capacity and all nodes of label ``l_max``
  collapsed into the sink;
* the min-cut (the supernode's input boundary) is recovered from the
  residual graph.

Cones are truncated at ``cone_cap`` nodes for very deep nodes; past the
cap, nodes at the frontier are treated as pseudo-sources (a standard
practical approximation that can only make labels conservative).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Sequence, Set, Tuple

Node = Hashable

#: Default cone-size cap before frontier truncation kicks in.
DEFAULT_CONE_CAP = 3000


@dataclass
class FlowMapResult:
    """Labels and best cuts for every node."""

    labels: Dict[Node, int]
    cuts: Dict[Node, FrozenSet[Node]]

    def depth(self) -> int:
        return max(self.labels.values(), default=0)


class FlowMap:
    """FlowMap labeling over a DAG given by fanin lists.

    Parameters
    ----------
    fanins:
        Node -> fanin nodes.  Nodes absent from the mapping (or mapping to
        an empty sequence) are sources with label 0.
    k:
        Cluster input bound (3 for the paper's supernodes).
    """

    def __init__(
        self,
        fanins: Mapping[Node, Sequence[Node]],
        k: int = 3,
        cone_cap: int = DEFAULT_CONE_CAP,
    ):
        self.fanins: Dict[Node, Tuple[Node, ...]] = {
            node: tuple(fs) for node, fs in fanins.items()
        }
        self.k = k
        self.cone_cap = cone_cap
        self.labels: Dict[Node, int] = {}
        self.cuts: Dict[Node, FrozenSet[Node]] = {}

    # ------------------------------------------------------------------
    def _topological_order(self) -> List[Node]:
        indegree: Dict[Node, int] = {}
        dependents: Dict[Node, List[Node]] = {}
        nodes: Set[Node] = set(self.fanins)
        for node, fanins in self.fanins.items():
            for fanin in fanins:
                nodes.add(fanin)
        for node in nodes:
            indegree.setdefault(node, 0)
        for node, fanins in self.fanins.items():
            unique_fanins = dict.fromkeys(fanins)
            for fanin in unique_fanins:
                dependents.setdefault(fanin, []).append(node)
            indegree[node] = len(unique_fanins)
        queue = deque(sorted((n for n, d in indegree.items() if d == 0), key=repr))
        order: List[Node] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for dep in dependents.get(node, ()):  # pragma: no branch
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    queue.append(dep)
        if len(order) != len(nodes):
            raise ValueError("cycle detected in FlowMap input graph")
        return order

    def is_source(self, node: Node) -> bool:
        return not self.fanins.get(node)

    # ------------------------------------------------------------------
    def compute(self) -> FlowMapResult:
        """Compute labels and min-height K-feasible cuts for all nodes."""
        for node in self._topological_order():
            if self.is_source(node):
                self.labels[node] = 0
                self.cuts[node] = frozenset({node})
                continue
            fanin_nodes = self.fanins[node]
            l_max = max(self.labels[f] for f in fanin_nodes)
            cut = self._min_height_cut(node, l_max)
            if cut is not None:
                self.labels[node] = l_max
                self.cuts[node] = cut
            else:
                self.labels[node] = l_max + 1
                self.cuts[node] = frozenset(fanin_nodes)
        return FlowMapResult(labels=dict(self.labels), cuts=dict(self.cuts))

    # ------------------------------------------------------------------
    def _collect_cone(self, target: Node) -> Set[Node]:
        """Transitive fanin cone of ``target`` (inclusive), capped."""
        cone: Set[Node] = set()
        stack = [target]
        while stack:
            node = stack.pop()
            if node in cone:
                continue
            cone.add(node)
            if len(cone) >= self.cone_cap:
                break
            stack.extend(self.fanins.get(node, ()))
        return cone

    def _min_height_cut(self, target: Node, l_max: int) -> FrozenSet[Node] | None:
        """A K-feasible cut of height ``l_max - 1``, or ``None``.

        Builds the node-split flow network over the cone of ``target``:
        nodes labeled ``l_max`` (plus ``target``) collapse into the sink;
        every other cone node has capacity 1; sources (or frontier nodes
        past the cone cap) attach to the super-source.
        """
        cone = self._collect_cone(target)
        sink_side = {
            node for node in cone
            if node == target or self.labels.get(node, 0) == l_max
        }
        # If cone truncation cut a sink-side node off from its fanins, a
        # source-to-sink path is missing from the network; be conservative.
        for node in sink_side:
            if any(f not in cone for f in self.fanins.get(node, ())):
                return None
        # Interior nodes: capacity 1, split into (node, 'in') / (node, 'out').
        # Residual graph as adjacency with capacities.
        capacity: Dict[Tuple, Dict[Tuple, int]] = {}

        def add_edge(u: Tuple, v: Tuple, cap: int) -> None:
            capacity.setdefault(u, {})[v] = capacity.setdefault(u, {}).get(v, 0) + cap
            capacity.setdefault(v, {}).setdefault(u, 0)

        SOURCE = ("$source$",)
        SINK = ("$sink$",)
        INF = 1 << 20

        for node in cone:
            if node in sink_side:
                continue
            add_edge((node, "in"), (node, "out"), 1)
            fanins = self.fanins.get(node, ())
            is_frontier = (
                not fanins
                or any(f not in cone for f in fanins)
            )
            if is_frontier:
                add_edge(SOURCE, (node, "in"), INF)
        for node in cone:
            for fanin in self.fanins.get(node, ()):
                if fanin not in cone:
                    continue
                head = SINK if node in sink_side else (node, "in")
                if fanin in sink_side:
                    continue  # sink-side internal edge, irrelevant to the cut
                add_edge((fanin, "out"), head, INF)

        # BFS augmenting paths; stop once flow exceeds k.
        flow = 0
        while flow <= self.k:
            parent: Dict[Tuple, Tuple] = {SOURCE: SOURCE}
            queue = deque([SOURCE])
            while queue and SINK not in parent:
                u = queue.popleft()
                for v, cap in capacity.get(u, {}).items():
                    if cap > 0 and v not in parent:
                        parent[v] = u
                        queue.append(v)
            if SINK not in parent:
                break
            # Unit bottleneck (all finite capacities are 1).
            v = SINK
            while v != SOURCE:
                u = parent[v]
                capacity[u][v] -= 1
                capacity[v][u] += 1
                v = u
            flow += 1
        if flow > self.k:
            return None

        # Min cut: interior nodes whose 'in' side is reachable in the
        # residual graph but whose 'out' side is not.
        reachable: Set[Tuple] = set()
        queue = deque([SOURCE])
        reachable.add(SOURCE)
        while queue:
            u = queue.popleft()
            for v, cap in capacity.get(u, {}).items():
                if cap > 0 and v not in reachable:
                    reachable.add(v)
                    queue.append(v)
        cut = set()
        for node in cone:
            if node in sink_side:
                continue
            if (node, "in") in reachable and (node, "out") not in reachable:
                cut.add(node)
        if not cut or len(cut) > self.k:
            return None
        return frozenset(cut)


def flowmap_labels(
    fanins: Mapping[Node, Sequence[Node]], k: int = 3
) -> FlowMapResult:
    """One-shot FlowMap computation."""
    return FlowMap(fanins, k=k).compute()
