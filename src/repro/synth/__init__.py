"""Logic synthesis substrate: AIG, optimization, mapping, compaction."""

from .aig import AIG, CONST0_LIT, CONST1_LIT, lit, lit_inverted, lit_node, lit_not
from .cuts import cut_function, enumerate_cuts, fanout_counts
from .flowmap import FlowMap, FlowMapResult, flowmap_labels
from .from_netlist import CombCore, DFFRecord, extract_core
from .optimize import balance, cleanup, optimize, rewrite_cuts
from .realize import Realization, Step, baseline_table, compaction_table, lookup
from .techmap import TechmapError, map_core
from .compaction import CompactionReport, compact, compact_to_fixpoint

__all__ = [
    "AIG",
    "CONST0_LIT",
    "CONST1_LIT",
    "lit",
    "lit_inverted",
    "lit_node",
    "lit_not",
    "cut_function",
    "enumerate_cuts",
    "fanout_counts",
    "FlowMap",
    "FlowMapResult",
    "flowmap_labels",
    "CombCore",
    "DFFRecord",
    "extract_core",
    "balance",
    "cleanup",
    "optimize",
    "rewrite_cuts",
    "Realization",
    "Step",
    "baseline_table",
    "compaction_table",
    "lookup",
    "TechmapError",
    "map_core",
    "CompactionReport",
    "compact",
    "compact_to_fixpoint",
]
