"""Regularity-driven logic compaction (paper Section 3.1).

"Technology-mapping is followed by a compaction algorithm that reduces the
area of the netlist by better utilizing the given PLB architecture.  Our
algorithm first finds clusters of logic or supernodes corresponding to
functions with 3 or less than 3 inputs.  This is done using a maxflow-
mincut algorithm similar to Flowmap [5].  It then matches these computed
supernodes to the appropriate combination of PLB components."

Implementation
--------------
1. FlowMap (K=3) runs over the mapped component netlist's instance graph,
   giving every instance a min-height 3-feasible cut (its *supernode*).
2. Supernodes are visited outputs-first.  A supernode is *collapsed* when
   the best-matching PLB component structure (ND3 / MX / NDMX / XOAMX /
   XOANDMX / LUT3 / ...) is smaller than the cells it replaces — counting
   only cells used exclusively inside the supernode, so sharing is never
   broken and total area monotonically decreases.
3. The accepted cover is rebuilt into a fresh netlist; equivalence is
   guaranteed by construction (cluster functions are exact truth tables)
   and re-checked by the test suite via simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cells.library import Library
from ..logic.truthtable import TruthTable
from ..netlist.core import Netlist
from ..netlist.stats import total_area
from .flowmap import FlowMap
from .realize import Realization, compaction_table, lookup

#: Pseudo-node prefix for source nets (primary inputs, DFF outputs).
_SRC = "$src$"


@dataclass
class CompactionReport:
    """Outcome of one compaction run."""

    applied: bool
    area_before: float
    area_after: float
    supernodes_collapsed: int
    structure_histogram: Dict[str, int]

    @property
    def reduction(self) -> float:
        """Fractional gate-area reduction (the paper's ~15% metric)."""
        if self.area_before == 0:
            return 0.0
        return 1.0 - self.area_after / self.area_before


def _instance_graph(netlist: Netlist) -> Dict[str, Tuple[str, ...]]:
    """FlowMap fanin graph: combinational instances + net pseudo-sources."""
    fanins: Dict[str, Tuple[str, ...]] = {}
    for inst in netlist.combinational_instances():
        fanin_nodes = []
        for net in inst.input_nets():
            driver = netlist.driver_of(net)
            if driver is None or driver.is_sequential:
                fanin_nodes.append(_SRC + net)
            else:
                fanin_nodes.append(driver.name)
        fanins[inst.name] = tuple(dict.fromkeys(fanin_nodes))
    return fanins


def _node_net(netlist: Netlist, node: str) -> str:
    """The net carried by a FlowMap node (instance output or source net)."""
    if node.startswith(_SRC):
        return node[len(_SRC):]
    return netlist.instances[node].output_net


def _cluster_function(
    netlist: Netlist, root: str, leaf_nets: Sequence[str]
) -> Optional[TruthTable]:
    """Truth table of instance ``root``'s output over ``leaf_nets``."""
    n = len(leaf_nets)
    index = {net: i for i, net in enumerate(leaf_nets)}
    cache: Dict[str, TruthTable] = {}

    def table_of(net: str) -> Optional[TruthTable]:
        if net in index:
            return TruthTable.input_var(n, index[net])
        if net in cache:
            return cache[net]
        driver = netlist.driver_of(net)
        if driver is None or driver.is_sequential:
            return None
        assert driver.config is not None
        sub_tables = []
        for input_net in driver.input_nets():
            sub = table_of(input_net)
            if sub is None:
                return None
            sub_tables.append(sub)
        result = driver.config.compose(sub_tables)
        cache[net] = result
        return result

    return table_of(netlist.instances[root].output_net)


def _exclusive_members(
    netlist: Netlist,
    root: str,
    interior: Set[str],
    outputs: Set[str],
    consumed: Set[str],
) -> Set[str]:
    """Interior instances replaceable without breaking external sharing.

    An interior instance is exclusive when every sink of its output net is
    inside the supernode and its net is not an external contract (primary
    output or register data pin).  Exclusivity is computed transitively,
    output-side first: an interior node whose only outside-sink is another
    non-exclusive interior node remains non-exclusive.
    """
    exclusive = {
        name
        for name in interior
        if name not in consumed
        and netlist.instances[name].output_net not in outputs
    }
    # Demote to a fixed point: a member stays exclusive only while every
    # sink of its output either is the (replaced) root, another exclusive
    # member, or an instance already consumed by an earlier supernode.
    changed = True
    while changed:
        changed = False
        for name in list(exclusive):
            out_net = netlist.instances[name].output_net
            for sink, _pin in netlist.nets[out_net].sinks:
                if sink != root and sink not in exclusive and sink not in consumed:
                    exclusive.discard(name)
                    changed = True
                    break
    return exclusive


def _enumerate_net_cuts(
    netlist: Netlist, k: int = 3, cap: int = 16
) -> Dict[str, List[Tuple[str, ...]]]:
    """K-feasible cuts (as net tuples) per combinational output net."""
    cuts: Dict[str, List[Tuple[str, ...]]] = {}

    def cuts_of_net(net: str) -> List[Tuple[str, ...]]:
        driver = netlist.driver_of(net)
        if driver is None or driver.is_sequential:
            return [(net,)]
        return cuts.get(net, [(net,)])

    for inst in netlist.topological_order():
        input_nets = tuple(dict.fromkeys(inst.input_nets()))
        merged: List[Tuple[str, ...]] = [input_nets] if len(input_nets) <= k else []
        partial: List[Tuple[str, ...]] = [()]
        for net in input_nets:
            options = cuts_of_net(net) + [(net,)]
            nxt: List[Tuple[str, ...]] = []
            for base in partial:
                for option in options:
                    union = tuple(sorted(set(base) | set(option)))
                    if len(union) <= k:
                        nxt.append(union)
            partial = list(dict.fromkeys(nxt))[: cap * 4]
        merged.extend(partial)
        # Dominance pruning and cap.
        unique = sorted(set(m for m in merged if m), key=lambda c: (len(c), c))
        kept: List[Tuple[str, ...]] = []
        for candidate in unique:
            cand_set = set(candidate)
            if any(set(existing) <= cand_set for existing in kept):
                continue
            kept.append(candidate)
            if len(kept) >= cap:
                break
        cuts[inst.output_net] = kept
    return cuts


def _cluster_interior(
    netlist: Netlist, root: str, leaf_nets: Sequence[str]
) -> Optional[Set[str]]:
    """Instances strictly between the cut and ``root`` (root excluded)."""
    leaves = set(leaf_nets)
    interior: Set[str] = set()
    stack = list(netlist.instances[root].input_nets())
    while stack:
        net = stack.pop()
        if net in leaves:
            continue
        driver = netlist.driver_of(net)
        if driver is None or driver.is_sequential:
            return None  # cone escapes the cut
        if driver.name in interior:
            continue
        interior.add(driver.name)
        stack.extend(driver.input_nets())
    return interior


def compact(
    netlist: Netlist,
    arch: str,
    library: Library,
    k: int = 3,
) -> Tuple[Netlist, CompactionReport]:
    """Run logic compaction; returns (netlist, report).

    The returned netlist is the compacted one when it improves total gate
    area, otherwise the input netlist unchanged (``report.applied`` says
    which).
    """
    area_before = total_area(netlist)
    table = compaction_table(library)
    fanins = _instance_graph(netlist)
    flow_result = FlowMap(fanins, k=k).compute()

    outputs = set(netlist.outputs)
    order = netlist.topological_order()
    net_cuts = _enumerate_net_cuts(netlist, k=k)
    accepted: Dict[str, Tuple[Tuple[str, ...], Realization]] = {}
    consumed: Set[str] = set()
    histogram: Dict[str, int] = {}

    for inst in reversed(order):
        if inst.name in consumed:
            continue
        candidates: List[Tuple[str, ...]] = []
        cut = flow_result.cuts.get(inst.name)
        if cut is not None and cut != frozenset({inst.name}):
            candidates.append(
                tuple(sorted(_node_net(netlist, node) for node in cut))
            )
        for enumerated in net_cuts.get(inst.output_net, ()):  # pragma: no branch
            if enumerated not in candidates and set(enumerated) != {inst.output_net}:
                candidates.append(enumerated)

        best: Optional[Tuple[float, Tuple[str, ...], Realization]] = None
        for cut_nets in candidates:
            interior = _cluster_interior(netlist, inst.name, cut_nets)
            if interior is None:
                continue
            function = _cluster_function(netlist, inst.name, cut_nets)
            if function is None:
                continue
            realization = lookup(table, function)
            if realization is None:
                continue
            exclusive = _exclusive_members(
                netlist, inst.name, interior, outputs, consumed
            )
            replaced_area = inst.cell.area + sum(
                netlist.instances[name].cell.area for name in exclusive
            )
            gain = replaced_area - realization.area
            if gain <= 0:
                continue
            if best is None or gain > best[0]:
                best = (gain, cut_nets, realization, exclusive)  # type: ignore[assignment]
        if best is None:
            continue
        _gain, cut_nets, realization, exclusive = best  # type: ignore[misc]
        accepted[inst.name] = (cut_nets, realization)
        consumed |= exclusive
        histogram[realization.structure] = histogram.get(realization.structure, 0) + 1

    if not accepted:
        return netlist, CompactionReport(
            applied=False,
            area_before=area_before,
            area_after=area_before,
            supernodes_collapsed=0,
            structure_histogram={},
        )

    compacted = _rebuild(netlist, library, accepted)
    compacted.sweep_dangling()
    area_after = total_area(compacted)
    if area_after >= area_before:
        return netlist, CompactionReport(
            applied=False,
            area_before=area_before,
            area_after=area_before,
            supernodes_collapsed=0,
            structure_histogram={},
        )
    return compacted, CompactionReport(
        applied=True,
        area_before=area_before,
        area_after=area_after,
        supernodes_collapsed=len(accepted),
        structure_histogram=histogram,
    )


def compact_to_fixpoint(
    netlist: Netlist,
    arch: str,
    library: Library,
    k: int = 3,
    max_passes: int = 3,
) -> Tuple[Netlist, CompactionReport]:
    """Iterate :func:`compact` until no further area improves.

    Each pass exposes new supernodes (collapsed structures become single
    instances that later clusters can absorb).  Returns the aggregate
    report over all applied passes.
    """
    area_before = total_area(netlist)
    collapsed = 0
    histogram: Dict[str, int] = {}
    applied_any = False
    for _ in range(max(1, max_passes)):
        netlist, report = compact(netlist, arch, library, k=k)
        if not report.applied:
            break
        applied_any = True
        collapsed += report.supernodes_collapsed
        for key, value in report.structure_histogram.items():
            histogram[key] = histogram.get(key, 0) + value
    area_after = total_area(netlist)
    return netlist, CompactionReport(
        applied=applied_any,
        area_before=area_before,
        area_after=area_after if applied_any else area_before,
        supernodes_collapsed=collapsed,
        structure_histogram=histogram,
    )


def _rebuild(
    netlist: Netlist,
    library: Library,
    accepted: Dict[str, Tuple[Tuple[str, ...], Realization]],
) -> Netlist:
    """Materialize the accepted supernodes into a fresh netlist."""
    rebuilt = Netlist(netlist.name)
    new_net: Dict[str, str] = {}

    for name in netlist.inputs:
        new_net[name] = rebuilt.add_input(name)
    for dff in netlist.sequential_instances():
        new_net[dff.output_net] = rebuilt.add_net(dff.output_net)

    def realize_net(old_net: str) -> str:
        if old_net in new_net:
            return new_net[old_net]
        driver = netlist.driver_of(old_net)
        assert driver is not None and not driver.is_sequential, old_net
        if driver.name in accepted:
            cut_nets, realization = accepted[driver.name]
            leaf_nets = [realize_net(n) for n in cut_nets]
            step_nets: List[str] = []
            for step in realization.steps:
                cell = library.cell(step.cell_name)
                pin_nets = {}
                for pin, (kind, index) in zip(cell.pins, step.refs):
                    pin_nets[pin] = (
                        leaf_nets[index] if kind == "leaf" else step_nets[index]
                    )
                inst = rebuilt.add_instance(cell, pin_nets, config=step.config)
                step_nets.append(inst.output_net)
            new_net[old_net] = step_nets[-1]
        else:
            pin_nets = {
                pin: realize_net(driver.pin_nets[pin]) for pin in driver.cell.pins
            }
            inst = rebuilt.add_instance(driver.cell, pin_nets, config=driver.config)
            new_net[old_net] = inst.output_net
        return new_net[old_net]

    for dff in netlist.sequential_instances():
        d_net = realize_net(dff.pin_nets["D"])
        rebuilt.add_instance(
            dff.cell, {"D": d_net, "Q": new_net[dff.output_net]}, name=dff.name
        )

    buf_cell = library.cell("BUF")
    identity = TruthTable.input_var(1, 0)
    claimed: Set[str] = set()
    for name in netlist.outputs:
        net = realize_net(name)
        if net == name:
            rebuilt.add_output(name)
            claimed.add(net)
            continue
        if (
            name not in rebuilt.nets
            and not rebuilt.nets[net].is_input
            and net not in claimed
        ):
            rebuilt.rename_net(net, name)
            _retarget(new_net, net, name)
            rebuilt.add_output(name)
            claimed.add(name)
        else:
            inst = rebuilt.add_instance(buf_cell, {"A": net, "Y": name}, config=identity)
            rebuilt.add_output(inst.output_net)
            claimed.add(name)

    return rebuilt


def _retarget(mapping: Dict[str, str], old_value: str, new_value: str) -> None:
    for key, value in mapping.items():
        if value == old_value:
            mapping[key] = new_value
