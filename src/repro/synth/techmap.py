"""Technology mapping onto the restricted PLB component libraries.

This is the Design Compiler role of the paper's flow (Figure 6): cover the
optimized AIG with K=3 cuts, realize each selected cut with the *baseline*
component structures of the target architecture, and rebuild a sequential
netlist (re-attaching DFFs and primary-port names).

The mapper is area-flow driven with tree-restricted cuts (cuts do not
cross multi-fanout nodes), which mirrors the tree-covering behaviour of a
conventional mapper; the paper's FlowMap-based logic compaction
(:mod:`repro.synth.compaction`) then collapses logic across those
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cells.celltypes import make_dff
from ..cells.library import Library
from ..logic.truthtable import TruthTable
from ..netlist.build import _const_cell
from ..netlist.core import Netlist
from .aig import lit_inverted, lit_node
from .cuts import Cut, cut_function, enumerate_cuts, fanout_counts
from .from_netlist import CombCore, DFF_OUTPUT_PREFIX
from .realize import Realization, baseline_table, compaction_table, lookup


@dataclass
class _Choice:
    cut: Cut
    realization: Realization
    area_flow: float
    depth: int


class TechmapError(RuntimeError):
    """Raised when a node cannot be realized in the target library."""


def _cell_by_name(library: Library, name: str):
    if name in library:
        return library.cell(name)
    raise TechmapError(f"realization uses cell {name!r} absent from {library.name!r}")


def map_core(
    core: CombCore,
    arch: str,
    library: Library,
    use_compaction_structures: bool = False,
    k: Optional[int] = None,
) -> Netlist:
    """Map a combinational core onto ``library`` for architecture ``arch``.

    Returns a complete sequential netlist with the original port and
    register boundaries.

    The default (baseline) mode models the conventional-mapper role of the
    paper's flow: delay-first covering with *tree-restricted* cuts (cuts
    never cross multi-fanout nodes, as in conventional tree covering) and
    only the baseline single-cell / two-NAND structures.  The paper's
    FlowMap-based logic compaction then collapses supernodes across those
    boundaries and into the composite PLB configurations.

    ``use_compaction_structures`` instead maps directly with unrestricted
    cuts and the full structure table (used by tests and the compaction
    ablation).
    """
    aig = core.aig
    # Realization structures follow the *library* contents, so custom
    # architectures (the paper's future-work exploration) map natively.
    table = (
        compaction_table(library)
        if use_compaction_structures
        else baseline_table(library)
    )
    if k is None:
        k = 3
    cuts = enumerate_cuts(aig, k=k, tree_mode=not use_compaction_structures)
    fanouts = fanout_counts(aig)

    choices: Dict[int, _Choice] = {}
    for node in aig.and_nodes():
        best: Optional[_Choice] = None
        for cut in cuts[node]:
            if len(cut) == 1 and cut[0] == node:
                continue  # trivial cut realizes nothing
            if 0 in cut:
                continue  # constant leaves are folded by construction
            function = cut_function(aig, node, cut)
            realization = lookup(table, function)
            if realization is None:
                continue
            flow = realization.area
            depth = 0
            for leaf in cut:
                if leaf in choices:
                    flow += choices[leaf].area_flow / max(1, fanouts.get(leaf, 1))
                    depth = max(depth, choices[leaf].depth)
            depth += realization.levels
            candidate = _Choice(cut, realization, flow, depth)
            # Delay-oriented choice (the paper's flow runs against a 0.5 ns
            # cycle target, so the Design Compiler role maps depth-first);
            # logic compaction recovers area afterwards.
            if best is None or (candidate.depth, candidate.area_flow) < (
                best.depth, best.area_flow
            ):
                best = candidate
        if best is None:
            raise TechmapError(
                f"node {node} has no realizable cut in architecture {arch!r}"
            )
        choices[node] = best

    return _build_netlist(core, library, choices)


def _build_netlist(
    core: CombCore,
    library: Library,
    choices: Dict[int, _Choice],
) -> Netlist:
    aig = core.aig
    netlist = Netlist(aig.name)
    net_of: Dict[int, str] = {}
    inv_of: Dict[int, str] = {}
    inv_cell = _cell_by_name(library, "INV")
    inv_table = ~TruthTable.input_var(1, 0)

    for name in core.primary_inputs:
        netlist.add_input(name)
        # AIG input node ids follow insertion order: PIs then DFF Qs.
    # Recover input node ids by name.
    input_node_by_name = {name: i + 1 for i, name in enumerate(aig.input_names)}
    for name in core.primary_inputs:
        net_of[input_node_by_name[name]] = name

    # DFF instances come first so their Q nets exist for combinational use.
    for record in core.dffs:
        q_net = netlist.add_net(record.q_net)
        net_of[input_node_by_name[record.q_net]] = q_net
    dff_cell = make_dff() if "DFF" not in library else library.cell("DFF")

    def realize_node(node: int) -> str:
        if node in net_of:
            return net_of[node]
        choice = choices[node]
        leaf_nets = [realize_node(leaf) for leaf in choice.cut]
        step_nets: List[str] = []
        for step in choice.realization.steps:
            cell = _cell_by_name(library, step.cell_name)
            pin_nets = {}
            for pin, (kind, index) in zip(cell.pins, step.refs):
                pin_nets[pin] = leaf_nets[index] if kind == "leaf" else step_nets[index]
            inst = netlist.add_instance(cell, pin_nets, config=step.config)
            step_nets.append(inst.output_net)
        net_of[node] = step_nets[-1]
        return net_of[node]

    def literal_net(literal: int) -> str:
        node = lit_node(literal)
        if node == 0:
            base = None
        else:
            base = realize_node(node)
        if not lit_inverted(literal):
            if base is None:
                return _constant_net(netlist, library, False)
            return base
        if base is None:
            return _constant_net(netlist, library, True)
        if node not in inv_of:
            inst = netlist.add_instance(inv_cell, {"A": base}, config=inv_table)
            inv_of[node] = inst.output_net
        return inv_of[node]

    # Realize all outputs (primary + DFF data).
    output_net_of: Dict[str, str] = {}
    for name, literal in aig.outputs:
        output_net_of[name] = literal_net(literal)

    # Attach registers.
    for record in core.dffs:
        d_net = output_net_of[DFF_OUTPUT_PREFIX + record.name]
        netlist.add_instance(
            dff_cell, {"D": d_net, "Q": record.q_net}, name=record.name
        )

    # Give primary outputs their required names.
    buf_cell = _cell_by_name(library, "BUF")
    buf_table = TruthTable.input_var(1, 0)
    for name in core.primary_outputs:
        net = output_net_of[name]
        if net == name:
            netlist.add_output(name)
            continue
        if (
            name not in netlist.nets
            and not netlist.nets[net].is_input
            and net not in netlist.outputs
            and net not in core.primary_outputs
            and sum(1 for other in core.primary_outputs if output_net_of[other] == net) == 1
        ):
            netlist.rename_net(net, name)
            netlist.add_output(name)
        else:
            inst = netlist.add_instance(
                buf_cell, {"A": net, "Y": name}, config=buf_table
            )
            netlist.add_output(inst.output_net)

    return netlist


def _constant_net(netlist: Netlist, library: Library, value: bool) -> str:
    """A constant net, synthesized from the first primary input."""
    if not netlist.inputs:
        raise TechmapError("cannot synthesize a constant with no inputs")
    cell = _const_cell(value)
    config = TruthTable(1, 0b11 if value else 0b00)
    inst = netlist.add_instance(cell, {"A": netlist.inputs[0]}, config=config)
    return inst.output_net
