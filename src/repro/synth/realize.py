"""Realizations: concrete component-cell structures for small functions.

A :class:`Realization` is a micro-netlist template — an ordered list of
component-cell steps over up to three *leaf* signals — that implements one
Boolean function.  Realization tables are precomputed per target library
by **forward enumeration** of each structure's via-configuration space
(never by per-function search), then deduplicated keeping the
cheapest-area entry per function.

Two structure families exist per architecture:

* *baseline* structures — what a conventional technology mapper (the
  Design Compiler role) uses: single cells plus plain two-gate NAND
  decompositions and explicit inverters;
* *compaction* structures — additionally the paper's granular PLB
  configurations (NDMX, XOAMX, XOANDMX) and, for the LUT architecture,
  whole-function LUT3 collapsing.  Logic compaction uses the union.

Steps reference their inputs as ``("leaf", i)`` or ``("step", j)``; the
last step is the output.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..cells.celltypes import (
    make_buf,
    make_inv,
    make_lut3,
    make_mux2,
    make_nd2wi,
    make_nd3wi,
    make_xoa,
)
from ..logic.truthtable import TruthTable
from ..obs import core as _obs

Ref = Tuple[str, int]  # ("leaf", index) or ("step", index)


@dataclass(frozen=True)
class Step:
    """One cell instantiation inside a realization."""

    cell_name: str
    config: TruthTable
    refs: Tuple[Ref, ...]


@dataclass(frozen=True)
class Realization:
    """A component-cell structure implementing ``function`` over leaves."""

    function: TruthTable
    steps: Tuple[Step, ...]
    area: float
    levels: int
    structure: str  # e.g. "ND3", "NDMX", "XOAMX", "LUT3", "ND2+ND2"

    @property
    def n_cells(self) -> int:
        return len(self.steps)


class _TableBuilder:
    """Accumulates the cheapest realization per (n_inputs, mask)."""

    def __init__(self) -> None:
        self.table: Dict[Tuple[int, int], Realization] = {}

    def offer(self, realization: Realization) -> None:
        key = (realization.function.n_inputs, realization.function.mask)
        existing = self.table.get(key)
        if (
            existing is None
            or (realization.area, realization.levels)
            < (existing.area, existing.levels)
        ):
            self.table[key] = realization


# ----------------------------------------------------------------------
# Leaf literal machinery
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Literal:
    """A leaf or its complement, with the steps needed to produce it."""

    table: TruthTable
    ref_builder: Tuple[Tuple[str, int], bool]  # ((kind, index), inverted)

    def materialize(
        self, steps: List[Step], inv_cache: Dict[int, int]
    ) -> Ref:
        """Return a Ref, appending an INV step if the literal is negated."""
        (kind, index), inverted = self.ref_builder
        if not inverted:
            return (kind, index)
        if index in inv_cache:
            return ("step", inv_cache[index])
        steps.append(Step("INV", _INV_CONFIG, ((kind, index),)))
        inv_cache[index] = len(steps) - 1
        return ("step", inv_cache[index])


def _literals(n: int) -> Tuple[_Literal, ...]:
    out = []
    for i in range(n):
        var = TruthTable.input_var(n, i)
        out.append(_Literal(var, (("leaf", i), False)))
        out.append(_Literal(~var, (("leaf", i), True)))
    return tuple(out)


_INV_AREA = make_inv().area
_BUF_AREA = make_buf().area


@lru_cache(maxsize=1)
def _step_areas() -> Dict[str, float]:
    """Area per realizable cell name (computed once; cells are fixed)."""
    return {
        "BUF": make_buf().area,
        "INV": make_inv().area,
        "ND2WI": make_nd2wi().area,
        "ND3WI": make_nd3wi().area,
        "MUX2": make_mux2().area,
        "XOA": make_xoa().area,
        "LUT3": make_lut3().area,
    }


_INV_CONFIG = ~TruthTable.input_var(1, 0)


def _assemble(
    function: TruthTable,
    structure: str,
    core_steps: Sequence[Tuple[str, TruthTable, Sequence[object]]],
    levels: int,
) -> Realization:
    """Build a Realization from core steps whose refs may be _Literals.

    ``core_steps`` entries are ``(cell_name, config, refs)`` where each ref
    is a :class:`_Literal`, a ``("core", j)`` reference to an earlier core
    step, or ``("inv-core", j)`` for its complement.
    """
    areas = _step_areas()
    steps: List[Step] = []
    inv_cache: Dict[int, int] = {}
    core_index: Dict[int, int] = {}
    core_inv_index: Dict[int, int] = {}
    for j, (cell_name, config, refs) in enumerate(core_steps):
        resolved: List[Ref] = []
        for ref in refs:
            if isinstance(ref, _Literal):
                resolved.append(ref.materialize(steps, inv_cache))
            else:
                kind, idx = ref  # type: ignore[misc]
                if kind == "core":
                    resolved.append(("step", core_index[idx]))
                elif kind == "inv-core":
                    if idx not in core_inv_index:
                        steps.append(
                            Step(
                                "INV",
                                ~TruthTable.input_var(1, 0),
                                (("step", core_index[idx]),),
                            )
                        )
                        core_inv_index[idx] = len(steps) - 1
                    resolved.append(("step", core_inv_index[idx]))
                else:  # pragma: no cover - defensive
                    raise ValueError(f"bad ref {ref!r}")
        steps.append(Step(cell_name, config, tuple(resolved)))
        core_index[j] = len(steps) - 1
    area = sum(areas[s.cell_name] for s in steps)
    return Realization(
        function=function,
        steps=tuple(steps),
        area=area,
        levels=levels,
        structure=structure,
    )


# ----------------------------------------------------------------------
# Structure enumerators (forward)
# ----------------------------------------------------------------------

def _mux_tt(s: TruthTable, d0: TruthTable, d1: TruthTable) -> TruthTable:
    return TruthTable.mux(s, d0, d1)


def _offer_nd2_singles(builder: _TableBuilder, n: int) -> None:
    """Single ND2WI over any two literal sources (polarity is internal)."""
    cell = make_nd2wi()
    assert cell.feasible is not None
    lits = _literals(n)
    for a, b in itertools.product(lits, repeat=2):
        # Polarity is free inside the cell, so only positive leaves are
        # wired; enumerate the cell's feasible configs directly.
        if a.ref_builder[1] or b.ref_builder[1]:
            continue
        for config in cell.feasible:
            function = config.compose([a.table, b.table])
            if len(function.support()) != n:
                continue
            builder.offer(
                _assemble(function, "ND2", [("ND2WI", config, [a, b])], 1)
            )


def _offer_nd3_singles(builder: _TableBuilder, n: int) -> None:
    """Single ND3WI over any three positive leaf sources (ties allowed)."""
    cell = make_nd3wi()
    assert cell.feasible is not None
    lits = [lit for lit in _literals(n) if not lit.ref_builder[1]]
    for a, b, c in itertools.product(lits, repeat=3):
        for config in cell.feasible:
            function = config.compose([a.table, b.table, c.table])
            if len(function.support()) != n:
                continue
            builder.offer(
                _assemble(function, "ND3", [("ND3WI", config, [a, b, c])], 1)
            )


def _offer_mux_singles(builder: _TableBuilder, n: int, cell_name: str = "MUX2") -> None:
    """Single mux over literals (INV steps supply negative polarity)."""
    mux_fn = _mux_tt(*TruthTable.inputs(3))
    lits = _literals(n)
    for s, d0, d1 in itertools.product(lits, repeat=3):
        function = _mux_tt(s.table, d0.table, d1.table)
        if len(function.support()) != n:
            continue
        builder.offer(
            _assemble(function, "MX", [(cell_name, mux_fn, [s, d0, d1])], 1)
        )


def _nd2_inner_options(n: int) -> List[Tuple[TruthTable, Tuple[str, TruthTable, list]]]:
    """Distinct ND2WI outputs over positive leaves, with their core step."""
    cell = make_nd2wi()
    assert cell.feasible is not None
    lits = [lit for lit in _literals(n) if not lit.ref_builder[1]]
    seen: Dict[int, Tuple[TruthTable, Tuple[str, TruthTable, list]]] = {}
    for a, b in itertools.product(lits, repeat=2):
        for config in cell.feasible:
            function = config.compose([a.table, b.table])
            if function.mask not in seen:
                seen[function.mask] = (function, ("ND2WI", config, [a, b]))
    return list(seen.values())


def _nd3_inner_options(n: int) -> List[Tuple[TruthTable, Tuple[str, TruthTable, list]]]:
    cell = make_nd3wi()
    assert cell.feasible is not None
    lits = [lit for lit in _literals(n) if not lit.ref_builder[1]]
    seen: Dict[int, Tuple[TruthTable, Tuple[str, TruthTable, list]]] = {}
    for a, b, c in itertools.product(lits, repeat=3):
        for config in cell.feasible:
            function = config.compose([a.table, b.table, c.table])
            if function.mask not in seen:
                seen[function.mask] = (function, ("ND3WI", config, [a, b, c]))
    return list(seen.values())


def _mux_inner_options(
    n: int, cell_name: str
) -> List[Tuple[TruthTable, Tuple[str, TruthTable, list], int]]:
    """Distinct inner-mux outputs with their core step and inverter count."""
    mux_fn = _mux_tt(*TruthTable.inputs(3))
    lits = _literals(n)
    best: Dict[int, Tuple[TruthTable, Tuple[str, TruthTable, list], int]] = {}
    for s, d0, d1 in itertools.product(lits, repeat=3):
        function = _mux_tt(s.table, d0.table, d1.table)
        n_inv = sum(1 for lit in (s, d0, d1) if lit.ref_builder[1])
        key = function.mask
        if key not in best or n_inv < best[key][2]:
            best[key] = (function, (cell_name, mux_fn, [s, d0, d1]), n_inv)
    return list(best.values())


def _offer_two_gate_nand(builder: _TableBuilder) -> None:
    """ND2WI feeding one input of another ND2WI (plain DC decomposition)."""
    inner = _nd2_inner_options(3)
    cell = make_nd2wi()
    assert cell.feasible is not None
    lits = [lit for lit in _literals(3) if not lit.ref_builder[1]]
    for inner_fn, inner_step in inner:
        for other in lits:
            for config in cell.feasible:
                function = config.compose([inner_fn, other.table])
                if len(function.support()) != 3:
                    continue
                builder.offer(
                    _assemble(
                        function,
                        "ND2+ND2",
                        [inner_step, ("ND2WI", config, [("core", 0), other])],
                        2,
                    )
                )


def _offer_ndmx(builder: _TableBuilder) -> None:
    """Config 3 — MUX2 with one data leg from an ND2WI."""
    mux_fn = _mux_tt(*TruthTable.inputs(3))
    inner = _nd2_inner_options(3)
    lits = _literals(3)
    for inner_fn, inner_step in inner:
        for s in lits:
            for other in lits:
                for legs in (
                    [s, ("core", 0), other],
                    [s, other, ("core", 0)],
                ):
                    tables = [
                        lit.table if isinstance(lit, _Literal) else inner_fn
                        for lit in legs
                    ]
                    function = _mux_tt(*tables)
                    if len(function.support()) != 3:
                        continue
                    builder.offer(
                        _assemble(
                            function,
                            "NDMX",
                            [inner_step, ("MUX2", mux_fn, legs)],
                            2,
                        )
                    )


def _offer_xoamx(builder: _TableBuilder, inner_cell: str = "XOA") -> None:
    """Config 4 — MUX2 with one data leg from the XOA mux.

    Includes the both-legs wiring (inner and inverted inner) that realizes
    the 3-input XOR/XNOR with two muxes and an inverter.
    """
    mux_fn = _mux_tt(*TruthTable.inputs(3))
    inner = _mux_inner_options(3, inner_cell)
    lits = _literals(3)
    for inner_fn, inner_step, _ in inner:
        for s in lits:
            for other in lits:
                for legs in (
                    [s, ("core", 0), other],
                    [s, other, ("core", 0)],
                ):
                    tables = [
                        lit.table if isinstance(lit, _Literal) else inner_fn
                        for lit in legs
                    ]
                    function = _mux_tt(*tables)
                    if len(function.support()) != 3:
                        continue
                    builder.offer(
                        _assemble(
                            function, "XOAMX",
                            [inner_step, ("MUX2", mux_fn, legs)], 2,
                        )
                    )
            # both legs from the inner mux, one through an inverter
            for legs in (
                [s, ("core", 0), ("inv-core", 0)],
                [s, ("inv-core", 0), ("core", 0)],
            ):
                tables = [
                    lit.table if isinstance(lit, _Literal) else
                    (inner_fn if lit[0] == "core" else ~inner_fn)
                    for lit in legs
                ]
                function = _mux_tt(*tables)
                if len(function.support()) != 3:
                    continue
                builder.offer(
                    _assemble(
                        function, "XOAMX",
                        [inner_step, ("MUX2", mux_fn, legs)], 2,
                    )
                )


def _offer_xoandmx(builder: _TableBuilder, inner_cell: str = "XOA") -> None:
    """Config 5 — MUX2 fed by the XOA mux and an ND3WI gate."""
    mux_fn = _mux_tt(*TruthTable.inputs(3))
    mux_inner = _mux_inner_options(3, inner_cell)
    nd3_inner = _nd3_inner_options(3)
    lits = _literals(3)
    for mux_fn_inner, mux_step, _ in mux_inner:
        for nd3_fn, nd3_step in nd3_inner:
            for s in lits:
                for legs in (
                    [s, ("core", 0), ("core", 1)],
                    [s, ("core", 1), ("core", 0)],
                ):
                    tables = []
                    for lit in legs:
                        if isinstance(lit, _Literal):
                            tables.append(lit.table)
                        else:
                            tables.append(
                                mux_fn_inner if lit[1] == 0 else nd3_fn
                            )
                    function = _mux_tt(*tables)
                    if len(function.support()) != 3:
                        continue
                    builder.offer(
                        _assemble(
                            function, "XOANDMX",
                            [mux_step, nd3_step, ("MUX2", mux_fn, legs)], 2,
                        )
                    )


def _offer_lut3(builder: _TableBuilder, n: int) -> None:
    """Whole-function LUT3 collapse (LUT architecture only)."""
    for mask in range(1 << (1 << n)):
        function = TruthTable(n, mask)
        if len(function.support()) != n:
            continue
        config = function.extend(3)
        refs: List[object] = [
            _Literal(TruthTable.input_var(n, i), (("leaf", i), False))
            for i in range(n)
        ]
        while len(refs) < 3:
            refs.append(refs[0])  # tie unused pins
        builder.offer(_assemble(function, "LUT3", [("LUT3", config, refs)], 1))


# ----------------------------------------------------------------------
# Public tables
# ----------------------------------------------------------------------

#: Component cells that realization structures can instantiate.
REALIZABLE_CELLS = frozenset(
    {"INV", "BUF", "ND2WI", "ND3WI", "MUX2", "XOA", "LUT3"}
)

#: Cell sets of the paper's two architectures (for the legacy string API).
_ARCH_CELLS = {
    "lut": frozenset({"INV", "BUF", "ND2WI", "ND3WI", "LUT3"}),
    "granular": frozenset({"INV", "BUF", "ND2WI", "ND3WI", "MUX2", "XOA"}),
}


def _resolve_cells(arch) -> frozenset:
    """Accept an architecture name, a cell set, or a Library."""
    if isinstance(arch, str):
        if arch not in _ARCH_CELLS:
            raise ValueError(f"unknown architecture {arch!r}")
        return _ARCH_CELLS[arch]
    if isinstance(arch, (set, frozenset)):
        return frozenset(arch) & REALIZABLE_CELLS
    # Library-like: anything exposing cell_names().
    return frozenset(arch.cell_names()) & REALIZABLE_CELLS


#: Bump whenever table construction changes in a way that alters entries;
#: it keys the persisted tables, so stale on-disk copies are never reused.
TABLE_BUILDER_VERSION = 1


def _library_fingerprint(cells: frozenset) -> Tuple:
    """Stable description of every cell a table can instantiate.

    Persisted tables are keyed on this (plus the builder version), so any
    change to a cell's area, pins, or feasible-function set invalidates
    them — the on-disk table can go stale only if the *builder code*
    changes without a version bump.
    """
    from ..cells.celltypes import standard_cells

    library = standard_cells()
    out = []
    for name in sorted(cells | {"INV", "BUF"}):
        cell = library[name]
        feasible = tuple(sorted(
            (t.n_inputs, t.mask) for t in (cell.feasible or ())
        ))
        out.append((cell.name, cell.pins, cell.area, feasible))
    return tuple(out)


def _build_table(
    cells: frozenset, composite: bool
) -> Dict[Tuple[int, int], Realization]:
    """Forward-enumerate every structure family available to ``cells``."""
    builder = _TableBuilder()
    _offer_inv_buf(builder)
    if "ND2WI" in cells:
        for n in (2, 3):
            _offer_nd2_singles(builder, n)
        _offer_two_gate_nand(builder)
    if "ND3WI" in cells:
        for n in (2, 3):
            _offer_nd3_singles(builder, n)
    if "MUX2" in cells:
        for n in (2, 3):
            _offer_mux_singles(builder, n)
    if "LUT3" in cells:
        _offer_lut3(builder, 2)
        _offer_lut3(builder, 3)
    if composite:
        inner_mux = "XOA" if "XOA" in cells else "MUX2"
        if "MUX2" in cells and "ND2WI" in cells:
            _offer_ndmx(builder)
        if "MUX2" in cells:
            _offer_xoamx(builder, inner_cell=inner_mux)
        if "MUX2" in cells and "ND3WI" in cells:
            _offer_xoandmx(builder, inner_cell=inner_mux)
    return dict(builder.table)


@lru_cache(maxsize=None)
def table_for_cells(
    cells: frozenset, composite: bool
) -> Dict[Tuple[int, int], Realization]:
    """Realization table for an arbitrary component-cell set.

    ``composite=False`` gives the conventional-mapper (baseline) subset;
    ``composite=True`` adds the paper's compaction structures (NDMX /
    XOAMX / XOANDMX where the required muxes exist, whole-function LUT3
    collapse where a LUT exists).  This generalization lets the full flow
    run on *custom* PLB architectures — the paper's proposed future work.

    Tables are deterministic functions of the cell set and the component
    cells' definitions, so beyond the in-process ``lru_cache`` they are
    *persisted* through the content-addressed stage cache
    (:mod:`repro.flow.cache`): a warm run — or a fresh
    ``ProcessPoolExecutor`` worker — unpickles the finished table instead
    of re-deriving its ~27k structure enumerations.  Keyed on the library
    fingerprint plus :data:`TABLE_BUILDER_VERSION`; honors
    ``REPRO_NO_CACHE`` / ``REPRO_CACHE_DIR`` like every other stage.
    """
    # Deferred import: repro.flow's package init pulls in the synthesis
    # stack (including this module), so a top-level import would cycle.
    from ..flow.cache import StageCache

    with _obs.span(
        "realize.table",
        cells=",".join(sorted(cells)),
        composite=bool(composite),
    ) as sp:
        store = StageCache()
        key = store.key(
            "realize_table",
            TABLE_BUILDER_VERSION,
            sorted(cells),
            bool(composite),
            _library_fingerprint(cells),
        )
        table = store.get("realize_table", key)
        loaded = table is not None
        if not loaded:
            table = _build_table(cells, composite)
            store.put("realize_table", key, table)
        sp.set(loaded=loaded, entries=len(table))
        _obs.counter("realize.table.loads" if loaded else "realize.table.builds")
    return table


def baseline_table(arch) -> Dict[Tuple[int, int], Realization]:
    """Structures a conventional mapper uses for an architecture.

    ``arch`` may be ``"lut"`` / ``"granular"``, a cell-name set, or a
    :class:`~repro.cells.library.Library`.  Covers every 1- and 2-input
    function plus single-cell and plain two-NAND 3-input structures;
    3-input functions outside the table are decomposed by the mapper
    through smaller cuts.
    """
    return table_for_cells(_resolve_cells(arch), composite=False)


def compaction_table(arch) -> Dict[Tuple[int, int], Realization]:
    """The full structure set used by logic compaction.

    Extends the baseline with the paper's composite configurations —
    NDMX / XOAMX / XOANDMX for mux-bearing PLBs — giving complete
    coverage of all 3-input functions without a LUT.  (A LUT-bearing
    PLB's baseline already contains its compaction structures, LUT3 and
    ND3WI; compaction still helps there through FlowMap's wider
    clustering.)
    """
    return table_for_cells(_resolve_cells(arch), composite=True)


def _offer_inv_buf(builder: _TableBuilder) -> None:
    var = TruthTable.input_var(1, 0)
    leaf = _Literal(var, (("leaf", 0), False))
    builder.offer(_assemble(~var, "INV", [("INV", ~var, [leaf])], 1))
    builder.offer(_assemble(var, "BUF", [("BUF", var, [leaf])], 1))


def lookup(
    table: Dict[Tuple[int, int], Realization], function: TruthTable
) -> Optional[Realization]:
    """Find a realization for ``function`` (shrunk to its support)."""
    shrunk, kept = function.shrink_to_support()
    found = table.get((shrunk.n_inputs, shrunk.mask))
    if found is None:
        return None
    if kept == tuple(range(function.n_inputs)):
        return found
    # Re-index leaves back to the original input positions.
    remap = {i: kept[i] for i in range(len(kept))}
    steps = tuple(
        Step(
            s.cell_name,
            s.config,
            tuple(("leaf", remap[idx]) if kind == "leaf" else (kind, idx)
                  for kind, idx in s.refs),
        )
        for s in found.steps
    )
    return Realization(
        function=function,
        steps=steps,
        area=found.area,
        levels=found.levels,
        structure=found.structure,
    )
