"""And-Inverter Graph with structural hashing.

The AIG is the synthesis intermediate form (the Design Compiler stand-in
works on it): nodes are 2-input ANDs, edges carry optional inversion, and
structural hashing merges identical nodes on construction.  Literals are
``2*node + polarity`` (polarity 1 = inverted); node 0 is constant false,
so literal 0 is ``const0`` and literal 1 is ``const1``.

Sequential elements stay outside the AIG: the flow extracts the
combinational core of a netlist (DFF outputs become AIG inputs, DFF data
pins become AIG outputs), maps it, and re-attaches the registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..logic.truthtable import TruthTable

CONST0_LIT = 0
CONST1_LIT = 1


def lit(node: int, inverted: bool = False) -> int:
    """Build a literal from a node id."""
    return 2 * node + (1 if inverted else 0)


def lit_node(literal: int) -> int:
    return literal >> 1


def lit_inverted(literal: int) -> bool:
    return bool(literal & 1)


def lit_not(literal: int) -> int:
    return literal ^ 1


@dataclass
class AIG:
    """A structurally hashed and-inverter graph.

    Node 0 is the constant; nodes ``1..n_inputs`` are primary inputs;
    higher nodes are ANDs stored in topological order by construction.
    """

    name: str = "aig"
    n_inputs: int = 0
    input_names: List[str] = field(default_factory=list)
    #: fanin literals per AND node id (inputs/const have no entry).
    fanin0: Dict[int, int] = field(default_factory=dict)
    fanin1: Dict[int, int] = field(default_factory=dict)
    #: (name, literal) primary outputs.
    outputs: List[Tuple[str, int]] = field(default_factory=list)
    _strash: Dict[Tuple[int, int], int] = field(default_factory=dict)
    _next_node: int = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> int:
        """Add a primary input; returns its (positive) literal."""
        node = self._next_node
        self._next_node += 1
        self.n_inputs += 1
        self.input_names.append(name)
        if node != self.n_inputs:
            raise AssertionError("inputs must be added before any AND node")
        return lit(node)

    def add_output(self, name: str, literal: int) -> None:
        self.outputs.append((name, literal))

    def and2(self, a: int, b: int) -> int:
        """Structurally hashed AND of two literals, with trivial folding."""
        if a > b:
            a, b = b, a
        if a == CONST0_LIT:
            return CONST0_LIT
        if a == CONST1_LIT:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return CONST0_LIT
        key = (a, b)
        found = self._strash.get(key)
        if found is not None:
            return lit(found)
        node = self._next_node
        self._next_node += 1
        self.fanin0[node] = a
        self.fanin1[node] = b
        self._strash[key] = node
        return lit(node)

    def or2(self, a: int, b: int) -> int:
        return lit_not(self.and2(lit_not(a), lit_not(b)))

    def xor2(self, a: int, b: int) -> int:
        return self.or2(self.and2(a, lit_not(b)), self.and2(lit_not(a), b))

    def mux(self, select: int, d0: int, d1: int) -> int:
        return self.or2(self.and2(lit_not(select), d0), self.and2(select, d1))

    def and_many(self, literals: Sequence[int]) -> int:
        """Balanced AND tree."""
        if not literals:
            return CONST1_LIT
        level = list(literals)
        while len(level) > 1:
            nxt = [
                self.and2(level[i], level[i + 1]) if i + 1 < len(level) else level[i]
                for i in range(0, len(level), 2)
            ]
            level = nxt
        return level[0]

    def from_table(self, table: TruthTable, input_literals: Sequence[int]) -> int:
        """Build logic realizing ``table`` over existing literals.

        Shannon-expands about the highest-index input, which for the small
        capture-cell tables (<= 4 inputs) produces compact mux trees that
        the structural hasher then shares.
        """
        if len(input_literals) != table.n_inputs:
            raise ValueError("literal count must match table inputs")
        if table.n_inputs == 0:
            return CONST1_LIT if table.mask else CONST0_LIT
        if table.is_constant():
            return CONST1_LIT if table.mask else CONST0_LIT
        index = table.n_inputs - 1
        low = table.cofactor(index, 0)
        high = table.cofactor(index, 1)
        rest = input_literals[:index]
        if low == high:
            return self.from_table(low, rest)
        low_lit = self.from_table(low, rest)
        high_lit = self.from_table(high, rest)
        return self.mux(input_literals[index], low_lit, high_lit)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_input(self, node: int) -> bool:
        return 1 <= node <= self.n_inputs

    def is_and(self, node: int) -> bool:
        return node in self.fanin0

    def and_nodes(self) -> Iterable[int]:
        """AND node ids in topological (construction) order."""
        return self.fanin0.keys()

    def n_ands(self) -> int:
        return len(self.fanin0)

    def fanins(self, node: int) -> Tuple[int, int]:
        return self.fanin0[node], self.fanin1[node]

    def levels(self) -> Dict[int, int]:
        """Logic level per node (inputs/const at level 0)."""
        level: Dict[int, int] = {0: 0}
        for node in range(1, self.n_inputs + 1):
            level[node] = 0
        for node in self.and_nodes():
            f0, f1 = self.fanins(node)
            level[node] = 1 + max(level[lit_node(f0)], level[lit_node(f1)])
        return level

    def depth(self) -> int:
        level = self.levels()
        if not self.outputs:
            return 0
        return max(level[lit_node(literal)] for _, literal in self.outputs)

    def reachable_from_outputs(self) -> List[int]:
        """AND nodes in the output cone, topological order."""
        marked = set()
        stack = [lit_node(literal) for _, literal in self.outputs]
        while stack:
            node = stack.pop()
            if node in marked or not self.is_and(node):
                continue
            marked.add(node)
            f0, f1 = self.fanins(node)
            stack.append(lit_node(f0))
            stack.append(lit_node(f1))
        return [node for node in self.and_nodes() if node in marked]

    def simulate(self, input_words: Sequence[int]) -> Dict[int, int]:
        """Integer-bitmask simulation: word per node (arbitrary width)."""
        if len(input_words) != self.n_inputs:
            raise ValueError("one word per input required")
        words: Dict[int, int] = {0: 0}

        def word_of(literal: int) -> int:
            # Inversion via ~ keeps arbitrary-width semantics; consumers
            # mask to their word width.
            value = words[lit_node(literal)]
            return ~value if lit_inverted(literal) else value

        for node in range(1, self.n_inputs + 1):
            words[node] = input_words[node - 1]
        for node in self.and_nodes():
            f0, f1 = self.fanins(node)
            words[node] = word_of(f0) & word_of(f1)
        return words

    def output_table(self) -> Dict[str, TruthTable]:
        """Exhaustive truth tables of all outputs (small AIGs only)."""
        n = self.n_inputs
        if n > 16:
            raise ValueError("exhaustive table limited to 16 inputs")
        rows = 1 << n
        input_words = []
        for i in range(n):
            word = 0
            for row in range(rows):
                if (row >> i) & 1:
                    word |= 1 << row
            input_words.append(word)
        words = self.simulate(input_words)
        tables = {}
        mask_all = (1 << rows) - 1
        for name, literal in self.outputs:
            value = words[lit_node(literal)] & mask_all
            if lit_inverted(literal):
                value ^= mask_all
            tables[name] = TruthTable(n, value)
        return tables

    def __repr__(self) -> str:
        return (
            f"AIG({self.name!r}: {self.n_inputs} inputs, {self.n_ands()} ands, "
            f"{len(self.outputs)} outputs)"
        )
