"""Netlist <-> AIG conversion for the synthesis front end.

``extract_core`` lifts a netlist's combinational core into an AIG: primary
inputs and DFF outputs become AIG inputs; primary outputs and DFF data
pins become AIG outputs.  The registry of DFFs travels alongside so the
mapper can re-attach registers after mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..netlist.core import Netlist, NetlistError
from .aig import AIG


@dataclass(frozen=True)
class DFFRecord:
    """One register crossing the combinational core boundary."""

    name: str
    d_net: str
    q_net: str


@dataclass(frozen=True)
class CombCore:
    """An AIG plus the bookkeeping to rebuild a sequential netlist."""

    aig: AIG
    primary_inputs: Tuple[str, ...]
    primary_outputs: Tuple[str, ...]
    dffs: Tuple[DFFRecord, ...]


#: Prefix distinguishing DFF data-pin pseudo-outputs inside the AIG.
DFF_OUTPUT_PREFIX = "$dffd$"


def extract_core(netlist: Netlist) -> CombCore:
    """Extract the combinational core of ``netlist`` into an AIG."""
    aig = AIG(netlist.name)
    literal_of: Dict[str, int] = {}

    for name in netlist.inputs:
        literal_of[name] = aig.add_input(name)
    dffs: List[DFFRecord] = []
    for inst in netlist.sequential_instances():
        record = DFFRecord(name=inst.name, d_net=inst.pin_nets["D"], q_net=inst.output_net)
        dffs.append(record)
        literal_of[record.q_net] = aig.add_input(record.q_net)

    for inst in netlist.topological_order():
        if inst.config is None:
            raise NetlistError(f"{inst.name}: combinational instance without config")
        input_literals = []
        for net in inst.input_nets():
            if net not in literal_of:
                raise NetlistError(f"net {net!r} undefined during AIG extraction")
            input_literals.append(literal_of[net])
        literal_of[inst.output_net] = aig.from_table(inst.config, input_literals)

    for out in netlist.outputs:
        aig.add_output(out, literal_of[out])
    for record in dffs:
        aig.add_output(DFF_OUTPUT_PREFIX + record.name, literal_of[record.d_net])

    return CombCore(
        aig=aig,
        primary_inputs=tuple(netlist.inputs),
        primary_outputs=tuple(netlist.outputs),
        dffs=tuple(dffs),
    )
