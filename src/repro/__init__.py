"""repro: reproduction of "Exploring Logic Block Granularity for Regular
Fabrics" (Koorapaty, Kheterpal, Gopalakrishnan, Fu, Pileggi — DATE 2004).

The package implements the paper's granular via-patterned PLB architecture
and the complete VPGA CAD flow it is evaluated with: Boolean function
analysis (S3 / modified S3), both PLB architectures, synthesis onto the
restricted component libraries, FlowMap-based logic compaction,
simulated-annealing physical synthesis, recursive-quadrisection packing,
PathFinder routing, and post-layout static timing analysis, plus the four
benchmark designs of the evaluation.

Quick start::

    from repro import build_alu, run_design, FlowOptions

    run = run_design(build_alu(8), "granular", FlowOptions(place_effort=0.3))
    print(run.flow_b.die_area, run.flow_b.average_slack)
"""

from .core import (
    PLBArchitecture,
    custom_plb,
    granular_plb,
    lut_plb,
    s3_feasible_set,
    modified_s3_implementable,
    granular_configs,
    GranularityExplorer,
    CandidatePLB,
)
from .designs import build_alu, build_firewire, build_fpu, build_netswitch
from .flow import (
    FlowOptions,
    run_design,
    run_figure2,
    run_matrix,
    run_table1,
    run_table2,
)
from .netlist import Netlist, NetlistBuilder

__version__ = "1.0.0"

__all__ = [
    "PLBArchitecture",
    "custom_plb",
    "granular_plb",
    "lut_plb",
    "s3_feasible_set",
    "modified_s3_implementable",
    "granular_configs",
    "GranularityExplorer",
    "CandidatePLB",
    "build_alu",
    "build_firewire",
    "build_fpu",
    "build_netswitch",
    "FlowOptions",
    "run_design",
    "run_figure2",
    "run_matrix",
    "run_table1",
    "run_table2",
    "Netlist",
    "NetlistBuilder",
    "__version__",
]
