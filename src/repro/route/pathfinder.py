"""PathFinder negotiated-congestion routing.

Classic iterative rip-up-and-reroute: every net is routed as a Steiner-ish
tree of bin-to-bin segments via A*; edge costs combine base cost, present
congestion, and accumulated history, so fought-over edges become expensive
over iterations until all overuse resolves (or the iteration cap hits,
after which remaining overuse is reported).

Multi-terminal nets are routed incrementally: each sink runs A* from the
entire partially built tree (zero cost to re-use the tree), the standard
multi-terminal extension.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..obs import core as _obs
from .grid import Bin, Edge, RoutingGrid

#: PathFinder cost schedule.
PRESENT_FACTOR_GROWTH = 1.6
HISTORY_INCREMENT = 1.0
MAX_ITERATIONS = 16


@dataclass
class RoutedNet:
    """One net's routed tree."""

    name: str
    bins: Set[Bin] = field(default_factory=set)
    edges: Set[Edge] = field(default_factory=set)

    def wirelength(self, grid: RoutingGrid) -> float:
        return len(self.edges) * grid.bin_pitch

    def via_count(self) -> int:
        """Bend count proxy: vias where the tree changes direction.

        One pass over the edges builds per-bin horizontal/vertical
        incidence, so the count is O(edges + bins) instead of the old
        O(bins x edges) all-pairs scan; a via is any bin touching both
        orientations.
        """
        horizontal: Set[Bin] = set()
        vertical: Set[Bin] = set()
        for edge in self.edges:
            a, b = edge
            if a[0] != b[0]:
                horizontal.add(a)
                horizontal.add(b)
            else:
                vertical.add(a)
                vertical.add(b)
        return len(self.bins & horizontal & vertical)


@dataclass
class RoutingResult:
    """All routed nets plus congestion summary."""

    grid: RoutingGrid
    nets: Dict[str, RoutedNet]
    iterations: int
    overused_edges: int

    @property
    def success(self) -> bool:
        return self.overused_edges == 0

    def total_wirelength(self) -> float:
        return sum(net.wirelength(self.grid) for net in self.nets.values())

    def lengths(self) -> Dict[str, float]:
        return {name: net.wirelength(self.grid) for name, net in self.nets.items()}

    def via_counts(self) -> Dict[str, int]:
        return {name: net.via_count() for name, net in self.nets.items()}


class PathFinderRouter:
    """Negotiated-congestion router over a :class:`RoutingGrid`."""

    def __init__(self, grid: RoutingGrid):
        self.grid = grid
        self.history: Dict[Edge, float] = {}
        self.present: Dict[Edge, int] = {}
        # Edges whose *next* use would overflow (usage >= tracks).  While
        # zero and no history exists, every edge costs exactly 1.0 and
        # A* takes a uniform-cost fast path with no cost lookups at all.
        self._saturated = 0

    # ------------------------------------------------------------------
    def _use(self, edge: Edge) -> None:
        usage = self.present.get(edge, 0) + 1
        self.present[edge] = usage
        if usage == self.grid.tracks:
            self._saturated += 1

    def _release(self, edge: Edge) -> None:
        usage = self.present.get(edge, 0) - 1
        self.present[edge] = usage
        if usage == self.grid.tracks - 1:
            self._saturated -= 1

    def _uncongested(self) -> bool:
        return self._saturated == 0 and not self.history

    def _edge_cost(self, edge: Edge, present_factor: float) -> float:
        usage = self.present.get(edge, 0)
        over = max(0, usage + 1 - self.grid.tracks)
        congestion = 1.0 + present_factor * over
        return (1.0 + self.history.get(edge, 0.0)) * congestion

    def _route_net(
        self, name: str, terminals: Sequence[Bin], present_factor: float
    ) -> RoutedNet:
        net = RoutedNet(name=name)
        remaining = list(dict.fromkeys(terminals))
        if not remaining:
            return net
        net.bins.add(remaining.pop(0))
        while remaining:
            target = remaining.pop(0)
            if target in net.bins:
                continue
            path = self._astar(net.bins, target, present_factor)
            previous: Optional[Bin] = None
            for b in path:
                net.bins.add(b)
                if previous is not None:
                    edge = self.grid.edge(previous, b)
                    if edge not in net.edges:
                        net.edges.add(edge)
                        self._use(edge)
                previous = b
        return net

    def _astar(
        self, sources: Set[Bin], target: Bin, present_factor: float
    ) -> List[Bin]:
        frontier: List[Tuple[float, int, Bin]] = []
        best: Dict[Bin, float] = {}
        parent: Dict[Bin, Optional[Bin]] = {}
        counter = 0
        # Fast path: with no history and no saturated edge, every edge
        # costs exactly (1 + 0) * (1 + pf * 0) = 1.0, so the per-edge
        # cost lookups can be skipped outright.  The Manhattan heuristic
        # stays admissible (it equals the true remaining cost), and the
        # numbers are bit-identical to the general path.
        uniform = self._uncongested()
        neighbors = self.grid.neighbors
        for s in sources:
            h = abs(s[0] - target[0]) + abs(s[1] - target[1])
            heapq.heappush(frontier, (h * 1.0, counter, s))
            counter += 1
            best[s] = 0.0
            parent[s] = None
        while frontier:
            _f, _c, current = heapq.heappop(frontier)
            if current == target:
                path = [current]
                while parent[current] is not None:
                    current = parent[current]  # type: ignore[assignment]
                    path.append(current)
                path.reverse()
                return path
            g = best[current]
            for neighbor in neighbors(current):
                if uniform:
                    ng = g + 1.0
                else:
                    edge = self.grid.edge(current, neighbor)
                    ng = g + self._edge_cost(edge, present_factor)
                if neighbor not in best or ng < best[neighbor] - 1e-12:
                    best[neighbor] = ng
                    parent[neighbor] = current
                    h = abs(neighbor[0] - target[0]) + abs(neighbor[1] - target[1])
                    heapq.heappush(frontier, (ng + h, counter, neighbor))
                    counter += 1
        raise RuntimeError(f"routing target {target} unreachable")

    def _rip_up(self, net: RoutedNet) -> None:
        for edge in net.edges:
            self._release(edge)

    def _overused(self) -> List[Edge]:
        return [e for e, u in self.present.items() if u > self.grid.tracks]

    # ------------------------------------------------------------------
    def route(
        self,
        net_terminals: Dict[str, Sequence[Bin]],
        max_iterations: int = MAX_ITERATIONS,
    ) -> RoutingResult:
        """Route all nets to convergence or the iteration cap."""
        with _obs.span(
            "pathfinder.route",
            nets=len(net_terminals),
            tracks=self.grid.tracks,
            cols=self.grid.cols,
            rows=self.grid.rows,
        ) as _span:
            result = self._route(net_terminals, max_iterations, _span)
        return result

    def _route(
        self,
        net_terminals: Dict[str, Sequence[Bin]],
        max_iterations: int,
        _span,
    ) -> RoutingResult:
        order = sorted(
            net_terminals,
            key=lambda n: -len(set(net_terminals[n])),
        )
        routed: Dict[str, RoutedNet] = {}
        present_factor = 0.6
        iterations = 0
        # One `_overused()` scan per iteration: computed after rerouting
        # and reused for telemetry, the convergence break, the next
        # iteration's rip-up set, and the final summary (the old code
        # scanned `present` up to three times per iteration).
        overused: List[Edge] = []
        for iteration in range(max_iterations):
            iterations = iteration + 1
            if iteration == 0:
                reroute = order
            else:
                over = set(overused)
                if not over:
                    break
                reroute = [
                    name
                    for name in order
                    if routed[name].edges & over
                ]
                for edge in over:
                    self.history[edge] = self.history.get(edge, 0.0) + HISTORY_INCREMENT
            for name in reroute:
                if name in routed:
                    self._rip_up(routed[name])
                routed[name] = self._route_net(
                    name, net_terminals[name], present_factor
                )
            overused = self._overused()
            # Per-iteration negotiation telemetry: rip-up and overuse
            # counts at iteration granularity; instrumentation only reads
            # router state, so traced and untraced routes are identical.
            if _obs.active():
                _obs.point(
                    "pathfinder.iteration",
                    iteration=iterations,
                    rerouted=len(reroute),
                    overused=len(overused),
                    present_factor=present_factor,
                )
                _obs.observe("pathfinder.overused_edges", float(len(overused)))
                if iteration > 0:
                    _obs.counter("pathfinder.rip_ups", len(reroute))
            present_factor *= PRESENT_FACTOR_GROWTH
            if not overused:
                break
        overused_edges = len(overused)
        _span.set(iterations=iterations, overused=overused_edges)
        _obs.counter("pathfinder.routes")
        _obs.counter("pathfinder.iterations", iterations)
        return RoutingResult(
            grid=self.grid,
            nets=routed,
            iterations=iterations,
            overused_edges=overused_edges,
        )
