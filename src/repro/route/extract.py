"""Post-route extraction: routed geometry -> RC wire model.

The paper measures final performance "by running static timing analysis
... with data from post-layout extraction"; this module is that
extraction, turning routed tree lengths and via counts into the
:class:`~repro.timing.wires.WireModel` STA consumes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..timing.wires import WireModel
from .grid import Bin, RoutingGrid
from .pathfinder import PathFinderRouter, RoutingResult


def terminals_from_points(
    grid: RoutingGrid,
    net_points: Mapping[str, Sequence[Tuple[float, float]]],
) -> Dict[str, List[Bin]]:
    """Map physical pin points to routing bins, dropping single-bin nets."""
    terminals: Dict[str, List[Bin]] = {}
    for net, points in net_points.items():
        bins = [grid.bin_of_point(x, y) for x, y in points]
        unique = list(dict.fromkeys(bins))
        if len(unique) >= 2:
            terminals[net] = unique
    return terminals


def route_and_extract(
    grid: RoutingGrid,
    net_points: Mapping[str, Sequence[Tuple[float, float]]],
) -> Tuple[RoutingResult, WireModel]:
    """Route all nets and extract the post-route wire model.

    Nets whose pins share one bin get a nominal intra-bin length of half
    the bin pitch.
    """
    terminals = terminals_from_points(grid, net_points)
    router = PathFinderRouter(grid)
    result = router.route(terminals)

    lengths: Dict[str, float] = {}
    vias: Dict[str, int] = {}
    for net, points in net_points.items():
        if net in result.nets:
            lengths[net] = result.nets[net].wirelength(grid)
            vias[net] = result.nets[net].via_count()
        elif len(points) >= 2:
            lengths[net] = 0.5 * grid.bin_pitch
            vias[net] = 0
    return result, WireModel(lengths=lengths, via_counts=vias)
