"""Routing substrate: grid, PathFinder, post-route extraction."""

from .grid import DEFAULT_TRACKS, Bin, Edge, RoutingGrid
from .pathfinder import (
    MAX_ITERATIONS,
    PathFinderRouter,
    RoutedNet,
    RoutingResult,
)
from .extract import route_and_extract, terminals_from_points

__all__ = [
    "DEFAULT_TRACKS",
    "Bin",
    "Edge",
    "RoutingGrid",
    "MAX_ITERATIONS",
    "PathFinderRouter",
    "RoutedNet",
    "RoutingResult",
    "route_and_extract",
    "terminals_from_points",
]
