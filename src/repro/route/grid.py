"""Routing resource grid.

ASIC-style global routing over a uniform bin grid: each bin is a routing
tile (a PLB tile in flow b, a group of cell sites in flow a); edges
between adjacent bins carry a fixed number of tracks.  The VPGA routes on
upper metal layers *on top of* the logic array, so the grid spans the full
die with uniform capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

Bin = Tuple[int, int]
Edge = Tuple[Bin, Bin]

#: Routing tracks per bin boundary (per direction).
DEFAULT_TRACKS = 12


@dataclass
class RoutingGrid:
    """A cols x rows bin grid with per-edge track capacity."""

    cols: int
    rows: int
    bin_pitch: float  # um
    tracks: int = DEFAULT_TRACKS

    def bins(self) -> Iterator[Bin]:
        for row in range(self.rows):
            for col in range(self.cols):
                yield (col, row)

    def contains(self, b: Bin) -> bool:
        return 0 <= b[0] < self.cols and 0 <= b[1] < self.rows

    def neighbors(self, b: Bin) -> List[Bin]:
        col, row = b
        out = []
        for nc, nr in ((col + 1, row), (col - 1, row), (col, row + 1), (col, row - 1)):
            if 0 <= nc < self.cols and 0 <= nr < self.rows:
                out.append((nc, nr))
        return out

    def edge(self, a: Bin, b: Bin) -> Edge:
        """Canonical (sorted) edge key."""
        return (a, b) if a <= b else (b, a)

    def bin_of_point(self, x: float, y: float) -> Bin:
        col = int(x / self.bin_pitch)
        row = int(y / self.bin_pitch)
        return (
            max(0, min(self.cols - 1, col)),
            max(0, min(self.rows - 1, row)),
        )

    def center_of(self, b: Bin) -> Tuple[float, float]:
        return ((b[0] + 0.5) * self.bin_pitch, (b[1] + 0.5) * self.bin_pitch)
