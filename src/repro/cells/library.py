"""Restricted component-cell libraries for each PLB architecture.

The design flow (paper Figure 6) synthesizes every design onto the
restricted library of its target PLB's component cells.  Two libraries are
published by the paper:

* ``lut_plb_library`` — components of the LUT-based PLB of paper Figure 1:
  LUT3, ND3WI, plus buffers/inverters and the DFF.
* ``granular_plb_library`` — components of the granular PLB of paper
  Figure 4: MUX2, XOA, ND3WI, plus buffers/inverters and the DFF.

A :class:`Library` also resolves "which cell implements this function" —
the primitive operation behind technology mapping and logic compaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..logic.truthtable import TruthTable
from .celltypes import (
    CellType,
    make_buf,
    make_dff,
    make_inv,
    make_lut3,
    make_mux2,
    make_nd2wi,
    make_nd3wi,
    make_xoa,
    standard_cells,
)


class LibraryError(KeyError):
    """Raised when a cell lookup fails."""


@dataclass(frozen=True)
class Match:
    """A successful cell match for a target function.

    ``pin_map[i]`` gives, for cell input pin ``i`` (in pin order), the index
    of the target function's input that drives it, and ``pin_neg[i]`` is
    unused here (polarity lives inside ``config``).  ``config`` is the exact
    truth table (over cell pins) the cell must be configured to.
    """

    cell: CellType
    config: TruthTable
    pin_map: Tuple[int, ...]


class Library:
    """An ordered collection of component cells."""

    def __init__(self, name: str, cells: Iterable[CellType]):
        self.name = name
        self._cells: Dict[str, CellType] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise LibraryError(f"duplicate cell {cell.name!r}")
            self._cells[cell.name] = cell

    def __repr__(self) -> str:
        # Deterministic (address-free) so cache keys built from reprs are
        # stable across processes.
        cells = ", ".join(repr(c) for c in self._cells.values())
        return f"Library(name={self.name!r}, cells=[{cells}])"

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> CellType:
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(f"no cell {name!r} in library {self.name!r}") from None

    def cell_names(self) -> Tuple[str, ...]:
        return tuple(self._cells)

    def combinational(self) -> Tuple[CellType, ...]:
        return tuple(c for c in self._cells.values() if not c.is_sequential)

    def sequential(self) -> Tuple[CellType, ...]:
        return tuple(c for c in self._cells.values() if c.is_sequential)

    # ------------------------------------------------------------------
    # Function matching
    # ------------------------------------------------------------------
    def matches(self, table: TruthTable) -> List[Match]:
        """All single-cell implementations of ``table``, best-area first.

        The target's inputs may be permuted onto cell pins; polarity freedom
        comes from the cell's own feasible set (the "WI" configurations) —
        no hidden inverters are assumed.  Unused cell pins are not allowed:
        the target arity must equal the cell arity (callers shrink functions
        to their support first).
        """
        found: List[Match] = []
        for cell in self.combinational():
            if cell.n_inputs != table.n_inputs or cell.feasible is None:
                continue
            seen_maps = set()
            for perm in _permutations(table.n_inputs):
                # config(pins) must satisfy: table(x) == config(x[perm])
                # i.e. config = table with inputs re-ordered so that cell pin
                # j receives target input perm[j].
                config = table.permute(perm)
                if config in cell.feasible and perm not in seen_maps:
                    seen_maps.add(perm)
                    found.append(Match(cell=cell, config=config, pin_map=perm))
                    break  # one pin assignment per cell is enough
        found.sort(key=lambda m: (m.cell.area, m.cell.name))
        return found

    def best_match(self, table: TruthTable) -> Optional[Match]:
        """Smallest-area single-cell implementation, or ``None``."""
        found = self.matches(table)
        return found[0] if found else None


def _permutations(n: int) -> Tuple[Tuple[int, ...], ...]:
    import itertools

    return tuple(itertools.permutations(range(n)))


def lut_plb_library() -> Library:
    """Restricted library for the LUT-based PLB (paper Figure 1)."""
    return Library(
        "lut_plb",
        [make_lut3(), make_nd3wi(), make_nd2wi(), make_inv(), make_buf(), make_dff()],
    )


def granular_plb_library() -> Library:
    """Restricted library for the granular PLB (paper Figure 4)."""
    return Library(
        "granular_plb",
        [make_mux2(), make_xoa(), make_nd3wi(), make_nd2wi(), make_inv(),
         make_buf(), make_dff()],
    )


def generic_library() -> Library:
    """Every component cell; used by design generators before mapping."""
    return Library("generic", standard_cells().values())
