"""Synthetic cell characterization (the CellRater stand-in).

The paper generates its timing library by characterizing each fixed-size
component cell with Silicon Metrics CellRater.  We reproduce the *product*
of that step: a lookup-table timing library (NLDM-style delay-vs-load
tables) derived from the logical-effort parameters on each
:class:`~repro.cells.celltypes.CellType`, with a mild super-linear term at
high load to mimic slew degradation.  STA interpolates these tables rather
than calling the analytic model directly, matching how a real flow consumes
a characterized library.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Tuple

from .celltypes import CellType, TAU_NS
from .library import Library

#: Load points (in unit-inverter input loads) at which cells are sampled.
DEFAULT_LOAD_POINTS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: Coefficient of the slew-degradation term added beyond the linear model.
SLEW_PENALTY = 0.004


@dataclass(frozen=True)
class DelayTable:
    """Delay-vs-load lookup table for one cell (ns)."""

    cell_name: str
    loads: Tuple[float, ...]
    delays: Tuple[float, ...]

    def delay(self, load: float) -> float:
        """Piecewise-linear interpolation with end-slope extrapolation."""
        loads, delays = self.loads, self.delays
        if load <= loads[0]:
            lo, hi = 0, 1
        elif load >= loads[-1]:
            lo, hi = len(loads) - 2, len(loads) - 1
        else:
            hi = bisect_left(loads, load)
            lo = hi - 1
        span = loads[hi] - loads[lo]
        frac = (load - loads[lo]) / span
        return delays[lo] + frac * (delays[hi] - delays[lo])


@dataclass(frozen=True)
class CharacterizedCell:
    """Characterization results for one cell."""

    cell: CellType
    table: DelayTable
    input_caps: Dict[str, float]

    def delay(self, load: float) -> float:
        return self.table.delay(load)


class TimingLibrary:
    """A characterized component library consumed by STA."""

    def __init__(self, library: Library, cells: Dict[str, CharacterizedCell]):
        self.library = library
        self._cells = cells

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def cell(self, name: str) -> CharacterizedCell:
        return self._cells[name]

    def delay(self, cell_name: str, load: float) -> float:
        return self._cells[cell_name].delay(load)

    def pin_cap(self, cell_name: str, pin: str) -> float:
        return self._cells[cell_name].input_caps[pin]


def characterize_cell(
    cell: CellType, load_points: Tuple[float, ...] = DEFAULT_LOAD_POINTS
) -> CharacterizedCell:
    """Sample one cell's delay over the load sweep."""
    cin = max(cell.input_caps.values()) if cell.input_caps else 1.0
    delays = []
    for load in load_points:
        h = load / cin
        linear = TAU_NS * (cell.parasitic + cell.logical_effort * h)
        slew = TAU_NS * SLEW_PENALTY * h * h
        delays.append(linear + slew)
    table = DelayTable(cell_name=cell.name, loads=load_points, delays=tuple(delays))
    return CharacterizedCell(cell=cell, table=table, input_caps=dict(cell.input_caps))


def characterize_library(
    library: Library, load_points: Tuple[float, ...] = DEFAULT_LOAD_POINTS
) -> TimingLibrary:
    """Characterize every cell in ``library``."""
    cells = {cell.name: characterize_cell(cell, load_points) for cell in library}
    return TimingLibrary(library, cells)
