"""Component cells, restricted libraries, and timing characterization."""

from .celltypes import (
    CellType,
    DFF_CLK_TO_Q_NS,
    DFF_SETUP_NS,
    TAU_NS,
    make_buf,
    make_dff,
    make_inv,
    make_lut3,
    make_mux2,
    make_nd2wi,
    make_nd3wi,
    make_xoa,
    mux_table,
    nand_table,
    standard_cells,
)
from .library import (
    Library,
    LibraryError,
    Match,
    generic_library,
    granular_plb_library,
    lut_plb_library,
)

__all__ = [
    "CellType",
    "DFF_CLK_TO_Q_NS",
    "DFF_SETUP_NS",
    "TAU_NS",
    "make_buf",
    "make_dff",
    "make_inv",
    "make_lut3",
    "make_mux2",
    "make_nd2wi",
    "make_nd3wi",
    "make_xoa",
    "mux_table",
    "nand_table",
    "standard_cells",
    "Library",
    "LibraryError",
    "Match",
    "generic_library",
    "granular_plb_library",
    "lut_plb_library",
]

from .characterize import (
    CharacterizedCell,
    DelayTable,
    TimingLibrary,
    characterize_cell,
    characterize_library,
)

__all__ += [
    "CharacterizedCell",
    "DelayTable",
    "TimingLibrary",
    "characterize_cell",
    "characterize_library",
]
