"""Component-cell definitions for the VPGA restricted libraries.

The paper's flow (Section 3.1) synthesizes onto a *restricted library of
standard cells* consisting of the component cells of the target PLB —
"for example MUX, XOA, ND3WI, 3-LUT, buffers and inverters", each with a
fixed size chosen for a good power-delay trade-off.  This module defines
those component cells.

Functional model
----------------
Combinational cells carry a set of *feasible functions*: the truth tables
the physical cell can realize by via configuration.  For the "with
programmable inversion" gates (ND2WI/ND3WI) that set is every
input/output-polarity variant of NAND; for a LUT3 it is all 256 3-input
functions; for a MUX it is the single mux function.  A netlist instance
picks one concrete function from the set (its *configuration*).

Timing model (stand-in for Silicon Metrics CellRater)
-----------------------------------------------------
The method of logical effort: ``delay = tau * (p + g * C_load / C_in)``.
``g`` (logical effort) is fixed by cell topology, ``C_in`` grows with cell
sizing, ``p`` is the parasitic delay.  The LUT3 is a 3-level via-configured
mux tree, so it pays a large parasitic delay even when configured as a
simple 2-input function — exactly the inferiority the paper leans on.

Area model
----------
Synthetic areas in um^2 at a 0.18um-class node, calibrated (see
:mod:`repro.core.plb`) so the published PLB-level ratios hold: granular
PLB ~1.20x the LUT PLB, granular combinational area ~1.266x.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Optional, Tuple

from ..logic.truthtable import TruthTable

#: Delay unit, in nanoseconds per tau.  Chosen so that a fanout-of-4
#: inverter delay lands near 0.05 ns, a plausible 0.18um figure; the paper's
#: 0.5 ns cycle target then maps onto paths of ~10 logic levels.
TAU_NS = 0.012


@lru_cache(maxsize=None)
def _polarity_variants(base: TruthTable) -> FrozenSet[TruthTable]:
    """All input/output polarity variants of ``base`` (the "WI" behaviour)."""
    variants = set()
    for flips in range(1 << base.n_inputs):
        table = base
        for i in range(base.n_inputs):
            if (flips >> i) & 1:
                table = table.flip_input(i)
        variants.add(table)
        variants.add(~table)
    return frozenset(variants)


@dataclass(frozen=True)
class CellType:
    """A fixed-size component cell of a PLB architecture.

    Parameters
    ----------
    name:
        Library name, e.g. ``"ND3WI"``.
    pins:
        Ordered input pin names; the output pin is always ``"Y"`` (or
        ``"Q"`` for sequential cells).
    feasible:
        Truth tables (over the input pins, in order) that via configuration
        can realize.  ``None`` for sequential cells.
    area:
        Layout area in um^2.
    input_caps:
        Input capacitance per pin, in normalized unit-inverter loads.
    logical_effort:
        Logical effort ``g`` of the worst input-to-output arc.
    parasitic:
        Parasitic delay ``p`` in tau.
    is_sequential:
        True for the DFF.
    max_load:
        Load (same units as caps) beyond which the cell needs buffering.
    """

    name: str
    pins: Tuple[str, ...]
    feasible: Optional[FrozenSet[TruthTable]]
    area: float
    input_caps: Dict[str, float] = field(hash=False)
    logical_effort: float = 1.0
    parasitic: float = 1.0
    is_sequential: bool = False
    max_load: float = 16.0

    def __post_init__(self):
        if set(self.input_caps) != set(self.pins):
            raise ValueError(f"{self.name}: input_caps must cover pins exactly")
        if self.feasible is not None:
            for table in self.feasible:
                if table.n_inputs != len(self.pins):
                    raise ValueError(
                        f"{self.name}: feasible table arity {table.n_inputs} "
                        f"!= pin count {len(self.pins)}"
                    )

    @property
    def n_inputs(self) -> int:
        return len(self.pins)

    @property
    def output_pin(self) -> str:
        return "Q" if self.is_sequential else "Y"

    def can_implement(self, table: TruthTable) -> bool:
        """True when some via configuration realizes ``table`` exactly."""
        if self.feasible is None or table.n_inputs != self.n_inputs:
            return False
        return table in self.feasible

    def delay(self, load: float) -> float:
        """Propagation delay in ns for a given output load."""
        cin = max(self.input_caps.values()) if self.input_caps else 1.0
        return TAU_NS * (self.parasitic + self.logical_effort * load / cin)


# ----------------------------------------------------------------------
# Base functions
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def nand_table(n: int) -> TruthTable:
    """n-input NAND."""
    acc = TruthTable.input_var(n, 0)
    for i in range(1, n):
        acc = acc & TruthTable.input_var(n, i)
    return ~acc


@lru_cache(maxsize=None)
def mux_table() -> TruthTable:
    """2:1 mux with pin order (S, A, B): ``S ? B : A``."""
    s, a, b = TruthTable.inputs(3)
    return TruthTable.mux(s, a, b)


@lru_cache(maxsize=None)
def buf_table() -> TruthTable:
    return TruthTable.input_var(1, 0)


@lru_cache(maxsize=None)
def inv_table() -> TruthTable:
    return ~TruthTable.input_var(1, 0)


# ----------------------------------------------------------------------
# The component cells
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def make_inv() -> CellType:
    return CellType(
        name="INV", pins=("A",), feasible=frozenset({inv_table()}),
        area=5.0, input_caps={"A": 1.0}, logical_effort=1.0, parasitic=1.0,
    )


@lru_cache(maxsize=None)
def make_buf() -> CellType:
    return CellType(
        name="BUF", pins=("A",), feasible=frozenset({buf_table()}),
        area=7.5, input_caps={"A": 1.0}, logical_effort=1.0, parasitic=2.0,
        max_load=32.0,
    )


@lru_cache(maxsize=None)
def make_nd2wi() -> CellType:
    """2-input NAND with programmable input/output inversion (8 functions)."""
    return CellType(
        name="ND2WI", pins=("A", "B"), feasible=_polarity_variants(nand_table(2)),
        area=13.0, input_caps={"A": 1.35, "B": 1.35},
        logical_effort=4.0 / 3.0, parasitic=2.0,
    )


@lru_cache(maxsize=None)
def make_nd3wi() -> CellType:
    """3-input NAND with programmable input/output inversion (16 functions)."""
    return CellType(
        name="ND3WI", pins=("A", "B", "C"), feasible=_polarity_variants(nand_table(3)),
        area=15.0, input_caps={"A": 1.7, "B": 1.7, "C": 1.7},
        logical_effort=5.0 / 3.0, parasitic=3.0,
    )


@lru_cache(maxsize=None)
def make_mux2() -> CellType:
    """Via-patterned 2:1 mux (pin order S, A, B; output ``S ? B : A``)."""
    return CellType(
        name="MUX2", pins=("S", "A", "B"), feasible=frozenset({mux_table()}),
        area=22.0, input_caps={"S": 2.0, "A": 1.5, "B": 1.5},
        logical_effort=2.0, parasitic=3.0,
    )


@lru_cache(maxsize=None)
def make_xoa() -> CellType:
    """The up-sized mux of the granular PLB.

    Functionally identical to MUX2 but sized for speed: larger input
    capacitance means a smaller delay slope into the same load.  The paper
    names it XOA because it is primarily configured as an XOR or a ND2WI
    replacement.
    """
    return CellType(
        name="XOA", pins=("S", "A", "B"), feasible=frozenset({mux_table()}),
        area=27.0, input_caps={"S": 2.8, "A": 2.1, "B": 2.1},
        logical_effort=2.0, parasitic=2.6,
    )


@lru_cache(maxsize=None)
def make_lut3() -> CellType:
    """Via-configured 3-LUT: an 8:1 mux tree, any 3-input function.

    The mux tree is three levels deep, so the LUT carries a large parasitic
    delay even when configured as a trivial function — the paper's central
    argument against coarse granularity ([10]: "substantially inferior to an
    equivalent standard cell ... when configured as a simple logic
    function").
    """
    feasible = frozenset(TruthTable(3, mask) for mask in range(256))
    return CellType(
        name="LUT3", pins=("A", "B", "C"), feasible=feasible,
        area=52.0, input_caps={"A": 2.2, "B": 2.2, "C": 2.2},
        logical_effort=2.6, parasitic=7.5,
    )


@lru_cache(maxsize=None)
def make_dff() -> CellType:
    """D flip-flop; the one sequential component cell."""
    return CellType(
        name="DFF", pins=("D",), feasible=None,
        area=30.0, input_caps={"D": 1.2},
        logical_effort=1.5, parasitic=4.0, is_sequential=True,
    )


#: Clock-to-Q delay of the DFF, ns.
DFF_CLK_TO_Q_NS = 0.10
#: Setup time of the DFF, ns.
DFF_SETUP_NS = 0.06


def standard_cells() -> Dict[str, CellType]:
    """All component cells, keyed by name."""
    cells = (
        make_inv(), make_buf(), make_nd2wi(), make_nd3wi(),
        make_mux2(), make_xoa(), make_lut3(), make_dff(),
    )
    return {cell.name: cell for cell in cells}
