"""Bit-parallel netlist simulation.

Signals are numpy ``uint64`` arrays; each bit lane is an independent test
vector, so one pass evaluates 64 * n_words vectors.  Sequential designs are
simulated cycle by cycle with explicit DFF state.  Simulation is the
equivalence oracle used throughout the flow: every transformation stage
(mapping, compaction, packing, buffering) must preserve these outputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..logic.truthtable import TruthTable
from .core import Netlist, NetlistError

Vectors = Dict[str, np.ndarray]


def random_vectors(
    names: Sequence[str], n_words: int = 4, seed: int = 0
) -> Vectors:
    """Random stimulus: one uint64 array of ``n_words`` per name."""
    rng = np.random.default_rng(seed)
    return {
        name: rng.integers(0, np.iinfo(np.uint64).max, size=n_words, dtype=np.uint64)
        for name in names
    }


def _eval_config(config: TruthTable, inputs: List[np.ndarray]) -> np.ndarray:
    """Evaluate a cell configuration bitwise over vector inputs."""
    shape = inputs[0].shape if inputs else (1,)
    result = np.zeros(shape, dtype=np.uint64)
    ones = np.full(shape, np.iinfo(np.uint64).max, dtype=np.uint64)
    for row in range(1 << config.n_inputs):
        if not (config.mask >> row) & 1:
            continue
        term = ones.copy()
        for i, value in enumerate(inputs):
            if (row >> i) & 1:
                term &= value
            else:
                term &= ~value
        result |= term
    return result


def evaluate_combinational(
    netlist: Netlist, values: Vectors
) -> Vectors:
    """Evaluate all combinational logic given input and DFF-Q values.

    ``values`` must define every primary input and every DFF output net.
    Returns values for every net.
    """
    state: Vectors = dict(values)
    for inst in netlist.topological_order():
        ins = []
        for net in inst.input_nets():
            if net not in state:
                raise NetlistError(f"net {net!r} has no value during evaluation")
            ins.append(state[net])
        assert inst.config is not None
        state[inst.output_net] = _eval_config(inst.config, ins)
    return state


def simulate(
    netlist: Netlist,
    input_vectors: Vectors,
    n_cycles: int = 1,
    initial_state: Optional[Vectors] = None,
) -> List[Vectors]:
    """Simulate ``n_cycles`` clock cycles.

    The same input vectors are applied every cycle (sufficient for
    equivalence checking; supply per-cycle stimulus by calling repeatedly).
    Returns, per cycle, the value of every net after combinational settling.
    DFF state starts at zero unless ``initial_state`` gives Q values.
    """
    missing = [name for name in netlist.inputs if name not in input_vectors]
    if missing:
        raise NetlistError(f"missing input vectors for {missing}")
    shape = next(iter(input_vectors.values())).shape if input_vectors else (1,)

    dffs = list(netlist.sequential_instances())
    state: Vectors = {}
    for dff in dffs:
        q_net = dff.output_net
        if initial_state and q_net in initial_state:
            state[q_net] = initial_state[q_net].astype(np.uint64)
        else:
            state[q_net] = np.zeros(shape, dtype=np.uint64)

    history: List[Vectors] = []
    for _ in range(n_cycles):
        values = dict(input_vectors)
        values.update(state)
        settled = evaluate_combinational(netlist, values)
        history.append(settled)
        state = {dff.output_net: settled[dff.pin_nets["D"]] for dff in dffs}
    return history


def simulate_stream(
    netlist: Netlist,
    stimulus: Sequence[Vectors],
    initial_state: Optional[Vectors] = None,
) -> List[Vectors]:
    """Simulate with per-cycle stimulus.

    ``stimulus[t]`` supplies every primary input's vectors for cycle ``t``;
    the number of cycles equals ``len(stimulus)``.  Returns settled values
    per cycle, like :func:`simulate`.
    """
    if not stimulus:
        return []
    shape = next(iter(stimulus[0].values())).shape if stimulus[0] else (1,)
    dffs = list(netlist.sequential_instances())
    state: Vectors = {}
    for dff in dffs:
        q_net = dff.output_net
        if initial_state and q_net in initial_state:
            state[q_net] = initial_state[q_net].astype(np.uint64)
        else:
            state[q_net] = np.zeros(shape, dtype=np.uint64)

    history: List[Vectors] = []
    for cycle, vectors in enumerate(stimulus):
        missing = [name for name in netlist.inputs if name not in vectors]
        if missing:
            raise NetlistError(f"cycle {cycle}: missing inputs {missing}")
        values = dict(vectors)
        values.update(state)
        settled = evaluate_combinational(netlist, values)
        history.append(settled)
        state = {dff.output_net: settled[dff.pin_nets["D"]] for dff in dffs}
    return history


def outputs_equal(
    a: Netlist,
    b: Netlist,
    n_words: int = 4,
    n_cycles: int = 3,
    seed: int = 0,
) -> bool:
    """Randomized sequential equivalence check on primary outputs.

    Both netlists must agree on input and output names.  DFF count may
    differ (transformations may retime buffers around registers must not,
    and do not, happen in this flow — state correspondence is by reset-zero
    plus identical input streams).
    """
    if sorted(a.inputs) != sorted(b.inputs):
        raise NetlistError("input name mismatch between netlists")
    if sorted(a.outputs) != sorted(b.outputs):
        raise NetlistError("output name mismatch between netlists")
    vectors = random_vectors(a.inputs, n_words=n_words, seed=seed)
    hist_a = simulate(a, vectors, n_cycles=n_cycles)
    hist_b = simulate(b, vectors, n_cycles=n_cycles)
    for cycle_a, cycle_b in zip(hist_a, hist_b):
        for out in a.outputs:
            if not np.array_equal(cycle_a[out], cycle_b[out]):
                return False
    return True
