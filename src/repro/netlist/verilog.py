"""Structural Verilog export/import for flow artifacts.

Writes a flat structural module using the component-cell names, with each
instance's via configuration recorded as a ``CONFIG`` attribute comment so
a round trip is lossless.  The reader accepts only what the writer emits
(this is an interchange format for this repository, not a Verilog parser).
"""

from __future__ import annotations

import re
from typing import Dict, List, TextIO

from ..cells.library import Library
from ..logic.truthtable import TruthTable
from .core import Netlist, NetlistError

_ID_RE = r"[A-Za-z_$][A-Za-z0-9_$\[\]]*"
_INST_RE = re.compile(
    rf"^\s*(?P<cell>{_ID_RE})\s+(?P<name>{_ID_RE})\s*\((?P<conns>.*)\)\s*;"
    rf"\s*(?://\s*CONFIG\s+(?P<config>\d+):(?P<mask>\d+))?\s*$"
)
_CONN_RE = re.compile(rf"\.\s*(?P<pin>{_ID_RE})\s*\(\s*(?P<net>{_ID_RE})\s*\)")


def _escape(name: str) -> str:
    """Verilog-escape names containing brackets (bus bits)."""
    return name


def write_verilog(netlist: Netlist, stream: TextIO) -> None:
    """Write ``netlist`` as a flat structural module."""
    ports = [_escape(p) for p in netlist.inputs + netlist.outputs]
    stream.write(f"module {netlist.name} ({', '.join(ports)});\n")
    for name in netlist.inputs:
        stream.write(f"  input {_escape(name)};\n")
    for name in netlist.outputs:
        stream.write(f"  output {_escape(name)};\n")
    port_nets = set(netlist.inputs) | set(netlist.outputs)
    for name in netlist.nets:
        if name not in port_nets:
            stream.write(f"  wire {_escape(name)};\n")
    for inst in netlist.instances.values():
        conns = [f".{pin}({_escape(net)})" for pin, net in sorted(inst.pin_nets.items())]
        line = f"  {inst.cell.name} {_escape(inst.name)} ({', '.join(conns)});"
        if inst.config is not None:
            line += f" // CONFIG {inst.config.n_inputs}:{inst.config.mask}"
        stream.write(line + "\n")
    stream.write("endmodule\n")


def read_verilog(stream: TextIO, library: Library) -> Netlist:
    """Read a module written by :func:`write_verilog`."""
    netlist: Netlist = None  # type: ignore[assignment]
    declared_outputs: List[str] = []
    pending_instances: List[Dict] = []
    wires: List[str] = []

    for raw in stream:
        line = raw.strip()
        if not line or line.startswith("//"):
            continue
        if line.startswith("module"):
            name = line.split()[1].split("(")[0]
            netlist = Netlist(name)
            continue
        if netlist is None:
            raise NetlistError("instance before module header")
        if line.startswith("input"):
            netlist.add_input(line.split(None, 1)[1].rstrip(";").strip())
            continue
        if line.startswith("output"):
            declared_outputs.append(line.split(None, 1)[1].rstrip(";").strip())
            continue
        if line.startswith("wire"):
            wires.append(line.split(None, 1)[1].rstrip(";").strip())
            continue
        if line.startswith("endmodule"):
            break
        match = _INST_RE.match(line)
        if match is None:
            raise NetlistError(f"unparseable line: {line!r}")
        pin_nets = {
            conn.group("pin"): conn.group("net")
            for conn in _CONN_RE.finditer(match.group("conns"))
        }
        config = None
        if match.group("config") is not None:
            config = TruthTable(int(match.group("config")), int(match.group("mask")))
        pending_instances.append(
            {
                "cell": match.group("cell"),
                "name": match.group("name"),
                "pin_nets": pin_nets,
                "config": config,
            }
        )

    if netlist is None:
        raise NetlistError("no module found")
    for wire in wires + declared_outputs:
        if wire not in netlist.nets:
            netlist.add_net(wire)
    for spec in pending_instances:
        cell = library.cell(spec["cell"])
        netlist.add_instance(
            cell, spec["pin_nets"], config=spec["config"], name=spec["name"]
        )
    for out in declared_outputs:
        netlist.add_output(out)
    return netlist
