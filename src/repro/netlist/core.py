"""Gate-level netlist data structure.

A :class:`Netlist` is a flat (non-hierarchical) network of cell instances
connected by nets, with named primary inputs and outputs and an implicit
single clock for all DFFs.  Every combinational instance carries its
concrete *configuration*: the truth table (over its input pins, in pin
order) that its via pattern realizes.  This keeps simulation exact across
every flow stage — technology mapping, compaction, packing and buffering
are all checked for functional equivalence by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..cells.celltypes import CellType
from ..logic.truthtable import TruthTable


class NetlistError(ValueError):
    """Raised on malformed netlist operations."""


@dataclass
class Net:
    """A single-driver signal.

    ``driver`` is ``None`` for primary inputs and for undriven (floating)
    nets — validation flags the latter.  ``sinks`` lists ``(cell_name,
    pin)`` loads; primary outputs are tracked on the netlist.
    """

    name: str
    driver: Optional[Tuple[str, str]] = None
    sinks: List[Tuple[str, str]] = field(default_factory=list)
    is_input: bool = False

    def fanout(self) -> int:
        return len(self.sinks)


@dataclass
class Instance:
    """A placed-or-not cell instance.

    ``config`` is the realized truth table for combinational cells (always a
    member of ``cell.feasible``); ``None`` for the DFF.
    """

    name: str
    cell: CellType
    pin_nets: Dict[str, str]
    config: Optional[TruthTable] = None

    def __post_init__(self):
        missing = set(self.cell.pins) - set(self.pin_nets)
        extra = set(self.pin_nets) - set(self.cell.pins) - {self.cell.output_pin}
        if missing:
            raise NetlistError(f"{self.name}: unconnected pins {sorted(missing)}")
        if extra:
            raise NetlistError(f"{self.name}: unknown pins {sorted(extra)}")
        if self.cell.is_sequential:
            if self.config is not None:
                raise NetlistError(f"{self.name}: sequential cells take no config")
        else:
            if self.config is None:
                raise NetlistError(f"{self.name}: combinational cells need a config")
            if self.cell.feasible is not None and not self.cell.can_implement(self.config):
                raise NetlistError(
                    f"{self.name}: cell {self.cell.name} cannot realize the "
                    f"requested configuration {self.config!r}"
                )

    @property
    def output_net(self) -> str:
        return self.pin_nets[self.cell.output_pin]

    def input_nets(self) -> Tuple[str, ...]:
        return tuple(self.pin_nets[pin] for pin in self.cell.pins)

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential


class Netlist:
    """A flat gate-level network with single-driver nets."""

    def __init__(self, name: str):
        self.name = name
        self.nets: Dict[str, Net] = {}
        self.instances: Dict[str, Instance] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def fresh_name(self, prefix: str) -> str:
        """A name not yet used by any net or instance."""
        while True:
            self._counter += 1
            name = f"{prefix}_{self._counter}"
            if name not in self.nets and name not in self.instances:
                return name

    def add_net(self, name: Optional[str] = None) -> str:
        name = name or self.fresh_name("n")
        if name in self.nets:
            raise NetlistError(f"net {name!r} already exists")
        self.nets[name] = Net(name)
        return name

    def add_input(self, name: str) -> str:
        net_name = self.add_net(name)
        self.nets[net_name].is_input = True
        self.inputs.append(net_name)
        return net_name

    def add_output(self, net_name: str) -> None:
        if net_name not in self.nets:
            raise NetlistError(f"no net {net_name!r} to mark as output")
        if net_name in self.outputs:
            raise NetlistError(f"net {net_name!r} is already an output")
        self.outputs.append(net_name)

    def add_instance(
        self,
        cell: CellType,
        pin_nets: Dict[str, str],
        config: Optional[TruthTable] = None,
        name: Optional[str] = None,
    ) -> Instance:
        """Add an instance; the output pin may name a new or existing net."""
        name = name or self.fresh_name(cell.name.lower())
        if name in self.instances:
            raise NetlistError(f"instance {name!r} already exists")
        out_pin = cell.output_pin
        if out_pin not in pin_nets:
            pin_nets = dict(pin_nets)
            pin_nets[out_pin] = self.add_net()
        inst = Instance(name=name, cell=cell, pin_nets=pin_nets, config=config)
        out_net = pin_nets[out_pin]
        if out_net not in self.nets:
            self.add_net(out_net)
        net = self.nets[out_net]
        if net.driver is not None or net.is_input:
            raise NetlistError(f"net {out_net!r} already driven")
        net.driver = (name, out_pin)
        for pin in cell.pins:
            in_net = pin_nets[pin]
            if in_net not in self.nets:
                raise NetlistError(f"instance {name!r} pin {pin} uses unknown net {in_net!r}")
            self.nets[in_net].sinks.append((name, pin))
        self.instances[name] = inst
        return inst

    def remove_instance(self, name: str) -> None:
        """Remove an instance, leaving its output net undriven."""
        inst = self.instances.pop(name)
        out_net = self.nets[inst.output_net]
        out_net.driver = None
        for pin in inst.cell.pins:
            self.nets[inst.pin_nets[pin]].sinks.remove((name, pin))

    def remove_net(self, name: str) -> None:
        net = self.nets[name]
        if net.driver is not None or net.sinks or net.is_input or name in self.outputs:
            raise NetlistError(f"net {name!r} is still in use")
        del self.nets[name]

    def rename_net(self, old: str, new: str) -> None:
        """Rename a net, updating every driver/sink/port reference."""
        if new in self.nets:
            raise NetlistError(f"net {new!r} already exists")
        net = self.nets.pop(old)
        net.name = new
        self.nets[new] = net
        if net.driver is not None:
            inst_name, pin = net.driver
            self.instances[inst_name].pin_nets[pin] = new
        for inst_name, pin in net.sinks:
            self.instances[inst_name].pin_nets[pin] = new
        self.inputs = [new if name == old else name for name in self.inputs]
        self.outputs = [new if name == old else name for name in self.outputs]

    def rewire_sink(self, cell_name: str, pin: str, new_net: str) -> None:
        """Move one instance input pin to a different net."""
        inst = self.instances[cell_name]
        old_net = inst.pin_nets[pin]
        self.nets[old_net].sinks.remove((cell_name, pin))
        inst.pin_nets[pin] = new_net
        self.nets[new_net].sinks.append((cell_name, pin))

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def driver_of(self, net_name: str) -> Optional[Instance]:
        driver = self.nets[net_name].driver
        return self.instances[driver[0]] if driver else None

    def combinational_instances(self) -> Iterator[Instance]:
        return (i for i in self.instances.values() if not i.is_sequential)

    def sequential_instances(self) -> Iterator[Instance]:
        return (i for i in self.instances.values() if i.is_sequential)

    def topological_order(self) -> List[Instance]:
        """Combinational instances in dependency order.

        DFF outputs and primary inputs are sources; DFF inputs are sinks.
        Raises :class:`NetlistError` on combinational cycles.
        """
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        for inst in self.combinational_instances():
            count = 0
            for net_name in inst.input_nets():
                driver = self.driver_of(net_name)
                if driver is not None and not driver.is_sequential:
                    count += 1
                    dependents.setdefault(driver.name, []).append(inst.name)
            indegree[inst.name] = count
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: List[Instance] = []
        seen: Set[str] = set()
        queue = list(ready)
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            order.append(self.instances[name])
            for dep in dependents.get(name, ()):  # pragma: no branch
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    queue.append(dep)
        if len(order) != len(indegree):
            raise NetlistError(f"{self.name}: combinational cycle detected")
        return order

    def transitive_fanin(self, net_name: str) -> Set[str]:
        """Instance names feeding ``net_name`` through combinational logic."""
        result: Set[str] = set()
        stack = [net_name]
        while stack:
            current = stack.pop()
            driver = self.driver_of(current)
            if driver is None or driver.name in result:
                continue
            result.add(driver.name)
            if not driver.is_sequential:
                stack.extend(driver.input_nets())
        return result

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    def sweep_dangling(self) -> int:
        """Remove instances whose output drives nothing; returns count."""
        removed = 0
        while True:
            dead = [
                inst.name
                for inst in self.instances.values()
                if not self.nets[inst.output_net].sinks
                and inst.output_net not in self.outputs
            ]
            if not dead:
                return removed
            for name in dead:
                out_net = self.instances[name].output_net
                self.remove_instance(name)
                self.remove_net(out_net)
                removed += 1

    def copy(self) -> "Netlist":
        """Deep copy (cells are shared; they are immutable)."""
        clone = Netlist(self.name)
        clone._counter = self._counter
        for name in self.inputs:
            clone.add_input(name)
        for net_name in self.nets:
            if net_name not in clone.nets:
                clone.add_net(net_name)
        for inst in self.instances.values():
            clone.add_instance(
                inst.cell, dict(inst.pin_nets), config=inst.config, name=inst.name
            )
        for net_name in self.outputs:
            clone.add_output(net_name)
        return clone

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}: {len(self.instances)} instances, "
            f"{len(self.nets)} nets, {len(self.inputs)} in, {len(self.outputs)} out)"
        )
