"""Netlist construction helpers (the "RTL capture" front end).

Design generators describe logic with :class:`NetlistBuilder`, which offers
named gate helpers (``AND``, ``XOR``, ``MUX``, ``DFF``, ...) over *signals*.
A signal is either a net name or one of the constant sentinels
:data:`CONST0` / :data:`CONST1`; constants are folded at build time, so the
captured netlist never contains tie cells.

Captured gates use on-the-fly *capture cells* — one synthetic
:class:`~repro.cells.celltypes.CellType` per distinct truth table.  These
are placeholders: the design flow re-synthesizes every design through the
AIG and maps it onto the restricted PLB component library, exactly as the
paper feeds RTL through Design Compiler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cells.celltypes import CellType, make_dff
from ..logic.truthtable import TruthTable
from .core import Netlist, NetlistError

#: Constant-signal sentinels (never valid net names).
CONST0 = "$const0"
CONST1 = "$const1"

Signal = str

_CAPTURE_PINS = ("A", "B", "C", "D")
_capture_cache: Dict[Tuple[int, int], CellType] = {}


def capture_cell(table: TruthTable) -> CellType:
    """The synthetic capture cell realizing exactly ``table``."""
    if not 1 <= table.n_inputs <= 4:
        raise NetlistError(f"capture cells support 1..4 inputs, got {table.n_inputs}")
    key = (table.n_inputs, table.mask)
    if key not in _capture_cache:
        pins = _CAPTURE_PINS[: table.n_inputs]
        _capture_cache[key] = CellType(
            name=f"CAP{table.n_inputs}_{table.mask:0{1 << table.n_inputs >> 2 or 1}X}",
            pins=pins,
            feasible=frozenset({table}),
            area=4.0 * table.n_inputs,
            input_caps={pin: 1.0 for pin in pins},
            logical_effort=1.0 + 0.3 * table.n_inputs,
            parasitic=float(table.n_inputs),
        )
    return _capture_cache[key]


def is_capture(cell: CellType) -> bool:
    """True for synthetic capture cells (names start with ``CAP``)."""
    return cell.name.startswith("CAP")


class NetlistBuilder:
    """Fluent construction of gate-level netlists with constant folding."""

    def __init__(self, name: str):
        self.netlist = Netlist(name)
        self._dff = make_dff()

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def input(self, name: str) -> Signal:
        return self.netlist.add_input(name)

    def input_word(self, name: str, width: int) -> List[Signal]:
        """``width`` inputs named ``name[i]``, LSB first."""
        return [self.input(f"{name}[{i}]") for i in range(width)]

    def output(self, signal: Signal, name: Optional[str] = None) -> str:
        """Mark ``signal`` as a primary output (materializing constants)."""
        net = self._materialize(signal)
        if name is not None and name != net:
            # Outputs need stable names: insert a buffer-like alias via a
            # 1-input capture identity cell onto a named net.
            identity = capture_cell(TruthTable.input_var(1, 0))
            inst = self.netlist.add_instance(
                identity, {"A": net, "Y": name}, config=TruthTable.input_var(1, 0)
            )
            net = inst.output_net
        self.netlist.add_output(net)
        return net

    def output_word(self, signals: Sequence[Signal], name: str) -> List[str]:
        return [self.output(sig, f"{name}[{i}]") for i, sig in enumerate(signals)]

    # ------------------------------------------------------------------
    # Core gate builder
    # ------------------------------------------------------------------
    def gate(self, table: TruthTable, *signals: Signal, name: Optional[str] = None) -> Signal:
        """Instantiate ``table`` over ``signals``, folding constants.

        Returns the output signal; may return a constant sentinel or an
        existing signal when the function collapses.
        """
        if len(signals) != table.n_inputs:
            raise NetlistError(
                f"gate arity mismatch: table has {table.n_inputs} inputs, "
                f"got {len(signals)} signals"
            )
        # Fold constant inputs (highest index first keeps indices valid).
        live: List[Signal] = list(signals)
        for index in range(table.n_inputs - 1, -1, -1):
            if live[index] == CONST0:
                table = table.cofactor(index, 0)
                live.pop(index)
            elif live[index] == CONST1:
                table = table.cofactor(index, 1)
                live.pop(index)
        # Fold duplicate signals: if net appears twice, merge those inputs.
        index = 0
        while index < len(live):
            dup = next(
                (j for j in range(index + 1, len(live)) if live[j] == live[index]), None
            )
            if dup is None:
                index += 1
                continue
            table = _merge_inputs(table, index, dup)
            live.pop(dup)
        # Drop non-support inputs.
        shrunk, kept = table.shrink_to_support()
        table = shrunk
        live = [live[i] for i in kept]

        if table.n_inputs == 0:
            return CONST1 if table.mask else CONST0
        if table.n_inputs == 1 and table.mask == 0b10:
            return live[0]
        cell = capture_cell(table)
        pin_nets = {pin: live[i] for i, pin in enumerate(cell.pins)}
        inst = self.netlist.add_instance(cell, pin_nets, config=table, name=name)
        return inst.output_net

    # ------------------------------------------------------------------
    # Named gates
    # ------------------------------------------------------------------
    def NOT(self, a: Signal) -> Signal:
        if a == CONST0:
            return CONST1
        if a == CONST1:
            return CONST0
        return self.gate(~TruthTable.input_var(1, 0), a)

    def _nary(self, op: str, signals: Sequence[Signal]) -> Signal:
        if not signals:
            raise NetlistError(f"{op} needs at least one operand")
        if len(signals) == 1:
            return signals[0]
        # Build as a balanced tree of <=3-input gates.
        level = list(signals)
        while len(level) > 1:
            nxt: List[Signal] = []
            for start in range(0, len(level), 3):
                chunk = level[start:start + 3]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                    continue
                n = len(chunk)
                acc = TruthTable.input_var(n, 0)
                for i in range(1, n):
                    var = TruthTable.input_var(n, i)
                    if op == "AND":
                        acc = acc & var
                    elif op == "OR":
                        acc = acc | var
                    else:
                        acc = acc ^ var
                nxt.append(self.gate(acc, *chunk))
            level = nxt
        return level[0]

    def AND(self, *signals: Signal) -> Signal:
        return self._nary("AND", signals)

    def OR(self, *signals: Signal) -> Signal:
        return self._nary("OR", signals)

    def XOR(self, *signals: Signal) -> Signal:
        return self._nary("XOR", signals)

    def NAND(self, *signals: Signal) -> Signal:
        return self.NOT(self.AND(*signals))

    def NOR(self, *signals: Signal) -> Signal:
        return self.NOT(self.OR(*signals))

    def XNOR(self, a: Signal, b: Signal) -> Signal:
        return self.NOT(self.XOR(a, b))

    def MUX(self, select: Signal, d0: Signal, d1: Signal) -> Signal:
        """``select ? d1 : d0``."""
        s, a, b = TruthTable.inputs(3)
        return self.gate(TruthTable.mux(s, a, b), select, d0, d1)

    def AOI21(self, a: Signal, b: Signal, c: Signal) -> Signal:
        """``~((a & b) | c)`` — a staple of the paper's function mix."""
        x, y, z = TruthTable.inputs(3)
        return self.gate(~((x & y) | z), a, b, c)

    def MAJ(self, a: Signal, b: Signal, c: Signal) -> Signal:
        """Majority — the full-adder carry."""
        x, y, z = TruthTable.inputs(3)
        return self.gate((x & y) | (y & z) | (x & z), a, b, c)

    def DFF(self, d: Signal, name: Optional[str] = None) -> Signal:
        """Clocked register; returns the Q signal."""
        inst = self.netlist.add_instance(
            self._dff, {"D": self._materialize(d)}, name=name
        )
        return inst.output_net

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _materialize(self, signal: Signal) -> str:
        """Turn constant sentinels into real one-input gate outputs.

        Constants surviving to a register or output are realized as a
        constant-generating cell is not available, so we synthesize them
        from an arbitrary primary input: ``x & ~x`` / ``x | ~x``.
        """
        if signal not in (CONST0, CONST1):
            return signal
        if not self.netlist.inputs:
            raise NetlistError("cannot materialize a constant with no inputs")
        seed = self.netlist.inputs[0]
        table = TruthTable(1, 0b11 if signal == CONST1 else 0b00)
        cell = _const_cell(signal == CONST1)
        inst = self.netlist.add_instance(cell, {"A": seed}, config=table)
        return inst.output_net


def _merge_inputs(table: TruthTable, keep: int, drop: int) -> TruthTable:
    """Identify input ``drop`` with input ``keep`` (same driving signal)."""
    if keep == drop:
        raise NetlistError("cannot merge an input with itself")
    n = table.n_inputs
    new_n = n - 1
    mask = 0
    for new_row in range(1 << new_n):
        # Expand the new row back to the old input space: inputs below
        # ``drop`` keep their index, those at or above shift up by one.
        old_row = 0
        for new_i in range(new_n):
            old_i = new_i if new_i < drop else new_i + 1
            if (new_row >> new_i) & 1:
                old_row |= 1 << old_i
        keep_old = keep if keep < drop else keep + 1
        if (old_row >> keep_old) & 1:
            old_row |= 1 << drop
        if (table.mask >> old_row) & 1:
            mask |= 1 << new_row
    return TruthTable(new_n, mask)


_const_cells: Dict[bool, CellType] = {}


def _const_cell(value: bool) -> CellType:
    """A one-input cell that ignores its input and outputs a constant."""
    if value not in _const_cells:
        table = TruthTable(1, 0b11 if value else 0b00)
        _const_cells[value] = CellType(
            name=f"CAPTIE{int(value)}",
            pins=("A",),
            feasible=frozenset({table}),
            area=3.0,
            input_caps={"A": 0.1},
            logical_effort=0.1,
            parasitic=0.5,
        )
    return _const_cells[value]
