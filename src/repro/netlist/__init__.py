"""Gate-level netlist substrate: structure, builder, simulation, I/O."""

from .core import Instance, Net, Netlist, NetlistError
from .build import CONST0, CONST1, NetlistBuilder, capture_cell, is_capture
from .simulate import (
    evaluate_combinational,
    outputs_equal,
    random_vectors,
    simulate,
    simulate_stream,
)
from .stats import NetlistStats, cell_histogram, gather, nand2_equivalents, total_area
from .validate import check, validate
from .verilog import read_verilog, write_verilog

__all__ = [
    "Instance",
    "Net",
    "Netlist",
    "NetlistError",
    "CONST0",
    "CONST1",
    "NetlistBuilder",
    "capture_cell",
    "is_capture",
    "evaluate_combinational",
    "outputs_equal",
    "random_vectors",
    "simulate",
    "simulate_stream",
    "NetlistStats",
    "cell_histogram",
    "gather",
    "nand2_equivalents",
    "total_area",
    "check",
    "validate",
    "read_verilog",
    "write_verilog",
]
