"""Netlist statistics: gate counts, areas, NAND2 equivalents.

The paper reports design size "in units of equivalent 2-input Nand gates";
:func:`nand2_equivalents` reproduces that accounting using the ND2WI cell
area as the unit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from ..cells.celltypes import make_nd2wi
from .core import Netlist


@dataclass(frozen=True)
class NetlistStats:
    """Summary statistics for one netlist."""

    name: str
    n_instances: int
    n_combinational: int
    n_sequential: int
    n_nets: int
    n_inputs: int
    n_outputs: int
    total_area: float
    combinational_area: float
    sequential_area: float
    nand2_equivalents: float
    cell_histogram: Dict[str, int]

    @property
    def sequential_fraction(self) -> float:
        """Share of instances that are DFFs — the paper's Firewire axis."""
        if self.n_instances == 0:
            return 0.0
        return self.n_sequential / self.n_instances


def cell_histogram(netlist: Netlist) -> Dict[str, int]:
    """Instance count per cell type name."""
    return dict(Counter(inst.cell.name for inst in netlist.instances.values()))


def total_area(netlist: Netlist) -> float:
    """Sum of instance cell areas (um^2)."""
    return sum(inst.cell.area for inst in netlist.instances.values())


def nand2_equivalents(netlist: Netlist) -> float:
    """Design size in equivalent 2-input NAND gates (by area)."""
    unit = make_nd2wi().area
    return total_area(netlist) / unit


def gather(netlist: Netlist) -> NetlistStats:
    """Compute all statistics for ``netlist``."""
    comb_area = sum(
        inst.cell.area for inst in netlist.instances.values() if not inst.is_sequential
    )
    seq_area = sum(
        inst.cell.area for inst in netlist.instances.values() if inst.is_sequential
    )
    n_seq = sum(1 for _ in netlist.sequential_instances())
    n_inst = len(netlist.instances)
    return NetlistStats(
        name=netlist.name,
        n_instances=n_inst,
        n_combinational=n_inst - n_seq,
        n_sequential=n_seq,
        n_nets=len(netlist.nets),
        n_inputs=len(netlist.inputs),
        n_outputs=len(netlist.outputs),
        total_area=comb_area + seq_area,
        combinational_area=comb_area,
        sequential_area=seq_area,
        nand2_equivalents=(comb_area + seq_area) / make_nd2wi().area,
        cell_histogram=cell_histogram(netlist),
    )
