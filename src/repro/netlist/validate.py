"""Structural netlist validation.

``validate`` returns a list of human-readable problems (empty = clean).
``check`` raises on the first problem — the form used inside the flow,
where a malformed intermediate netlist should stop the run immediately.
"""

from __future__ import annotations

from typing import List

from .core import Netlist, NetlistError


def validate(netlist: Netlist) -> List[str]:
    """Collect structural problems: floating nets, bad refs, cycles."""
    problems: List[str] = []

    for name, net in netlist.nets.items():
        if net.driver is None and not net.is_input:
            problems.append(f"net {name!r} is undriven")
        if net.driver is not None and net.is_input:
            problems.append(f"primary input {name!r} is also driven")
        if net.driver is not None:
            inst_name, pin = net.driver
            if inst_name not in netlist.instances:
                problems.append(f"net {name!r} driven by unknown instance {inst_name!r}")
            elif netlist.instances[inst_name].pin_nets.get(pin) != name:
                problems.append(f"net {name!r} driver back-reference broken")
        for inst_name, pin in net.sinks:
            if inst_name not in netlist.instances:
                problems.append(f"net {name!r} feeds unknown instance {inst_name!r}")
            elif netlist.instances[inst_name].pin_nets.get(pin) != name:
                problems.append(f"net {name!r} sink back-reference broken ({inst_name}.{pin})")

    for inst in netlist.instances.values():
        for pin, net_name in inst.pin_nets.items():
            if net_name not in netlist.nets:
                problems.append(f"instance {inst.name!r} pin {pin} on unknown net {net_name!r}")
        out_net = inst.pin_nets.get(inst.cell.output_pin)
        if out_net is not None and out_net in netlist.nets:
            if netlist.nets[out_net].driver != (inst.name, inst.cell.output_pin):
                problems.append(f"instance {inst.name!r} output net driver mismatch")

    for out in netlist.outputs:
        if out not in netlist.nets:
            problems.append(f"primary output {out!r} is not a net")

    try:
        netlist.topological_order()
    except NetlistError as exc:
        problems.append(str(exc))

    return problems


def check(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` if the netlist is structurally broken."""
    problems = validate(netlist)
    if problems:
        raise NetlistError(
            f"{netlist.name}: {len(problems)} structural problems; first: {problems[0]}"
        )
