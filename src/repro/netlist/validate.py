"""Structural netlist validation (compat wrappers).

The real analysis lives in :mod:`repro.check.netlist_rules` as
severity-tagged findings (rule family ``NL``).  These wrappers keep the
historical surface: ``validate`` returns human-readable problem strings
(empty = clean), ``check`` raises on the first fatal finding — the form
used inside the flow, where a malformed intermediate netlist should
stop the run immediately.

Only ERROR-severity findings count as "problems" here; warnings (such
as dead-cone reports) are advisory and reachable via ``repro check``.
"""

from __future__ import annotations

from typing import List

from .core import Netlist, NetlistError


def validate(netlist: Netlist) -> List[str]:
    """Collect structural problems: floating nets, bad refs, cycles."""
    from ..check.findings import Severity
    from ..check.netlist_rules import check_netlist

    return [
        f"{finding.location}: {finding.message}"
        for finding in check_netlist(netlist)
        if finding.severity >= Severity.ERROR
    ]


def check(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` if the netlist is structurally broken."""
    problems = validate(netlist)
    if problems:
        raise NetlistError(
            f"{netlist.name}: {len(problems)} structural problems; first: {problems[0]}"
        )
