"""Physical synthesis substrate: grids, SA placement, buffering."""

from .grid import DEFAULT_UTILIZATION, PlacementGrid, Site, grid_for_netlist
from .sa import AnnealingPlacer, Placement
from .buffers import insert_buffers
from .physical_synthesis import (
    PhysicalResult,
    TIMING_WEIGHT,
    net_criticalities,
    run_physical_synthesis,
)

__all__ = [
    "DEFAULT_UTILIZATION",
    "PlacementGrid",
    "Site",
    "grid_for_netlist",
    "AnnealingPlacer",
    "Placement",
    "insert_buffers",
    "PhysicalResult",
    "TIMING_WEIGHT",
    "net_criticalities",
    "run_physical_synthesis",
]
