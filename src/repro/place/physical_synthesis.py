"""The physical-synthesis loop (the paper's Dolphin stage).

Place, estimate wires, analyze timing, derive net criticalities, insert
buffers on overloaded nets, and re-place with criticality weighting —
"a detailed ASIC-style placement that has been optimized for performance,
area and routability based on physical information".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..cells.characterize import TimingLibrary
from ..cells.library import Library
from ..netlist.core import Netlist
from ..timing.sta import TimingReport, analyze
from ..timing.wires import WireModel, wire_model_from_placement
from .buffers import insert_buffers
from .grid import (
    DEFAULT_UTILIZATION,
    PlacementGrid,
    Site,
    grid_for_netlist,
)
from .sa import AnnealingPlacer, Placement

#: Criticality weighting strength in the placement cost.
TIMING_WEIGHT = 2.0


@dataclass
class PhysicalResult:
    """Outcome of physical synthesis."""

    netlist: Netlist
    placement: Placement
    wires: WireModel
    timing: TimingReport
    buffers_added: int
    #: Aggregated annealer counters across placement iterations
    #: (engine name, temperatures, moves proposed/evaluated/accepted).
    #: Purely informational — never part of design metrics.
    placement_stats: Dict[str, object] = field(default_factory=dict)


def net_criticalities(
    netlist: Netlist, report: TimingReport
) -> Dict[str, float]:
    """Per-net criticality in [0, 1] from endpoint slacks.

    A net's criticality is derived from the worst arrival-time fraction of
    the logic it feeds: nets on paths near the critical delay approach 1.
    """
    worst = report.critical_path_delay or 1.0
    crit: Dict[str, float] = {}
    for net, arrival in report.arrival.items():
        crit[net] = max(0.0, min(1.0, arrival / worst))
    return crit


def run_physical_synthesis(
    netlist: Netlist,
    library: Library,
    timing_library: TimingLibrary,
    period: float,
    seed: int = 0,
    iterations: int = 2,
    locked: Optional[Mapping[str, Site]] = None,
    grid: Optional[PlacementGrid] = None,
    effort: float = 1.0,
    engine: Optional[str] = None,
    utilization: float = DEFAULT_UTILIZATION,
) -> PhysicalResult:
    """Place-and-optimize loop; mutates ``netlist`` (buffer insertion).

    ``engine`` picks the annealer cost engine (``None`` defers to
    ``$REPRO_SA_ENGINE``, then ``"array"``); both engines produce
    bit-identical placements, so it only affects wall time.

    ``utilization`` sizes the standard-cell site grid when no explicit
    ``grid`` is given (flow a die sizing); it changes placement and die
    area, so the flow keys the physical stage on it.
    """
    weights: Dict[str, float] = {}
    buffers_added = 0
    placement: Optional[Placement] = None
    stats: Dict[str, object] = {
        "temperatures": 0, "proposed": 0, "evaluated": 0, "accepted": 0,
    }

    for iteration in range(max(1, iterations)):
        work_grid = grid or grid_for_netlist(netlist, utilization=utilization)
        placer = AnnealingPlacer(
            netlist,
            work_grid,
            net_weights={n: TIMING_WEIGHT * w for n, w in weights.items()},
            seed=seed + iteration,
            locked=locked,
            effort=effort,
            engine=engine,
        )
        placement = placer.place()
        stats["engine"] = placer.engine_name
        for key in ("temperatures", "proposed", "evaluated", "accepted"):
            stats[key] += int(placer.stats.get(key, 0))  # type: ignore[operator]
        wires = wire_model_from_placement(placement.net_pin_points(netlist))
        report = analyze(netlist, timing_library, wires, period=period)
        if iteration == max(1, iterations) - 1:
            return PhysicalResult(
                netlist=netlist,
                placement=placement,
                wires=wires,
                timing=report,
                buffers_added=buffers_added,
                placement_stats=stats,
            )
        weights = net_criticalities(netlist, report)
        buffers_added += insert_buffers(netlist, library, placement)

    raise AssertionError("unreachable")  # pragma: no cover
