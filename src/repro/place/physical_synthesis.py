"""The physical-synthesis loop (the paper's Dolphin stage).

Place, estimate wires, analyze timing, derive net criticalities, insert
buffers on overloaded nets, and re-place with criticality weighting —
"a detailed ASIC-style placement that has been optimized for performance,
area and routability based on physical information".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..cells.characterize import TimingLibrary
from ..cells.library import Library
from ..netlist.core import Netlist
from ..timing.sta import TimingReport, analyze
from ..timing.wires import WireModel, wire_model_from_placement
from .buffers import insert_buffers
from .grid import PlacementGrid, Site, grid_for_netlist
from .sa import AnnealingPlacer, Placement

#: Criticality weighting strength in the placement cost.
TIMING_WEIGHT = 2.0


@dataclass
class PhysicalResult:
    """Outcome of physical synthesis."""

    netlist: Netlist
    placement: Placement
    wires: WireModel
    timing: TimingReport
    buffers_added: int


def net_criticalities(
    netlist: Netlist, report: TimingReport
) -> Dict[str, float]:
    """Per-net criticality in [0, 1] from endpoint slacks.

    A net's criticality is derived from the worst arrival-time fraction of
    the logic it feeds: nets on paths near the critical delay approach 1.
    """
    worst = report.critical_path_delay or 1.0
    crit: Dict[str, float] = {}
    for net, arrival in report.arrival.items():
        crit[net] = max(0.0, min(1.0, arrival / worst))
    return crit


def run_physical_synthesis(
    netlist: Netlist,
    library: Library,
    timing_library: TimingLibrary,
    period: float,
    seed: int = 0,
    iterations: int = 2,
    locked: Optional[Mapping[str, Site]] = None,
    grid: Optional[PlacementGrid] = None,
    effort: float = 1.0,
) -> PhysicalResult:
    """Place-and-optimize loop; mutates ``netlist`` (buffer insertion)."""
    weights: Dict[str, float] = {}
    buffers_added = 0
    placement: Optional[Placement] = None

    for iteration in range(max(1, iterations)):
        work_grid = grid or grid_for_netlist(netlist)
        placer = AnnealingPlacer(
            netlist,
            work_grid,
            net_weights={n: TIMING_WEIGHT * w for n, w in weights.items()},
            seed=seed + iteration,
            locked=locked,
            effort=effort,
        )
        placement = placer.place()
        wires = wire_model_from_placement(placement.net_pin_points(netlist))
        report = analyze(netlist, timing_library, wires, period=period)
        if iteration == max(1, iterations) - 1:
            return PhysicalResult(
                netlist=netlist,
                placement=placement,
                wires=wires,
                timing=report,
                buffers_added=buffers_added,
            )
        weights = net_criticalities(netlist, report)
        buffers_added += insert_buffers(netlist, library, placement)

    raise AssertionError("unreachable")  # pragma: no cover
