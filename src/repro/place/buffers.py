"""Buffer insertion (part of the physical-synthesis role).

The paper's Dolphin stage "includes logic changes and buffer insertion to
meet timing constraints and area specifications", and the packing loop
"redo[es] buffer insertion ... where necessary".  This pass splits
overloaded nets: when a net's total load (pin caps + wire cap) exceeds its
driver's ``max_load``, sinks are clustered geographically and each cluster
is re-driven through a BUF placed at the cluster centroid.

The transformation preserves logic exactly (buffers are identities), which
the equivalence tests exercise.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..cells.library import Library
from ..logic.truthtable import TruthTable
from ..netlist.core import Netlist
from ..timing.wires import WIRE_CAP_PER_UM, hpwl
from .sa import Placement


def _net_load(
    netlist: Netlist, placement: Optional[Placement], net_name: str
) -> float:
    load = 0.0
    for sink_name, pin in netlist.nets[net_name].sinks:
        load += netlist.instances[sink_name].cell.input_caps[pin]
    if placement is not None:
        points = []
        net = netlist.nets[net_name]
        if net.driver is not None:
            points.append(placement.position_of(net.driver[0]))
        for sink_name, _pin in net.sinks:
            points.append(placement.position_of(sink_name))
        load += WIRE_CAP_PER_UM * hpwl(points)
    return load


def insert_buffers(
    netlist: Netlist,
    library: Library,
    placement: Optional[Placement] = None,
    max_fanout: int = 8,
) -> int:
    """Split overloaded nets with buffers; returns buffers added.

    Mutates ``netlist`` in place.  New buffers are left unplaced; the
    physical-synthesis loop re-places after insertion.
    """
    buf = library.cell("BUF")
    identity = TruthTable.input_var(1, 0)
    added = 0

    for net_name in list(netlist.nets):
        net = netlist.nets.get(net_name)
        if net is None or net.driver is None:
            continue
        driver_inst = netlist.instances[net.driver[0]]
        limit = driver_inst.cell.max_load
        if _net_load(netlist, placement, net_name) <= limit and net.fanout() <= max_fanout:
            continue
        sinks = list(net.sinks)
        if len(sinks) < 2:
            continue
        # Keep the nearest half on the original net, re-drive the rest.
        if placement is not None:
            origin = placement.position_of(net.driver[0])
            sinks.sort(
                key=lambda s: _distance(placement.position_of(s[0]), origin)
            )
        keep = max(1, len(sinks) // 2)
        moved = sinks[keep:]
        if not moved:
            continue
        inst = netlist.add_instance(buf, {"A": net_name}, config=identity)
        for sink_name, pin in moved:
            netlist.rewire_sink(sink_name, pin, inst.output_net)
        added += 1
    return added


def _distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
