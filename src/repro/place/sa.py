"""Simulated-annealing placement (VPR-style adaptive schedule).

Cost is criticality-weighted half-perimeter wirelength.  Moves swap a
random instance with another instance or an empty site within an adaptive
range window; the schedule follows the classic VPR recipe (temperature
from initial cost spread, cooling rate adapted to the acceptance ratio,
exit when temperature is a tiny fraction of cost-per-net).

Net cost is maintained *incrementally*, VPR-style: every net carries a
cached bounding box with occupancy counts on each boundary.  A move
updates only the nets touching the moved instance(s) in O(1) each — a
full per-net recomputation happens only when the last point on a
boundary moves off it (so the cached box is exact at all times, never an
approximation), and all boxes are rebuilt at every temperature step to
bound floating-point drift in the accumulated total.

Two interchangeable *cost engines* implement that bookkeeping:

* ``"array"`` (the default) — flat preallocated arrays of per-net
  min/max/boundary-occupancy state and per-cell coordinates.  The
  per-temperature exact rebuild is evaluated for all nets at once
  (vectorized through numpy when available, a scalar loop over the
  same flat layout otherwise), and moves are evaluated *speculatively*:
  :meth:`_ArrayCostEngine.evaluate_move` computes the exact delta from
  the boundary-count state without mutating anything, staging candidate
  per-net states in a scratch buffer that :meth:`_ArrayCostEngine.commit`
  installs only when the move is accepted.  Rejected moves (half of all
  proposals over a typical anneal) cost nothing beyond the evaluation —
  there is no apply/undo churn and no saved-state tuple per move.  The
  move loop also inlines the fixed-range ``getrandbits`` rejection
  sampling that ``random.Random.randrange``/``randint`` perform
  internally, so proposals skip the per-call argument checking while
  drawing the exact same bit stream.
* ``"object"`` — the legacy per-net :class:`_NetBox` objects with the
  original optimistic apply/undo move path; retained as the oracle the
  fast engine is asserted against.

Both engines perform the identical sequence of float operations and RNG
draws, so costs, acceptance decisions, final placements, and the RNG
stream position are bit-identical (asserted by the test suite); select
with ``AnnealingPlacer(engine=...)``, the ``REPRO_SA_ENGINE``
environment variable, or ``FlowOptions(sa_engine=...)`` at the flow
level.

The placer is deterministic for a given seed — including across
processes: per-move cost deltas are summed in a fixed net order derived
from netlist insertion order, never from (hash-randomized) set order —
and supports *locked* instances (used by the packing <->
physical-synthesis iteration of paper Section 3.1, where legalized cells
keep their PLB positions).
"""

from __future__ import annotations

import math
import os
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..netlist.core import Netlist
from ..obs import core as _obs
from ..obs.metrics import RATIO_BUCKETS
from .grid import PlacementGrid, Site

try:  # vectorized rebuilds when numpy is around; pure-Python otherwise
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback flag
    _np = None

#: Moves per temperature = MOVES_PER_CELL * n_cells ** 1.33, capped.
MOVES_PER_CELL = 1.0
MOVE_CAP_PER_TEMPERATURE = 40_000

#: Environment override for the cost-engine choice ("array" | "object").
ENGINE_ENV = "REPRO_SA_ENGINE"


@dataclass
class Placement:
    """Instance -> site assignment plus pad positions."""

    grid: PlacementGrid
    sites: Dict[str, Site]
    pads: Dict[str, Tuple[float, float]]

    def position_of(self, inst_name: str) -> Tuple[float, float]:
        return self.grid.center_of(self.sites[inst_name])

    def net_pin_points(self, netlist: Netlist) -> Dict[str, List[Tuple[float, float]]]:
        """Pin coordinates per net (driver, sinks, and pads)."""
        points: Dict[str, List[Tuple[float, float]]] = {
            name: [] for name in netlist.nets
        }
        for name, net in netlist.nets.items():
            if net.driver is not None:
                points[name].append(self.position_of(net.driver[0]))
            elif name in self.pads:
                points[name].append(self.pads[name])
            for sink_name, _pin in net.sinks:
                points[name].append(self.position_of(sink_name))
            if name in self.pads and net.driver is not None:
                points[name].append(self.pads[name])
        return points


def _net_bbox_cost(points: List[Tuple[float, float]], weight: float) -> float:
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return weight * ((max(xs) - min(xs)) + (max(ys) - min(ys)))


class _NetBox:
    """Exact bounding box of a net's point multiset with boundary counts.

    ``n_*`` counts how many points sit on each boundary; removing the
    last boundary point invalidates the box (``remove`` returns False)
    and the caller rebuilds it from scratch.  Everywhere else updates
    are O(1).
    """

    __slots__ = ("xmin", "xmax", "ymin", "ymax",
                 "n_xmin", "n_xmax", "n_ymin", "n_ymax")

    def __init__(self, points: List[Tuple[float, float]]):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        self.xmin = min(xs)
        self.xmax = max(xs)
        self.ymin = min(ys)
        self.ymax = max(ys)
        self.n_xmin = xs.count(self.xmin)
        self.n_xmax = xs.count(self.xmax)
        self.n_ymin = ys.count(self.ymin)
        self.n_ymax = ys.count(self.ymax)

    def half_perimeter(self) -> float:
        return (self.xmax - self.xmin) + (self.ymax - self.ymin)

    def add(self, x: float, y: float) -> None:
        if x > self.xmax:
            self.xmax, self.n_xmax = x, 1
        elif x == self.xmax:
            self.n_xmax += 1
        if x < self.xmin:
            self.xmin, self.n_xmin = x, 1
        elif x == self.xmin:
            self.n_xmin += 1
        if y > self.ymax:
            self.ymax, self.n_ymax = y, 1
        elif y == self.ymax:
            self.n_ymax += 1
        if y < self.ymin:
            self.ymin, self.n_ymin = y, 1
        elif y == self.ymin:
            self.n_ymin += 1

    def remove(self, x: float, y: float) -> bool:
        """Remove one point; False when a boundary emptied (rebuild me)."""
        ok = True
        if x == self.xmax:
            self.n_xmax -= 1
            ok = ok and self.n_xmax > 0
        if x == self.xmin:
            self.n_xmin -= 1
            ok = ok and self.n_xmin > 0
        if y == self.ymax:
            self.n_ymax -= 1
            ok = ok and self.n_ymax > 0
        if y == self.ymin:
            self.n_ymin -= 1
            ok = ok and self.n_ymin > 0
        return ok

    def state(self) -> Tuple:
        return (self.xmin, self.xmax, self.ymin, self.ymax,
                self.n_xmin, self.n_xmax, self.n_ymin, self.n_ymax)

    def restore(self, state: Tuple) -> None:
        (self.xmin, self.xmax, self.ymin, self.ymax,
         self.n_xmin, self.n_xmax, self.n_ymin, self.n_ymax) = state


class _ObjectCostEngine:
    """The legacy cost path: one ``_NetBox`` per net, dict-keyed state.

    Moves are applied optimistically (``apply_move``) and rolled back on
    rejection (``undo``); the placer drives it through the legacy
    apply/undo loop (``speculative = False``).
    """

    name = "object"
    speculative = False

    def __init__(self, placer: "AnnealingPlacer", sites: Dict[str, Site]):
        self.placer = placer
        self.sites = sites
        self.pos: Dict[str, Tuple[float, float]] = {
            name: placer.grid.center_of(site) for name, site in sites.items()
        }
        self.boxes: Dict[str, _NetBox] = {}
        self.net_cost: Dict[str, float] = {
            name: 0.0 for name in placer.netlist.nets
        }
        self._saved: List[Tuple[str, float, Tuple]] = []
        self._last_pos: Tuple = ()

    # -- exact state -----------------------------------------------------
    def _net_points(self, net_name: str) -> List[Tuple[float, float]]:
        placer = self.placer
        net = placer.netlist.nets[net_name]
        points: List[Tuple[float, float]] = []
        if net.driver is not None:
            points.append(placer.grid.center_of(self.sites[net.driver[0]]))
        if net_name in placer.pads:
            points.append(placer.pads[net_name])
        for sink_name, _pin in net.sinks:
            points.append(placer.grid.center_of(self.sites[sink_name]))
        return points

    def _build_box(self, net_name: str) -> _NetBox:
        return _NetBox(self._net_points(net_name))

    def rebuild(self) -> float:
        """Full recompute of every active net's box and cost; returns total."""
        placer = self.placer
        for net_name in placer._active_nets:
            box = self._build_box(net_name)
            self.boxes[net_name] = box
            self.net_cost[net_name] = placer._weight[net_name] * box.half_perimeter()
        return sum(self.net_cost.values())

    def net_costs(self) -> Dict[str, float]:
        """Per-net weighted cost for every active (>= 2 point) net."""
        return {net: self.net_cost[net] for net in self.placer._active_nets}

    # -- move path -------------------------------------------------------
    def apply_move(
        self, mover: str, other: Optional[str], old_site: Site, new_site: Site
    ) -> float:
        """Update positions/boxes for a swap already made in ``sites``.

        Only nets touching the moved instance(s) change, each in O(1) via
        its cached bounding box; call :meth:`undo` to roll back.
        """
        placer = self.placer
        pos = self.pos
        old_pt = pos[mover]
        new_pt = placer.grid.center_of(new_site)
        pos[mover] = new_pt
        if other is not None:
            pos[other] = old_pt
        self._last_pos = (mover, other, old_pt, new_pt)

        # Point relocations per net, in deterministic contribution order.
        changes: Dict[str, List[Tuple[Tuple[float, float], Tuple[float, float], int]]]
        changes = {}
        for net, count in placer._contrib_of[mover]:
            changes.setdefault(net, []).append((old_pt, new_pt, count))
        if other is not None:
            for net, count in placer._contrib_of[other]:
                changes.setdefault(net, []).append((new_pt, old_pt, count))

        boxes = self.boxes
        net_cost = self.net_cost
        delta = 0.0
        saved: List[Tuple[str, float, Tuple]] = []
        for net, moves in changes.items():
            box = boxes[net]
            saved.append((net, net_cost[net], box.state()))
            intact = True
            for from_pt, to_pt, count in moves:
                for _ in range(count):
                    box.add(to_pt[0], to_pt[1])
                    intact = box.remove(from_pt[0], from_pt[1]) and intact
            if not intact:
                box = self._build_box(net)
                boxes[net] = box
            cost = placer._weight[net] * box.half_perimeter()
            delta += cost - net_cost[net]
            net_cost[net] = cost
        self._saved = saved
        return delta

    def undo(self) -> None:
        mover, other, old_pt, new_pt = self._last_pos
        self.pos[mover] = old_pt
        if other is not None:
            self.pos[other] = new_pt
        for net, cost, state in self._saved:
            self.net_cost[net] = cost
            self.boxes[net].restore(state)


class _ArrayCostEngine:
    """Flat-array cost state with speculative (read-only) move deltas.

    Per-net bounding boxes and boundary-occupancy counts live in
    flat preallocated arrays indexed by a dense net index; per-cell
    coordinates live in flat position arrays indexed by a dense instance
    index.  The per-temperature exact rebuild evaluates every net at
    once — ``numpy`` min/max/count reductions over a flattened
    point-membership layout when available, a scalar loop over the same
    flat arrays otherwise.

    The move path is speculative: :meth:`evaluate_move` computes the
    exact wirelength delta of a proposed move from the boundary-count
    state *without mutating it*, staging each touched net's candidate
    box/cost in a reused scratch buffer; :meth:`commit` installs the
    staged state only when the move is accepted, and a rejected move
    needs no rollback at all.  Every arithmetic operation mirrors the
    object engine's optimistic apply/undo path exactly, so results are
    bit-identical.
    """

    name = "array"
    speculative = True

    def __init__(self, placer: "AnnealingPlacer", sites: Dict[str, Site]):
        self.placer = placer
        grid = placer.grid
        pitch = grid.pitch
        # Site-center coordinate tables: center_of((c, r)) without the
        # per-move method call (identical expression, identical bits).
        self.col_x = [(col + 0.5) * pitch for col in range(grid.cols)]
        self.row_y = [(row + 0.5) * pitch for row in range(grid.rows)]

        # Flat per-cell / per-net state lives in preallocated Python
        # lists of doubles rather than ``array('d')``: element access in
        # the per-move hot loop is measurably faster because lists hold
        # the boxed floats directly (``array`` re-boxes on every read),
        # and the values are the same IEEE doubles either way.  The
        # batched rebuild converts to numpy views in bulk.
        names = placer._instances
        self.index_of = {name: i for i, name in enumerate(names)}
        n = len(names)
        self.pos_x = [0.0] * n
        self.pos_y = [0.0] * n
        for name, site in sites.items():
            i = self.index_of[name]
            self.pos_x[i] = self.col_x[site[0]]
            self.pos_y[i] = self.row_y[site[1]]

        nets = placer._active_nets
        m = len(nets)
        self.net_index = {net: i for i, net in enumerate(nets)}
        self.weight = [placer._weight[net] for net in nets]
        # Box state, one slot per active net.
        self.xmin = [0.0] * m
        self.xmax = [0.0] * m
        self.ymin = [0.0] * m
        self.ymax = [0.0] * m
        self.n_xmin = [0] * m
        self.n_xmax = [0] * m
        self.n_ymin = [0] * m
        self.n_ymax = [0] * m
        self.cost = [0.0] * m

        # Per-instance contributions as (net index, multiplicity) pairs.
        self.contrib: List[List[Tuple[int, int]]] = [[] for _ in names]
        for name, entries in placer._contrib_of.items():
            i = self.index_of[name]
            self.contrib[i] = [
                (self.net_index[net], count) for net, count in entries
            ]

        # Flattened per-net point membership (instance index, or -1 for
        # the net's pad point), multiplicities expanded.  Segment k spans
        # offsets[k]:offsets[k+1] in the flat arrays.
        flat_inst: List[int] = []
        flat_pad_x: List[float] = []
        flat_pad_y: List[float] = []
        offsets = [0]
        self.members: List[List[int]] = []
        self.pad_of: List[Optional[Tuple[float, float]]] = []
        for net_name in nets:
            net = placer.netlist.nets[net_name]
            members: List[int] = []
            if net.driver is not None:
                members.append(self.index_of[net.driver[0]])
            for sink_name, _pin in net.sinks:
                members.append(self.index_of[sink_name])
            pad = placer.pads.get(net_name)
            self.members.append(members)
            self.pad_of.append(pad)
            for idx in members:
                flat_inst.append(idx)
                flat_pad_x.append(0.0)
                flat_pad_y.append(0.0)
            if pad is not None:
                flat_inst.append(-1)
                flat_pad_x.append(pad[0])
                flat_pad_y.append(pad[1])
            offsets.append(len(flat_inst))

        self._flat_inst = flat_inst
        self._flat_pad_x = flat_pad_x
        self._flat_pad_y = flat_pad_y
        self._offsets = offsets
        if _np is not None and m:
            self._np_inst = _np.asarray(flat_inst, dtype=_np.int64)
            self._np_gather = _np.maximum(self._np_inst, 0)
            self._np_is_pad = self._np_inst < 0
            self._np_pad_x = _np.asarray(flat_pad_x)
            self._np_pad_y = _np.asarray(flat_pad_y)
            self._np_offsets = _np.asarray(offsets[:-1], dtype=_np.int64)
            self._np_sizes = _np.diff(_np.asarray(offsets, dtype=_np.int64))
            self._np_weight = _np.asarray(self.weight)

        # Nets with exactly two points take a branch instead of the
        # min/max/count scan in the speculative rebuild (any move of one
        # endpoint empties a boundary, so they dominate rebuilds).
        self.two_point = [
            len(self.members[k]) + (0 if self.pad_of[k] is None else 1) == 2
            for k in range(m)
        ]

        # Speculation scratch (filled by evaluate_move, installed by
        # commit).  ``_pending`` holds one reused 10-slot list per
        # touched net: [net index, staged cost, xmin, xmax, ymin, ymax,
        # n_xmin, n_xmax, n_ymin, n_ymax].  ``_touched``/``_slot_of``
        # implement an epoch-stamped net -> pending-slot map so a swap
        # whose two cells share a net merges into one entry without any
        # per-move dict allocation.
        self._pending: List[List] = []
        self._pending_move: Tuple = ()
        self._touched = [0] * m
        self._slot_of = [0] * m
        self._epoch = 0
        self._refresh_hot()

    def _refresh_hot(self) -> None:
        """Rebind the unpack-once hot-state tuple.

        ``evaluate_move``/``commit`` unpack every per-net array from one
        tuple instead of paying ~20 attribute loads per call.  The numpy
        rebuild path replaces the box/cost lists wholesale, so it calls
        this after swapping them in.
        """
        self._hot = (
            self.pos_x, self.pos_y, self.col_x, self.row_y,
            self.xmin, self.xmax, self.ymin, self.ymax,
            self.n_xmin, self.n_xmax, self.n_ymin, self.n_ymax,
            self.weight, self.cost, self.members, self.pad_of,
            self.two_point, self.contrib, self.index_of,
            self._pending, self._touched, self._slot_of,
        )

    # -- exact state -----------------------------------------------------
    def _spec_box(
        self, k: int
    ) -> Tuple[float, float, float, float, int, int, int, int]:
        """Exact box of net ``k`` from the stored flat positions.

        A single pass over the net's presorted member-index list
        replaces the per-call ``xs``/``ys`` list comprehensions the old
        rebuild paid — the running min/max/boundary counts equal
        ``min()``/``max()``/``count()`` over the same point multiset bit
        for bit.  ``evaluate_move`` stages candidate coordinates in the
        position arrays (restoring on return), so this scan serves both
        the committed and the speculative state with no per-member
        substitution tests.
        """
        pos_x, pos_y = self.pos_x, self.pos_y
        members = self.members[k]
        pad = self.pad_of[k]
        it = iter(members)
        i = next(it)
        x = pos_x[i]
        y = pos_y[i]
        if self.two_point[k]:
            if pad is None:
                i = members[1]
                x1 = pos_x[i]
                y1 = pos_y[i]
            else:
                x1, y1 = pad
            if x <= x1:
                xmin, xmax = x, x1
            else:
                xmin, xmax = x1, x
            n_x = 2 if x == x1 else 1
            if y <= y1:
                ymin, ymax = y, y1
            else:
                ymin, ymax = y1, y
            n_y = 2 if y == y1 else 1
            return (xmin, xmax, ymin, ymax, n_x, n_x, n_y, n_y)
        xmin = xmax = x
        ymin = ymax = y
        n_xmin = n_xmax = n_ymin = n_ymax = 1
        for i in it:
            x = pos_x[i]
            y = pos_y[i]
            if x > xmax:
                xmax, n_xmax = x, 1
            elif x == xmax:
                n_xmax += 1
            if x < xmin:
                xmin, n_xmin = x, 1
            elif x == xmin:
                n_xmin += 1
            if y > ymax:
                ymax, n_ymax = y, 1
            elif y == ymax:
                n_ymax += 1
            if y < ymin:
                ymin, n_ymin = y, 1
            elif y == ymin:
                n_ymin += 1
        if pad is not None:
            x, y = pad
            if x > xmax:
                xmax, n_xmax = x, 1
            elif x == xmax:
                n_xmax += 1
            if x < xmin:
                xmin, n_xmin = x, 1
            elif x == xmin:
                n_xmin += 1
            if y > ymax:
                ymax, n_ymax = y, 1
            elif y == ymax:
                n_ymax += 1
            if y < ymin:
                ymin, n_ymin = y, 1
            elif y == ymin:
                n_ymin += 1
        return (xmin, xmax, ymin, ymax, n_xmin, n_xmax, n_ymin, n_ymax)

    def _rebuild_net(self, k: int) -> None:
        """Exact box for one net from the stored flat positions."""
        (self.xmin[k], self.xmax[k], self.ymin[k], self.ymax[k],
         self.n_xmin[k], self.n_xmax[k], self.n_ymin[k],
         self.n_ymax[k]) = self._spec_box(k)

    def rebuild(self) -> float:
        """Batched exact recompute of every net's box; returns the total.

        The total is accumulated left to right in active-net order — the
        same order (and therefore the same float value) as the object
        engine's ``sum`` over its per-net cost dict.
        """
        m = len(self.cost)
        if _np is not None and m:
            inst = self._np_gather
            px = _np.asarray(self.pos_x)
            py = _np.asarray(self.pos_y)
            x = _np.where(self._np_is_pad, self._np_pad_x, px[inst])
            y = _np.where(self._np_is_pad, self._np_pad_y, py[inst])
            offsets = self._np_offsets
            xmin = _np.minimum.reduceat(x, offsets)
            xmax = _np.maximum.reduceat(x, offsets)
            ymin = _np.minimum.reduceat(y, offsets)
            ymax = _np.maximum.reduceat(y, offsets)
            sizes = self._np_sizes
            n_xmin = _np.add.reduceat(x == _np.repeat(xmin, sizes), offsets)
            n_xmax = _np.add.reduceat(x == _np.repeat(xmax, sizes), offsets)
            n_ymin = _np.add.reduceat(y == _np.repeat(ymin, sizes), offsets)
            n_ymax = _np.add.reduceat(y == _np.repeat(ymax, sizes), offsets)
            cost = self._np_weight * ((xmax - xmin) + (ymax - ymin))
            self.xmin = xmin.tolist()
            self.xmax = xmax.tolist()
            self.ymin = ymin.tolist()
            self.ymax = ymax.tolist()
            self.n_xmin = n_xmin.tolist()
            self.n_xmax = n_xmax.tolist()
            self.n_ymin = n_ymin.tolist()
            self.n_ymax = n_ymax.tolist()
            costs = cost.tolist()
            self.cost = costs
            self._refresh_hot()
            total = 0.0
            for c in costs:
                total += c
            return total
        total = 0.0
        for k in range(m):
            self._rebuild_net(k)
            cost = self.weight[k] * (
                (self.xmax[k] - self.xmin[k]) + (self.ymax[k] - self.ymin[k])
            )
            self.cost[k] = cost
            total += cost
        return total

    def net_costs(self) -> Dict[str, float]:
        return {net: self.cost[k] for net, k in self.net_index.items()}

    # -- move path -------------------------------------------------------
    def evaluate_move(
        self, mover: str, other: Optional[str], new_site: Site
    ) -> float:
        """Speculative exact delta for moving ``mover`` to ``new_site``.

        Performs the identical per-net float operations the object
        engine's apply path does — boundary add/remove updates in
        first-touch net order, an exact rebuild when a boundary empties —
        but commits nothing: candidate coordinates are staged in the
        position arrays for the duration of the call (restored before
        returning) so box scans need no per-member substitution tests,
        and candidate box states go to the reused ``_pending`` buffer,
        installed by :meth:`commit` on accept.  Rejection needs no work
        at all.
        """
        (pos_x, pos_y, col_x, row_y,
         s_xmin, s_xmax, s_ymin, s_ymax,
         s_n_xmin, s_n_xmax, s_n_ymin, s_n_ymax,
         weight, s_cost, members_of, pad_of, two_point, contrib,
         index_of, pending, touched, slot_of) = self._hot
        mi = index_of[mover]
        old_x = pos_x[mi]
        old_y = pos_y[mi]
        new_x = col_x[new_site[0]]
        new_y = row_y[new_site[1]]
        if other is not None:
            oi = index_of[other]
            pos_x[oi] = old_x
            pos_y[oi] = old_y
        else:
            oi = -1
        pos_x[mi] = new_x
        pos_y[mi] = new_y
        self._pending_move = (mi, oi, old_x, old_y, new_x, new_y)

        del pending[:]
        append = pending.append
        n_pending = 0
        epoch = self._epoch = self._epoch + 1

        # Mover's nets: relocate (old -> new), one staged entry per net.
        # Two-point nets (the dominant class — moving either endpoint
        # almost always empties a boundary) skip the add/remove dance
        # entirely: with the candidate coordinates already staged in the
        # position arrays, their exact post-move box is two direct
        # reads, bit-identical to what the incremental update (or the
        # rebuild it triggers) produces.
        for k, count in contrib[mi]:
            if two_point[k]:
                members = members_of[k]
                x0 = pos_x[members[0]]
                y0 = pos_y[members[0]]
                pad = pad_of[k]
                if pad is None:
                    i = members[1]
                    x1 = pos_x[i]
                    y1 = pos_y[i]
                else:
                    x1, y1 = pad
                if x0 <= x1:
                    xmin, xmax = x0, x1
                else:
                    xmin, xmax = x1, x0
                n_x = 2 if x0 == x1 else 1
                if y0 <= y1:
                    ymin, ymax = y0, y1
                else:
                    ymin, ymax = y1, y0
                n_y = 2 if y0 == y1 else 1
                touched[k] = epoch
                slot_of[k] = n_pending
                n_pending += 1
                append([k, True, xmin, xmax, ymin, ymax,
                                n_x, n_x, n_y, n_y])
                continue
            if count == 1:
                xmax = s_xmax[k]
                xmin = s_xmin[k]
                ymax = s_ymax[k]
                ymin = s_ymin[k]
                # Removing the mover's point empties a boundary exactly
                # when it holds that boundary alone and the added point
                # doesn't re-cover it — a closed-form test, so the
                # boundary-count update is skipped outright for nets
                # headed to an exact rebuild, and nets that pass run it
                # with no emptiness bookkeeping at all.
                if (
                    (old_x == xmax and s_n_xmax[k] == 1 and new_x < old_x)
                    or (old_x == xmin and s_n_xmin[k] == 1 and new_x > old_x)
                    or (old_y == ymax and s_n_ymax[k] == 1 and new_y < old_y)
                    or (old_y == ymin and s_n_ymin[k] == 1 and new_y > old_y)
                ):
                    touched[k] = epoch
                    slot_of[k] = n_pending
                    n_pending += 1
                    append([k, False, 0.0, 0.0, 0.0, 0.0,
                                    0, 0, 0, 0])
                    continue
                n_xmin = s_n_xmin[k]
                n_xmax = s_n_xmax[k]
                n_ymin = s_n_ymin[k]
                n_ymax = s_n_ymax[k]
                # add (new_x, new_y)
                if new_x > xmax:
                    xmax, n_xmax = new_x, 1
                elif new_x == xmax:
                    n_xmax += 1
                if new_x < xmin:
                    xmin, n_xmin = new_x, 1
                elif new_x == xmin:
                    n_xmin += 1
                if new_y > ymax:
                    ymax, n_ymax = new_y, 1
                elif new_y == ymax:
                    n_ymax += 1
                if new_y < ymin:
                    ymin, n_ymin = new_y, 1
                elif new_y == ymin:
                    n_ymin += 1
                # remove (old_x, old_y) — guaranteed not to empty
                if old_x == xmax:
                    n_xmax -= 1
                if old_x == xmin:
                    n_xmin -= 1
                if old_y == ymax:
                    n_ymax -= 1
                if old_y == ymin:
                    n_ymin -= 1
                touched[k] = epoch
                slot_of[k] = n_pending
                n_pending += 1
                append([k, True, xmin, xmax, ymin, ymax,
                                n_xmin, n_xmax, n_ymin, n_ymax])
                continue
            xmin = s_xmin[k]
            xmax = s_xmax[k]
            ymin = s_ymin[k]
            ymax = s_ymax[k]
            n_xmin = s_n_xmin[k]
            n_xmax = s_n_xmax[k]
            n_ymin = s_n_ymin[k]
            n_ymax = s_n_ymax[k]
            intact = True
            for _ in range(count):
                # add (new_x, new_y)
                if new_x > xmax:
                    xmax, n_xmax = new_x, 1
                elif new_x == xmax:
                    n_xmax += 1
                if new_x < xmin:
                    xmin, n_xmin = new_x, 1
                elif new_x == xmin:
                    n_xmin += 1
                if new_y > ymax:
                    ymax, n_ymax = new_y, 1
                elif new_y == ymax:
                    n_ymax += 1
                if new_y < ymin:
                    ymin, n_ymin = new_y, 1
                elif new_y == ymin:
                    n_ymin += 1
                # remove (old_x, old_y); an emptied boundary invalidates
                # the box (exact rebuild at finalization)
                if old_x == xmax:
                    n_xmax -= 1
                    intact = intact and n_xmax > 0
                if old_x == xmin:
                    n_xmin -= 1
                    intact = intact and n_xmin > 0
                if old_y == ymax:
                    n_ymax -= 1
                    intact = intact and n_ymax > 0
                if old_y == ymin:
                    n_ymin -= 1
                    intact = intact and n_ymin > 0
            touched[k] = epoch
            slot_of[k] = n_pending
            n_pending += 1
            append([k, intact, xmin, xmax, ymin, ymax,
                            n_xmin, n_xmax, n_ymin, n_ymax])

        # Other's nets: relocate (new -> old); a net shared with the
        # mover continues from its staged state so the relocation
        # sequence matches the apply path's merged per-net move list.
        if oi >= 0:
            for k, count in contrib[oi]:
                if two_point[k]:
                    # Shared with the mover: pass 1 already staged the
                    # exact final box.
                    if touched[k] == epoch:
                        continue
                    members = members_of[k]
                    x0 = pos_x[members[0]]
                    y0 = pos_y[members[0]]
                    pad = pad_of[k]
                    if pad is None:
                        i = members[1]
                        x1 = pos_x[i]
                        y1 = pos_y[i]
                    else:
                        x1, y1 = pad
                    if x0 <= x1:
                        xmin, xmax = x0, x1
                    else:
                        xmin, xmax = x1, x0
                    n_x = 2 if x0 == x1 else 1
                    if y0 <= y1:
                        ymin, ymax = y0, y1
                    else:
                        ymin, ymax = y1, y0
                    n_y = 2 if y0 == y1 else 1
                    touched[k] = epoch
                    slot_of[k] = n_pending
                    n_pending += 1
                    append([k, True, xmin, xmax, ymin, ymax,
                                    n_x, n_x, n_y, n_y])
                    continue
                if touched[k] == epoch:
                    # Shared with the mover (rare): continue from the
                    # staged state so the relocation sequence matches
                    # the apply path's merged per-net move list.  An
                    # invalidated placeholder stays invalidated; its
                    # values are garbage until the finalize rebuild.
                    ent = pending[slot_of[k]]
                    (_k, intact, xmin, xmax, ymin, ymax,
                     n_xmin, n_xmax, n_ymin, n_ymax) = ent
                elif count == 1:
                    xmax = s_xmax[k]
                    xmin = s_xmin[k]
                    ymax = s_ymax[k]
                    ymin = s_ymin[k]
                    # Same closed-form boundary-emptiness test as pass
                    # 1, with the relocation reversed (add old, remove
                    # new).
                    if (
                        (new_x == xmax and s_n_xmax[k] == 1
                         and old_x < new_x)
                        or (new_x == xmin and s_n_xmin[k] == 1
                            and old_x > new_x)
                        or (new_y == ymax and s_n_ymax[k] == 1
                            and old_y < new_y)
                        or (new_y == ymin and s_n_ymin[k] == 1
                            and old_y > new_y)
                    ):
                        touched[k] = epoch
                        slot_of[k] = n_pending
                        n_pending += 1
                        append([k, False, 0.0, 0.0, 0.0, 0.0,
                                        0, 0, 0, 0])
                        continue
                    n_xmin = s_n_xmin[k]
                    n_xmax = s_n_xmax[k]
                    n_ymin = s_n_ymin[k]
                    n_ymax = s_n_ymax[k]
                    # add (old_x, old_y)
                    if old_x > xmax:
                        xmax, n_xmax = old_x, 1
                    elif old_x == xmax:
                        n_xmax += 1
                    if old_x < xmin:
                        xmin, n_xmin = old_x, 1
                    elif old_x == xmin:
                        n_xmin += 1
                    if old_y > ymax:
                        ymax, n_ymax = old_y, 1
                    elif old_y == ymax:
                        n_ymax += 1
                    if old_y < ymin:
                        ymin, n_ymin = old_y, 1
                    elif old_y == ymin:
                        n_ymin += 1
                    # remove (new_x, new_y) — guaranteed not to empty
                    if new_x == xmax:
                        n_xmax -= 1
                    if new_x == xmin:
                        n_xmin -= 1
                    if new_y == ymax:
                        n_ymax -= 1
                    if new_y == ymin:
                        n_ymin -= 1
                    touched[k] = epoch
                    slot_of[k] = n_pending
                    n_pending += 1
                    append([k, True, xmin, xmax, ymin, ymax,
                                    n_xmin, n_xmax, n_ymin, n_ymax])
                    continue
                else:
                    ent = None
                    xmin = s_xmin[k]
                    xmax = s_xmax[k]
                    ymin = s_ymin[k]
                    ymax = s_ymax[k]
                    n_xmin = s_n_xmin[k]
                    n_xmax = s_n_xmax[k]
                    n_ymin = s_n_ymin[k]
                    n_ymax = s_n_ymax[k]
                    intact = True
                for _ in range(count):
                    # add (old_x, old_y)
                    if old_x > xmax:
                        xmax, n_xmax = old_x, 1
                    elif old_x == xmax:
                        n_xmax += 1
                    if old_x < xmin:
                        xmin, n_xmin = old_x, 1
                    elif old_x == xmin:
                        n_xmin += 1
                    if old_y > ymax:
                        ymax, n_ymax = old_y, 1
                    elif old_y == ymax:
                        n_ymax += 1
                    if old_y < ymin:
                        ymin, n_ymin = old_y, 1
                    elif old_y == ymin:
                        n_ymin += 1
                    # remove (new_x, new_y)
                    if new_x == xmax:
                        n_xmax -= 1
                        intact = intact and n_xmax > 0
                    if new_x == xmin:
                        n_xmin -= 1
                        intact = intact and n_xmin > 0
                    if new_y == ymax:
                        n_ymax -= 1
                        intact = intact and n_ymax > 0
                    if new_y == ymin:
                        n_ymin -= 1
                        intact = intact and n_ymin > 0
                if ent is not None:
                    ent[1] = intact
                    ent[2] = xmin
                    ent[3] = xmax
                    ent[4] = ymin
                    ent[5] = ymax
                    ent[6] = n_xmin
                    ent[7] = n_xmax
                    ent[8] = n_ymin
                    ent[9] = n_ymax
                else:
                    touched[k] = epoch
                    slot_of[k] = n_pending
                    n_pending += 1
                    append([k, intact, xmin, xmax, ymin, ymax,
                                    n_xmin, n_xmax, n_ymin, n_ymax])

        # Cost deltas in first-touch order; invalidated boxes get an
        # exact rebuild over the staged candidate coordinates.  Slot 1
        # of each entry is repurposed from the intact flag to the staged
        # new cost for commit.
        spec_box = self._spec_box
        delta = 0.0
        for ent in pending:
            k = ent[0]
            if ent[1]:
                cost = weight[k] * ((ent[3] - ent[2]) + (ent[5] - ent[4]))
            else:
                box = spec_box(k)
                ent[2:10] = box
                cost = weight[k] * ((box[1] - box[0]) + (box[3] - box[2]))
            delta += cost - s_cost[k]
            ent[1] = cost

        # Restore the committed coordinates; commit() re-installs the
        # candidate ones on accept.
        pos_x[mi] = old_x
        pos_y[mi] = old_y
        if oi >= 0:
            pos_x[oi] = new_x
            pos_y[oi] = new_y
        return delta

    def commit(self) -> None:
        """Install the staged state of the last evaluated move."""
        (pos_x, pos_y, _col_x, _row_y,
         s_xmin, s_xmax, s_ymin, s_ymax,
         s_n_xmin, s_n_xmax, s_n_ymin, s_n_ymax,
         _weight, s_cost, _members, _pads, _two_point, _contrib,
         _index_of, pending, _touched, _slot_of) = self._hot
        mi, oi, old_x, old_y, new_x, new_y = self._pending_move
        pos_x[mi] = new_x
        pos_y[mi] = new_y
        if oi >= 0:
            pos_x[oi] = old_x
            pos_y[oi] = old_y
        for ent in pending:
            k = ent[0]
            s_cost[k] = ent[1]
            s_xmin[k] = ent[2]
            s_xmax[k] = ent[3]
            s_ymin[k] = ent[4]
            s_ymax[k] = ent[5]
            s_n_xmin[k] = ent[6]
            s_n_xmax[k] = ent[7]
            s_n_ymin[k] = ent[8]
            s_n_ymax[k] = ent[9]


_ENGINES = {"array": _ArrayCostEngine, "object": _ObjectCostEngine}


def default_engine() -> str:
    """The cost-engine choice: ``$REPRO_SA_ENGINE`` or ``"array"``.

    Ambient, but bit-identical by contract: both engines produce the
    same float sequence and placements (asserted in tests), so the read
    is exempt from the stage-purity rule.
    """
    return os.environ.get(ENGINE_ENV, "").strip().lower() or "array"  # check: allow(CK003)


class AnnealingPlacer:
    """Criticality-weighted HPWL simulated annealing."""

    def __init__(
        self,
        netlist: Netlist,
        grid: PlacementGrid,
        net_weights: Optional[Mapping[str, float]] = None,
        seed: int = 0,
        locked: Optional[Mapping[str, Site]] = None,
        effort: float = 1.0,
        engine: Optional[str] = None,
    ):
        self.netlist = netlist
        self.grid = grid
        self.rng = random.Random(seed)
        self.net_weights = dict(net_weights or {})
        self.locked = dict(locked or {})
        self.effort = effort
        self.engine_name = (engine or default_engine()).lower()
        if self.engine_name not in _ENGINES:
            raise ValueError(
                f"unknown SA cost engine {self.engine_name!r} "
                f"(choices: {sorted(_ENGINES)})"
            )

        self._instances = list(netlist.instances)
        self._movable = [n for n in self._instances if n not in self.locked]
        if grid.n_sites < len(self._instances):
            raise ValueError(
                f"grid has {grid.n_sites} sites for {len(self._instances)} instances"
            )

        # Per-instance net contributions for incremental cost updates:
        # instance -> [(net, point multiplicity)], in netlist net order
        # (deterministic — never hash-randomized set order).  Only nets
        # with >= 2 points can ever have nonzero cost ("active").
        self._contrib_of: Dict[str, List[Tuple[str, int]]] = {
            name: [] for name in self._instances
        }
        self._active_nets: List[str] = []
        self._weight: Dict[str, float] = {}
        self.pads = grid.pad_positions(list(netlist.inputs) + list(netlist.outputs))
        for net_name, net in netlist.nets.items():
            counts: Dict[str, int] = {}
            if net.driver is not None:
                counts[net.driver[0]] = counts.get(net.driver[0], 0) + 1
            for sink_name, _pin in net.sinks:
                counts[sink_name] = counts.get(sink_name, 0) + 1
            n_points = sum(counts.values()) + (1 if net_name in self.pads else 0)
            if n_points < 2:
                continue
            self._active_nets.append(net_name)
            self._weight[net_name] = 1.0 + self.net_weights.get(net_name, 0.0)
            for member, count in counts.items():
                self._contrib_of[member].append((net_name, count))

        # Populated by place(): the engine used, the final exact cost,
        # and aggregate move-kernel counters (proposed = drawn proposals,
        # evaluated = proposals that reached the cost engine, accepted =
        # committed moves) for observability and benchmarks.
        self._engine = None
        self.final_cost: Optional[float] = None
        self.stats: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _initial_sites(self) -> Dict[str, Site]:
        sites: Dict[str, Site] = dict(self.locked)
        taken = set(self.locked.values())
        free = [site for site in self.grid.sites() if site not in taken]
        self.rng.shuffle(free)
        for name in self._movable:
            sites[name] = free.pop()
        return sites

    # ------------------------------------------------------------------
    def place(self) -> Placement:
        with _obs.span(
            "sa.place",
            engine=self.engine_name,
            cells=len(self._instances),
            movable=len(self._movable),
            nets=len(self._active_nets),
        ) as _span:
            placement = self._place(_span)
        return placement

    def _place(self, _span) -> Placement:
        sites = self._initial_sites()
        occupant: Dict[Site, Optional[str]] = {s: None for s in self.grid.sites()}
        for name, site in sites.items():
            occupant[site] = name
        engine = _ENGINES[self.engine_name](self, sites)
        self._engine = engine
        total = engine.rebuild()

        if not self._movable:
            self.final_cost = total
            self.stats = {
                "engine": self.engine_name, "temperatures": 0,
                "proposed": 0, "evaluated": 0, "accepted": 0,
            }
            _span.set(final_cost=total, temperatures=0)
            return Placement(grid=self.grid, sites=sites, pads=self.pads)

        n = len(self._movable)
        moves_per_t = min(
            MOVE_CAP_PER_TEMPERATURE,
            max(200, int(self.effort * MOVES_PER_CELL * n ** 1.33)),
        )

        # The speculative engine gets the evaluate/commit hot loop (no
        # apply/undo, inlined RNG); the object engine keeps the legacy
        # optimistic-apply loop.  Both draw the identical bit stream and
        # perform the identical float operations.
        if engine.speculative:
            sample = self._sample_speculative
            sweep = self._sweep_speculative
        else:
            sample = self._sample_legacy
            sweep = self._sweep_legacy

        # Initial temperature: std-dev of cost over random perturbations.
        n_samples = min(100, moves_per_t)
        samples, total = sample(engine, sites, occupant, n_samples, total)
        temperature = 20.0 * (sum(samples) / max(1, len(samples)) or 1.0)

        range_limit = float(max(self.grid.cols, self.grid.rows))
        min_temperature = 0.005 * total / max(1, len(self.netlist.nets))
        n_temperatures = 0
        proposed = n_samples
        evaluated_total = 0
        accepted_total = 0
        while temperature > max(min_temperature, 1e-9):
            # Per-temperature telemetry (accept rate, cost, moves/s) is
            # recorded at sweep granularity: one guarded check per sweep,
            # nothing in the per-move hot loop, and nothing that reads or
            # advances the RNG — traced and untraced anneals are
            # bit-identical.
            observing = _obs.active()
            sweep_temperature = temperature
            sweep_start = time.perf_counter() if observing else 0.0  # check: allow(DT002, CK003) trace timing
            accepted, evaluated = sweep(
                engine, sites, occupant, int(max(1, range_limit)),
                moves_per_t, temperature,
            )
            ratio = accepted / max(1, moves_per_t)
            # VPR schedule.
            if ratio > 0.96:
                temperature *= 0.5
            elif ratio > 0.8:
                temperature *= 0.9
            elif ratio > 0.15:
                temperature *= 0.95
            else:
                temperature *= 0.8
            range_limit = max(1.0, range_limit * (1.0 - 0.44 + ratio))
            # Periodic exact rebuild bounds float drift in the running total.
            total = engine.rebuild()
            n_temperatures += 1
            proposed += moves_per_t
            evaluated_total += evaluated
            accepted_total += accepted
            if observing:
                sweep_seconds = time.perf_counter() - sweep_start  # check: allow(DT002, CK003) trace timing
                _obs.point(
                    "sa.temperature",
                    temperature=sweep_temperature,
                    moves=moves_per_t,
                    evaluated=evaluated,
                    accepted=accepted,
                    accept_rate=ratio,
                    cost=total,
                    range_limit=range_limit,
                    moves_per_s=(
                        moves_per_t / sweep_seconds if sweep_seconds > 0 else 0.0
                    ),
                )
                _obs.observe("sa.accept_rate", ratio, RATIO_BUCKETS)
                _obs.observe("sa.temperature.seconds", sweep_seconds)
                _obs.counter("sa.moves", moves_per_t)
                _obs.counter("sa.evaluated", evaluated)
                _obs.counter("sa.accepted", accepted)
            if ratio < 0.01 and temperature < min_temperature * 10:
                break

        self.final_cost = total
        self.stats = {
            "engine": self.engine_name,
            "temperatures": n_temperatures,
            "proposed": proposed,
            "evaluated": evaluated_total,
            "accepted": accepted_total,
        }
        _span.set(final_cost=total, temperatures=n_temperatures)
        _obs.counter("sa.placements")
        return Placement(grid=self.grid, sites=sites, pads=self.pads)

    # ------------------------------------------------------------------
    def _try_move(
        self,
        engine,
        sites: Dict[str, Site],
        occupant: Dict[Site, Optional[str]],
        range_limit: int,
    ) -> Tuple[float, bool]:
        """Propose one move; returns (delta, applied).

        The move is applied optimistically — sites/occupancy here, cost
        state inside the engine; call :meth:`_undo_move` to reject.
        """
        mover = self._movable[self.rng.randrange(len(self._movable))]
        old_site = sites[mover]
        col = old_site[0] + self.rng.randint(-range_limit, range_limit)
        row = old_site[1] + self.rng.randint(-range_limit, range_limit)
        new_site = self.grid.clamp(col, row)
        if new_site == old_site:
            return 0.0, False
        other = occupant[new_site]
        if other is not None and other in self.locked:
            return 0.0, False

        sites[mover] = new_site
        occupant[new_site] = mover
        occupant[old_site] = other
        if other is not None:
            sites[other] = old_site
        self._last_move = (mover, other, old_site, new_site)
        delta = engine.apply_move(mover, other, old_site, new_site)
        return delta, True

    def _undo_move(
        self,
        engine,
        sites: Dict[str, Site],
        occupant: Dict[Site, Optional[str]],
    ) -> None:
        mover, other, old_site, new_site = self._last_move
        sites[mover] = old_site
        occupant[old_site] = mover
        occupant[new_site] = other
        if other is not None:
            sites[other] = new_site
        engine.undo()

    # ------------------------------------------------------------------
    # Legacy loops (apply/undo engines): unchanged from the original
    # per-move path, kept as the oracle the speculative loops must match.
    def _sample_legacy(
        self,
        engine,
        sites: Dict[str, Site],
        occupant: Dict[Site, Optional[str]],
        n: int,
        total: float,
    ) -> Tuple[List[float], float]:
        samples: List[float] = []
        for _ in range(n):
            delta, applied = self._try_move(engine, sites, occupant, self.grid.cols)
            samples.append(abs(delta))
            if applied:
                total += delta
        return samples, total

    def _sweep_legacy(
        self,
        engine,
        sites: Dict[str, Site],
        occupant: Dict[Site, Optional[str]],
        range_limit: int,
        moves: int,
        temperature: float,
    ) -> Tuple[int, int]:
        """One temperature sweep via optimistic apply + undo-on-reject."""
        accepted = 0
        evaluated = 0
        for _ in range(moves):
            delta, applied = self._try_move(engine, sites, occupant, range_limit)
            if not applied:
                continue
            evaluated += 1
            if delta <= 0 or self.rng.random() < math.exp(-delta / temperature):
                accepted += 1
            else:
                self._undo_move(engine, sites, occupant)
        return accepted, evaluated

    # ------------------------------------------------------------------
    # Speculative loops (evaluate/commit engines).  The proposal RNG is
    # inlined: ``randrange(n)`` and ``randint(-r, r)`` both reduce to
    # CPython's ``_randbelow_with_getrandbits`` (draw ``bit_length``
    # bits, reject out-of-range), so drawing through ``getrandbits``
    # directly produces the exact same bit stream while skipping the
    # per-call argument validation — every placement stays bit-identical
    # to the legacy loop, including the RNG stream position.
    def _sample_speculative(
        self,
        engine,
        sites: Dict[str, Site],
        occupant: Dict[Site, Optional[str]],
        n: int,
        total: float,
    ) -> Tuple[List[float], float]:
        rng = self.rng
        getrandbits = rng.getrandbits
        movable = self._movable
        n_mov = len(movable)
        k_mov = n_mov.bit_length()
        rl = self.grid.cols
        span = 2 * rl + 1
        k_span = span.bit_length()
        col_hi = self.grid.cols - 1
        row_hi = self.grid.rows - 1
        locked = self.locked
        evaluate = engine.evaluate_move
        commit = engine.commit
        samples: List[float] = []
        for _ in range(n):
            r = getrandbits(k_mov)
            while r >= n_mov:
                r = getrandbits(k_mov)
            mover = movable[r]
            old_site = sites[mover]
            r = getrandbits(k_span)
            while r >= span:
                r = getrandbits(k_span)
            col = old_site[0] - rl + r
            if col < 0:
                col = 0
            elif col > col_hi:
                col = col_hi
            r = getrandbits(k_span)
            while r >= span:
                r = getrandbits(k_span)
            row = old_site[1] - rl + r
            if row < 0:
                row = 0
            elif row > row_hi:
                row = row_hi
            if col == old_site[0] and row == old_site[1]:
                samples.append(0.0)
                continue
            new_site = (col, row)
            other = occupant[new_site]
            if other is not None and other in locked:
                samples.append(0.0)
                continue
            delta = evaluate(mover, other, new_site)
            commit()
            sites[mover] = new_site
            occupant[new_site] = mover
            occupant[old_site] = other
            if other is not None:
                sites[other] = old_site
            samples.append(abs(delta))
            total += delta
        return samples, total

    def _sweep_speculative(
        self,
        engine,
        sites: Dict[str, Site],
        occupant: Dict[Site, Optional[str]],
        range_limit: int,
        moves: int,
        temperature: float,
    ) -> Tuple[int, int]:
        """One temperature sweep via speculative evaluate + commit."""
        rng = self.rng
        getrandbits = rng.getrandbits
        rng_random = rng.random
        exp = math.exp
        movable = self._movable
        n_mov = len(movable)
        k_mov = n_mov.bit_length()
        span = 2 * range_limit + 1
        k_span = span.bit_length()
        col_hi = self.grid.cols - 1
        row_hi = self.grid.rows - 1
        locked = self.locked
        evaluate = engine.evaluate_move
        commit = engine.commit
        accepted = 0
        evaluated = 0
        for _ in range(moves):
            r = getrandbits(k_mov)
            while r >= n_mov:
                r = getrandbits(k_mov)
            mover = movable[r]
            old_site = sites[mover]
            r = getrandbits(k_span)
            while r >= span:
                r = getrandbits(k_span)
            col = old_site[0] - range_limit + r
            if col < 0:
                col = 0
            elif col > col_hi:
                col = col_hi
            r = getrandbits(k_span)
            while r >= span:
                r = getrandbits(k_span)
            row = old_site[1] - range_limit + r
            if row < 0:
                row = 0
            elif row > row_hi:
                row = row_hi
            if col == old_site[0] and row == old_site[1]:
                continue
            new_site = (col, row)
            other = occupant[new_site]
            if other is not None and other in locked:
                continue
            evaluated += 1
            delta = evaluate(mover, other, new_site)
            if delta <= 0 or rng_random() < exp(-delta / temperature):
                commit()
                accepted += 1
                sites[mover] = new_site
                occupant[new_site] = mover
                occupant[old_site] = other
                if other is not None:
                    sites[other] = old_site
        return accepted, evaluated

    # ------------------------------------------------------------------
    def benchmark_kernel(
        self, n_moves: int, temperature: float = 1.0
    ) -> Dict[str, float]:
        """Time the raw move kernel: ``n_moves`` proposals at one temperature.

        A microbenchmark entry point (no schedule, no per-temperature
        rebuilds): builds the initial placement, then runs a single
        fixed-temperature sweep through the engine configured for this
        placer.  Returns moves proposed/evaluated/accepted, wall
        seconds, and moves per second.  Placement state is left behind
        for inspection but no :class:`Placement` is produced.
        """
        sites = self._initial_sites()
        occupant: Dict[Site, Optional[str]] = {s: None for s in self.grid.sites()}
        for name, site in sites.items():
            occupant[site] = name
        engine = _ENGINES[self.engine_name](self, sites)
        self._engine = engine
        engine.rebuild()
        if not self._movable:
            return {"moves": 0, "evaluated": 0, "accepted": 0,
                    "seconds": 0.0, "moves_per_s": 0.0}
        range_limit = int(max(self.grid.cols, self.grid.rows))
        sweep = (
            self._sweep_speculative if engine.speculative
            else self._sweep_legacy
        )
        start = time.perf_counter()  # check: allow(DT002) microbenchmark timing
        accepted, evaluated = sweep(
            engine, sites, occupant, range_limit, n_moves, temperature
        )
        seconds = time.perf_counter() - start  # check: allow(DT002) microbenchmark timing
        return {
            "moves": n_moves,
            "evaluated": evaluated,
            "accepted": accepted,
            "seconds": seconds,
            "moves_per_s": n_moves / seconds if seconds > 0 else 0.0,
        }
    # ------------------------------------------------------------------
