"""Simulated-annealing placement (VPR-style adaptive schedule).

Cost is criticality-weighted half-perimeter wirelength.  Moves swap a
random instance with another instance or an empty site within an adaptive
range window; the schedule follows the classic VPR recipe (temperature
from initial cost spread, cooling rate adapted to the acceptance ratio,
exit when temperature is a tiny fraction of cost-per-net).

The placer is deterministic for a given seed and supports *locked*
instances (used by the packing <-> physical-synthesis iteration of paper
Section 3.1, where legalized cells keep their PLB positions).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..netlist.core import Netlist
from .grid import PlacementGrid, Site

#: Moves per temperature = MOVES_PER_CELL * n_cells ** 1.33, capped.
MOVES_PER_CELL = 1.0
MOVE_CAP_PER_TEMPERATURE = 40_000


@dataclass
class Placement:
    """Instance -> site assignment plus pad positions."""

    grid: PlacementGrid
    sites: Dict[str, Site]
    pads: Dict[str, Tuple[float, float]]

    def position_of(self, inst_name: str) -> Tuple[float, float]:
        return self.grid.center_of(self.sites[inst_name])

    def net_pin_points(self, netlist: Netlist) -> Dict[str, List[Tuple[float, float]]]:
        """Pin coordinates per net (driver, sinks, and pads)."""
        points: Dict[str, List[Tuple[float, float]]] = {
            name: [] for name in netlist.nets
        }
        for name, net in netlist.nets.items():
            if net.driver is not None:
                points[name].append(self.position_of(net.driver[0]))
            elif name in self.pads:
                points[name].append(self.pads[name])
            for sink_name, _pin in net.sinks:
                points[name].append(self.position_of(sink_name))
            if name in self.pads and net.driver is not None:
                points[name].append(self.pads[name])
        return points


def _net_bbox_cost(points: List[Tuple[float, float]], weight: float) -> float:
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return weight * ((max(xs) - min(xs)) + (max(ys) - min(ys)))


class AnnealingPlacer:
    """Criticality-weighted HPWL simulated annealing."""

    def __init__(
        self,
        netlist: Netlist,
        grid: PlacementGrid,
        net_weights: Optional[Mapping[str, float]] = None,
        seed: int = 0,
        locked: Optional[Mapping[str, Site]] = None,
        effort: float = 1.0,
    ):
        self.netlist = netlist
        self.grid = grid
        self.rng = random.Random(seed)
        self.net_weights = dict(net_weights or {})
        self.locked = dict(locked or {})
        self.effort = effort

        self._instances = list(netlist.instances)
        self._movable = [n for n in self._instances if n not in self.locked]
        if grid.n_sites < len(self._instances):
            raise ValueError(
                f"grid has {grid.n_sites} sites for {len(self._instances)} instances"
            )

        # Net membership per instance for incremental cost updates.
        self._nets_of: Dict[str, List[str]] = {name: [] for name in self._instances}
        for net_name, net in netlist.nets.items():
            members: Set[str] = set()
            if net.driver is not None:
                members.add(net.driver[0])
            for sink_name, _pin in net.sinks:
                members.add(sink_name)
            for member in members:
                self._nets_of[member].append(net_name)

        self.pads = grid.pad_positions(list(netlist.inputs) + list(netlist.outputs))

    # ------------------------------------------------------------------
    def _initial_sites(self) -> Dict[str, Site]:
        sites: Dict[str, Site] = dict(self.locked)
        taken = set(self.locked.values())
        free = [site for site in self.grid.sites() if site not in taken]
        self.rng.shuffle(free)
        for name in self._movable:
            sites[name] = free.pop()
        return sites

    def _net_points(
        self, sites: Dict[str, Site], net_name: str
    ) -> List[Tuple[float, float]]:
        net = self.netlist.nets[net_name]
        points: List[Tuple[float, float]] = []
        if net.driver is not None:
            points.append(self.grid.center_of(sites[net.driver[0]]))
        if net_name in self.pads:
            points.append(self.pads[net_name])
        for sink_name, _pin in net.sinks:
            points.append(self.grid.center_of(sites[sink_name]))
        return points

    def _net_cost(self, sites: Dict[str, Site], net_name: str) -> float:
        weight = 1.0 + self.net_weights.get(net_name, 0.0)
        return _net_bbox_cost(self._net_points(sites, net_name), weight)

    # ------------------------------------------------------------------
    def place(self) -> Placement:
        sites = self._initial_sites()
        occupant: Dict[Site, Optional[str]] = {s: None for s in self.grid.sites()}
        for name, site in sites.items():
            occupant[site] = name

        net_cost = {name: self._net_cost(sites, name) for name in self.netlist.nets}
        total = sum(net_cost.values())

        if not self._movable:
            return Placement(grid=self.grid, sites=sites, pads=self.pads)

        n = len(self._movable)
        moves_per_t = min(
            MOVE_CAP_PER_TEMPERATURE,
            max(200, int(self.effort * MOVES_PER_CELL * n ** 1.33)),
        )

        # Initial temperature: std-dev of cost over random perturbations.
        samples = []
        for _ in range(min(100, moves_per_t)):
            delta, undo = self._try_move(sites, occupant, net_cost, self.grid.cols)
            samples.append(abs(delta))
            if undo is not None:
                total += delta
        temperature = 20.0 * (sum(samples) / max(1, len(samples)) or 1.0)

        range_limit = float(max(self.grid.cols, self.grid.rows))
        min_temperature = 0.005 * total / max(1, len(self.netlist.nets))
        while temperature > max(min_temperature, 1e-9):
            accepted = 0
            for _ in range(moves_per_t):
                delta, undo = self._try_move(
                    sites, occupant, net_cost, int(max(1, range_limit))
                )
                if undo is None:
                    continue
                if delta <= 0 or self.rng.random() < math.exp(-delta / temperature):
                    total += delta
                    accepted += 1
                else:
                    undo()
            ratio = accepted / max(1, moves_per_t)
            # VPR schedule.
            if ratio > 0.96:
                temperature *= 0.5
            elif ratio > 0.8:
                temperature *= 0.9
            elif ratio > 0.15:
                temperature *= 0.95
            else:
                temperature *= 0.8
            range_limit = max(1.0, range_limit * (1.0 - 0.44 + ratio))
            if ratio < 0.01 and temperature < min_temperature * 10:
                break

        return Placement(grid=self.grid, sites=sites, pads=self.pads)

    # ------------------------------------------------------------------
    def _try_move(
        self,
        sites: Dict[str, Site],
        occupant: Dict[Site, Optional[str]],
        net_cost: Dict[str, float],
        range_limit: int,
    ):
        """Propose one move; returns (delta, undo) — undo None if invalid.

        The move is applied optimistically; call ``undo()`` to reject.
        """
        mover = self._movable[self.rng.randrange(len(self._movable))]
        old_site = sites[mover]
        col = old_site[0] + self.rng.randint(-range_limit, range_limit)
        row = old_site[1] + self.rng.randint(-range_limit, range_limit)
        new_site = self.grid.clamp(col, row)
        if new_site == old_site:
            return 0.0, None
        other = occupant[new_site]
        if other is not None and other in self.locked:
            return 0.0, None

        affected = set(self._nets_of[mover])
        if other is not None:
            affected |= set(self._nets_of[other])
        before = sum(net_cost[net] for net in affected)

        sites[mover] = new_site
        occupant[new_site] = mover
        occupant[old_site] = other
        if other is not None:
            sites[other] = old_site

        new_costs = {net: self._net_cost(sites, net) for net in affected}
        after = sum(new_costs.values())
        for net, cost in new_costs.items():
            net_cost[net] = cost

        def undo():
            sites[mover] = old_site
            occupant[old_site] = mover
            occupant[new_site] = other
            if other is not None:
                sites[other] = new_site
            for net in affected:
                net_cost[net] = self._net_cost(sites, net)

        return after - before, undo
