"""Simulated-annealing placement (VPR-style adaptive schedule).

Cost is criticality-weighted half-perimeter wirelength.  Moves swap a
random instance with another instance or an empty site within an adaptive
range window; the schedule follows the classic VPR recipe (temperature
from initial cost spread, cooling rate adapted to the acceptance ratio,
exit when temperature is a tiny fraction of cost-per-net).

Net cost is maintained *incrementally*, VPR-style: every net carries a
cached bounding box with occupancy counts on each boundary.  A move
updates only the nets touching the moved instance(s) in O(1) each — a
full per-net recomputation happens only when the last point on a
boundary moves off it (so the cached box is exact at all times, never an
approximation), and all boxes are rebuilt at every temperature step to
bound floating-point drift in the accumulated total.

The placer is deterministic for a given seed — including across
processes: per-move cost deltas are summed in a fixed net order derived
from netlist insertion order, never from (hash-randomized) set order —
and supports *locked* instances (used by the packing <->
physical-synthesis iteration of paper Section 3.1, where legalized cells
keep their PLB positions).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..netlist.core import Netlist
from .grid import PlacementGrid, Site

#: Moves per temperature = MOVES_PER_CELL * n_cells ** 1.33, capped.
MOVES_PER_CELL = 1.0
MOVE_CAP_PER_TEMPERATURE = 40_000


@dataclass
class Placement:
    """Instance -> site assignment plus pad positions."""

    grid: PlacementGrid
    sites: Dict[str, Site]
    pads: Dict[str, Tuple[float, float]]

    def position_of(self, inst_name: str) -> Tuple[float, float]:
        return self.grid.center_of(self.sites[inst_name])

    def net_pin_points(self, netlist: Netlist) -> Dict[str, List[Tuple[float, float]]]:
        """Pin coordinates per net (driver, sinks, and pads)."""
        points: Dict[str, List[Tuple[float, float]]] = {
            name: [] for name in netlist.nets
        }
        for name, net in netlist.nets.items():
            if net.driver is not None:
                points[name].append(self.position_of(net.driver[0]))
            elif name in self.pads:
                points[name].append(self.pads[name])
            for sink_name, _pin in net.sinks:
                points[name].append(self.position_of(sink_name))
            if name in self.pads and net.driver is not None:
                points[name].append(self.pads[name])
        return points


def _net_bbox_cost(points: List[Tuple[float, float]], weight: float) -> float:
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return weight * ((max(xs) - min(xs)) + (max(ys) - min(ys)))


class _NetBox:
    """Exact bounding box of a net's point multiset with boundary counts.

    ``n_*`` counts how many points sit on each boundary; removing the
    last boundary point invalidates the box (``remove`` returns False)
    and the caller rebuilds it from scratch.  Everywhere else updates
    are O(1).
    """

    __slots__ = ("xmin", "xmax", "ymin", "ymax",
                 "n_xmin", "n_xmax", "n_ymin", "n_ymax")

    def __init__(self, points: List[Tuple[float, float]]):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        self.xmin = min(xs)
        self.xmax = max(xs)
        self.ymin = min(ys)
        self.ymax = max(ys)
        self.n_xmin = xs.count(self.xmin)
        self.n_xmax = xs.count(self.xmax)
        self.n_ymin = ys.count(self.ymin)
        self.n_ymax = ys.count(self.ymax)

    def half_perimeter(self) -> float:
        return (self.xmax - self.xmin) + (self.ymax - self.ymin)

    def add(self, x: float, y: float) -> None:
        if x > self.xmax:
            self.xmax, self.n_xmax = x, 1
        elif x == self.xmax:
            self.n_xmax += 1
        if x < self.xmin:
            self.xmin, self.n_xmin = x, 1
        elif x == self.xmin:
            self.n_xmin += 1
        if y > self.ymax:
            self.ymax, self.n_ymax = y, 1
        elif y == self.ymax:
            self.n_ymax += 1
        if y < self.ymin:
            self.ymin, self.n_ymin = y, 1
        elif y == self.ymin:
            self.n_ymin += 1

    def remove(self, x: float, y: float) -> bool:
        """Remove one point; False when a boundary emptied (rebuild me)."""
        ok = True
        if x == self.xmax:
            self.n_xmax -= 1
            ok = ok and self.n_xmax > 0
        if x == self.xmin:
            self.n_xmin -= 1
            ok = ok and self.n_xmin > 0
        if y == self.ymax:
            self.n_ymax -= 1
            ok = ok and self.n_ymax > 0
        if y == self.ymin:
            self.n_ymin -= 1
            ok = ok and self.n_ymin > 0
        return ok

    def state(self) -> Tuple:
        return (self.xmin, self.xmax, self.ymin, self.ymax,
                self.n_xmin, self.n_xmax, self.n_ymin, self.n_ymax)

    def restore(self, state: Tuple) -> None:
        (self.xmin, self.xmax, self.ymin, self.ymax,
         self.n_xmin, self.n_xmax, self.n_ymin, self.n_ymax) = state


class AnnealingPlacer:
    """Criticality-weighted HPWL simulated annealing."""

    def __init__(
        self,
        netlist: Netlist,
        grid: PlacementGrid,
        net_weights: Optional[Mapping[str, float]] = None,
        seed: int = 0,
        locked: Optional[Mapping[str, Site]] = None,
        effort: float = 1.0,
    ):
        self.netlist = netlist
        self.grid = grid
        self.rng = random.Random(seed)
        self.net_weights = dict(net_weights or {})
        self.locked = dict(locked or {})
        self.effort = effort

        self._instances = list(netlist.instances)
        self._movable = [n for n in self._instances if n not in self.locked]
        if grid.n_sites < len(self._instances):
            raise ValueError(
                f"grid has {grid.n_sites} sites for {len(self._instances)} instances"
            )

        # Per-instance net contributions for incremental cost updates:
        # instance -> [(net, point multiplicity)], in netlist net order
        # (deterministic — never hash-randomized set order).  Only nets
        # with >= 2 points can ever have nonzero cost ("active").
        self._contrib_of: Dict[str, List[Tuple[str, int]]] = {
            name: [] for name in self._instances
        }
        self._active_nets: List[str] = []
        self._weight: Dict[str, float] = {}
        self.pads = grid.pad_positions(list(netlist.inputs) + list(netlist.outputs))
        for net_name, net in netlist.nets.items():
            counts: Dict[str, int] = {}
            if net.driver is not None:
                counts[net.driver[0]] = counts.get(net.driver[0], 0) + 1
            for sink_name, _pin in net.sinks:
                counts[sink_name] = counts.get(sink_name, 0) + 1
            n_points = sum(counts.values()) + (1 if net_name in self.pads else 0)
            if n_points < 2:
                continue
            self._active_nets.append(net_name)
            self._weight[net_name] = 1.0 + self.net_weights.get(net_name, 0.0)
            for member, count in counts.items():
                self._contrib_of[member].append((net_name, count))

        # Mutable per-run state (populated by place()).
        self._pos: Dict[str, Tuple[float, float]] = {}
        self._boxes: Dict[str, _NetBox] = {}

    # ------------------------------------------------------------------
    def _initial_sites(self) -> Dict[str, Site]:
        sites: Dict[str, Site] = dict(self.locked)
        taken = set(self.locked.values())
        free = [site for site in self.grid.sites() if site not in taken]
        self.rng.shuffle(free)
        for name in self._movable:
            sites[name] = free.pop()
        return sites

    def _net_points(
        self, sites: Dict[str, Site], net_name: str
    ) -> List[Tuple[float, float]]:
        net = self.netlist.nets[net_name]
        points: List[Tuple[float, float]] = []
        if net.driver is not None:
            points.append(self.grid.center_of(sites[net.driver[0]]))
        if net_name in self.pads:
            points.append(self.pads[net_name])
        for sink_name, _pin in net.sinks:
            points.append(self.grid.center_of(sites[sink_name]))
        return points

    def _net_cost(self, sites: Dict[str, Site], net_name: str) -> float:
        weight = 1.0 + self.net_weights.get(net_name, 0.0)
        return _net_bbox_cost(self._net_points(sites, net_name), weight)

    def _build_box(self, sites: Dict[str, Site], net_name: str) -> _NetBox:
        return _NetBox(self._net_points(sites, net_name))

    def _rebuild_boxes(
        self, sites: Dict[str, Site], net_cost: Dict[str, float]
    ) -> float:
        """Full recompute of every active net's box and cost; returns total."""
        for net_name in self._active_nets:
            box = self._build_box(sites, net_name)
            self._boxes[net_name] = box
            net_cost[net_name] = self._weight[net_name] * box.half_perimeter()
        return sum(net_cost.values())

    # ------------------------------------------------------------------
    def place(self) -> Placement:
        sites = self._initial_sites()
        occupant: Dict[Site, Optional[str]] = {s: None for s in self.grid.sites()}
        for name, site in sites.items():
            occupant[site] = name
        self._pos = {name: self.grid.center_of(site) for name, site in sites.items()}

        net_cost = {name: 0.0 for name in self.netlist.nets}
        total = self._rebuild_boxes(sites, net_cost)

        if not self._movable:
            return Placement(grid=self.grid, sites=sites, pads=self.pads)

        n = len(self._movable)
        moves_per_t = min(
            MOVE_CAP_PER_TEMPERATURE,
            max(200, int(self.effort * MOVES_PER_CELL * n ** 1.33)),
        )

        # Initial temperature: std-dev of cost over random perturbations.
        samples = []
        for _ in range(min(100, moves_per_t)):
            delta, undo = self._try_move(sites, occupant, net_cost, self.grid.cols)
            samples.append(abs(delta))
            if undo is not None:
                total += delta
        temperature = 20.0 * (sum(samples) / max(1, len(samples)) or 1.0)

        range_limit = float(max(self.grid.cols, self.grid.rows))
        min_temperature = 0.005 * total / max(1, len(self.netlist.nets))
        while temperature > max(min_temperature, 1e-9):
            accepted = 0
            for _ in range(moves_per_t):
                delta, undo = self._try_move(
                    sites, occupant, net_cost, int(max(1, range_limit))
                )
                if undo is None:
                    continue
                if delta <= 0 or self.rng.random() < math.exp(-delta / temperature):
                    total += delta
                    accepted += 1
                else:
                    undo()
            ratio = accepted / max(1, moves_per_t)
            # VPR schedule.
            if ratio > 0.96:
                temperature *= 0.5
            elif ratio > 0.8:
                temperature *= 0.9
            elif ratio > 0.15:
                temperature *= 0.95
            else:
                temperature *= 0.8
            range_limit = max(1.0, range_limit * (1.0 - 0.44 + ratio))
            # Periodic exact rebuild bounds float drift in the running total.
            total = self._rebuild_boxes(sites, net_cost)
            if ratio < 0.01 and temperature < min_temperature * 10:
                break

        return Placement(grid=self.grid, sites=sites, pads=self.pads)

    # ------------------------------------------------------------------
    def _try_move(
        self,
        sites: Dict[str, Site],
        occupant: Dict[Site, Optional[str]],
        net_cost: Dict[str, float],
        range_limit: int,
    ):
        """Propose one move; returns (delta, undo) — undo None if invalid.

        The move is applied optimistically; call ``undo()`` to reject.
        Only nets touching the moved instance(s) are updated, each in
        O(1) via its cached bounding box.
        """
        mover = self._movable[self.rng.randrange(len(self._movable))]
        old_site = sites[mover]
        col = old_site[0] + self.rng.randint(-range_limit, range_limit)
        row = old_site[1] + self.rng.randint(-range_limit, range_limit)
        new_site = self.grid.clamp(col, row)
        if new_site == old_site:
            return 0.0, None
        other = occupant[new_site]
        if other is not None and other in self.locked:
            return 0.0, None

        pos = self._pos
        old_pt = pos[mover]
        new_pt = self.grid.center_of(new_site)

        sites[mover] = new_site
        occupant[new_site] = mover
        occupant[old_site] = other
        pos[mover] = new_pt
        if other is not None:
            sites[other] = old_site
            pos[other] = old_pt

        # Point relocations per net, in deterministic contribution order.
        changes: Dict[str, List[Tuple[Tuple[float, float], Tuple[float, float], int]]]
        changes = {}
        for net, count in self._contrib_of[mover]:
            changes.setdefault(net, []).append((old_pt, new_pt, count))
        if other is not None:
            for net, count in self._contrib_of[other]:
                changes.setdefault(net, []).append((new_pt, old_pt, count))

        boxes = self._boxes
        delta = 0.0
        saved: List[Tuple[str, float, Tuple]] = []
        for net, moves in changes.items():
            box = boxes[net]
            saved.append((net, net_cost[net], box.state()))
            intact = True
            for from_pt, to_pt, count in moves:
                for _ in range(count):
                    box.add(to_pt[0], to_pt[1])
                    intact = box.remove(from_pt[0], from_pt[1]) and intact
            if not intact:
                box = self._build_box(sites, net)
                boxes[net] = box
            cost = self._weight[net] * box.half_perimeter()
            delta += cost - net_cost[net]
            net_cost[net] = cost

        def undo():
            sites[mover] = old_site
            occupant[old_site] = mover
            occupant[new_site] = other
            pos[mover] = old_pt
            if other is not None:
                sites[other] = new_site
                pos[other] = new_pt
            for net, cost, state in saved:
                net_cost[net] = cost
                boxes[net].restore(state)

        return delta, undo
    # ------------------------------------------------------------------
