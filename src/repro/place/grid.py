"""Placement grids.

Flow *a* places component cells on a uniform site grid (standard-cell
style, sized from total cell area and a utilization target); flow *b*
targets the PLB array, whose tile geometry comes from the architecture.
Both expose site -> micron coordinates for wirelength and timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..netlist.core import Netlist

#: Standard-cell utilization target for flow a die sizing.
DEFAULT_UTILIZATION = 0.70

#: Per-instance fixed area overhead in a standard-cell row (pin access,
#: spacing, well taps), um^2.  Small cells pay proportionally more, as in
#: a real row-based layout.
CELL_OVERHEAD_UM2 = 3.0

Site = Tuple[int, int]


@dataclass(frozen=True)
class PlacementGrid:
    """A rectangular grid of placement sites.

    ``pitch`` is the site pitch in um (sites are square).  I/O pads sit on
    the boundary ring just outside the core.
    """

    cols: int
    rows: int
    pitch: float

    @property
    def n_sites(self) -> int:
        return self.cols * self.rows

    @property
    def width_um(self) -> float:
        return self.cols * self.pitch

    @property
    def height_um(self) -> float:
        return self.rows * self.pitch

    @property
    def area_um2(self) -> float:
        return self.width_um * self.height_um

    def center_of(self, site: Site) -> Tuple[float, float]:
        col, row = site
        return ((col + 0.5) * self.pitch, (row + 0.5) * self.pitch)

    def sites(self) -> Iterator[Site]:
        for row in range(self.rows):
            for col in range(self.cols):
                yield (col, row)

    def contains(self, site: Site) -> bool:
        col, row = site
        return 0 <= col < self.cols and 0 <= row < self.rows

    def clamp(self, col: int, row: int) -> Site:
        return (max(0, min(self.cols - 1, col)), max(0, min(self.rows - 1, row)))

    def pad_positions(self, names: List[str]) -> Dict[str, Tuple[float, float]]:
        """Spread I/O pads evenly around the perimeter, in name order."""
        perimeter = 2.0 * (self.width_um + self.height_um)
        positions: Dict[str, Tuple[float, float]] = {}
        n = max(1, len(names))
        for i, name in enumerate(names):
            distance = (i + 0.5) * perimeter / n
            positions[name] = self._perimeter_point(distance)
        return positions

    def _perimeter_point(self, distance: float) -> Tuple[float, float]:
        w, h = self.width_um, self.height_um
        if distance < w:
            return (distance, 0.0)
        distance -= w
        if distance < h:
            return (w, distance)
        distance -= h
        if distance < w:
            return (w - distance, h)
        distance -= w
        return (0.0, h - distance)


def grid_for_netlist(
    netlist: Netlist, utilization: float = DEFAULT_UTILIZATION
) -> PlacementGrid:
    """Size a standard-cell site grid for flow a.

    One site per instance; pitch from the average cell footprint inflated
    by the utilization target, so grid area ~= cell area / utilization.
    """
    n = max(1, len(netlist.instances))
    total_area = sum(
        inst.cell.area + CELL_OVERHEAD_UM2 for inst in netlist.instances.values()
    )
    avg_cell = total_area / n
    pitch = math.sqrt(avg_cell / utilization)
    cols = max(2, math.ceil(math.sqrt(n)))
    rows = max(2, math.ceil(n / cols))
    return PlacementGrid(cols=cols, rows=rows, pitch=pitch)
