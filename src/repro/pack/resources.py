"""PLB resource accounting for packing.

Maps netlist cell instances onto PLB component slots using the
architecture's compatibility table (e.g. an ND2WI occupies an ND3WI slot,
or — in the granular PLB — any mux slot, the flexibility paper Section 3.2
credits for its packing-efficiency win).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..core.plb import PLBArchitecture
from ..netlist.core import Instance, Netlist


class PackingError(RuntimeError):
    """Raised when a design cannot fit the PLB array."""


@dataclass
class SlotPool:
    """Slot occupancy for one PLB (or one region of PLBs)."""

    capacity: Dict[str, int]
    used: Dict[str, int] = field(default_factory=dict)

    def free(self, slot: str) -> int:
        return self.capacity.get(slot, 0) - self.used.get(slot, 0)

    def take(self, slot: str) -> None:
        if self.free(slot) <= 0:
            raise PackingError(f"slot {slot} exhausted")
        self.used[slot] = self.used.get(slot, 0) + 1

    def release(self, slot: str) -> None:
        self.used[slot] = self.used.get(slot, 0) - 1

    def can_host(self, arch: PLBArchitecture, cell_name: str) -> Optional[str]:
        """First compatible slot with space, in preference order."""
        for slot in arch.hosting_slots(cell_name):
            if self.free(slot) > 0:
                return slot
        return None

    @staticmethod
    def for_plbs(arch: PLBArchitecture, n_plbs: int) -> "SlotPool":
        return SlotPool(capacity={s: c * n_plbs for s, c in arch.slots.items()})


def region_fits(
    arch: PLBArchitecture, instances: Sequence[Instance], n_plbs: int
) -> bool:
    """Greedy feasibility: can these instances fit ``n_plbs`` PLBs?

    Cells with the fewest compatible slots are placed first (most
    constrained first), which is exact for the small compatibility tables
    here.
    """
    pool = SlotPool.for_plbs(arch, n_plbs)
    ordered = sorted(
        instances, key=lambda inst: len(arch.hosting_slots(inst.cell.name))
    )
    for inst in ordered:
        slot = pool.can_host(arch, inst.cell.name)
        if slot is None:
            return False
        pool.take(slot)
    return True


def min_plbs(arch: PLBArchitecture, netlist: Netlist) -> int:
    """Smallest PLB count whose aggregate resources fit ``netlist``."""
    instances = list(netlist.instances.values())
    unhostable = [
        inst.cell.name for inst in instances if not arch.hosting_slots(inst.cell.name)
    ]
    if unhostable:
        raise PackingError(
            f"architecture {arch.name!r} cannot host cells: {sorted(set(unhostable))}"
        )
    low, high = 1, max(1, len(instances))
    if not region_fits(arch, instances, high):
        raise PackingError("design does not fit even one PLB per instance")
    while low < high:
        mid = (low + high) // 2
        if region_fits(arch, instances, mid):
            high = mid
        else:
            low = mid + 1
    return high


def size_array(
    arch: PLBArchitecture, netlist: Netlist, headroom: float = 1.1
) -> Tuple[int, int]:
    """Near-square PLB array dimensions with packing headroom.

    The paper implements each design "onto an gate-array of regular PLBs";
    we size the array per design: the smallest near-square rectangle (at
    most one row of aspect slack) with ``headroom`` over the resource
    lower bound, so packing has room to preserve placement locality.
    """
    needed = max(1, math.ceil(min_plbs(arch, netlist) * headroom))
    cols = max(1, math.ceil(math.sqrt(needed)))
    rows = max(1, math.ceil(needed / cols))
    return cols, rows
