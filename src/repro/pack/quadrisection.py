"""Recursive-quadrisection packing (paper Section 3.1).

"Our packing algorithm does this by recursive quadrisection.  At each
quadrisection level, the component cells are relocated to other regions of
the chip depending on the availability of the corresponding resource. ...
The cost function used in this algorithm takes into consideration the
criticality of the cells being moved and also tries to minimize
perturbation of the ASIC-style placement."

The ASIC-style detailed placement is scaled onto the PLB array; the array
is then split recursively into quadrants.  Whenever a quadrant's component
demand exceeds its resource supply, overflow cells — least-critical,
smallest-displacement first — migrate to the nearest sibling quadrant with
free resources.  At single-PLB leaves, cells are bound to concrete slots;
any residual overflow spills to the nearest PLB with space (spiral
search).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.plb import PLBArchitecture
from ..netlist.core import Instance, Netlist
from ..place.sa import Placement
from .resources import PackingError, SlotPool, region_fits

Position = Tuple[float, float]


@dataclass(frozen=True)
class SlotAssignment:
    """Where one instance landed."""

    plb: Tuple[int, int]
    slot: str


@dataclass
class PackingResult:
    """Full packing outcome."""

    arch: PLBArchitecture
    cols: int
    rows: int
    assignments: Dict[str, SlotAssignment]
    #: total |displacement| between scaled ASIC position and PLB center, um
    total_displacement: float
    moved_cells: int

    @property
    def n_plbs(self) -> int:
        return self.cols * self.rows

    @property
    def plbs_used(self) -> int:
        return len({a.plb for a in self.assignments.values()})

    @property
    def die_area(self) -> float:
        """Flow-b die area: the full PLB array footprint (um^2)."""
        return self.n_plbs * self.arch.area

    def plb_center(self, plb: Tuple[int, int]) -> Position:
        side = self.arch.tile_side
        return ((plb[0] + 0.5) * side, (plb[1] + 0.5) * side)

    def position_of(self, inst_name: str) -> Position:
        return self.plb_center(self.assignments[inst_name].plb)

    def utilization(self) -> Dict[str, float]:
        """Per-slot-type utilization across the array."""
        used: Dict[str, int] = {}
        for assignment in self.assignments.values():
            used[assignment.slot] = used.get(assignment.slot, 0) + 1
        return {
            slot: used.get(slot, 0) / (count * self.n_plbs)
            for slot, count in self.arch.slots.items()
        }

    def net_pin_points(self, netlist: Netlist) -> Dict[str, List[Position]]:
        """Pin coordinates per net on the PLB array (pads on the ring)."""
        side = self.arch.tile_side
        width, height = self.cols * side, self.rows * side
        pad_names = list(netlist.inputs) + list(netlist.outputs)
        pads = _ring_positions(pad_names, width, height)
        points: Dict[str, List[Position]] = {}
        for name, net in netlist.nets.items():
            pts: List[Position] = []
            if net.driver is not None:
                pts.append(self.position_of(net.driver[0]))
            if name in pads:
                pts.append(pads[name])
            for sink_name, _pin in net.sinks:
                pts.append(self.position_of(sink_name))
            points[name] = pts
        return points


def _ring_positions(
    names: Sequence[str], width: float, height: float
) -> Dict[str, Position]:
    perimeter = 2.0 * (width + height)
    out: Dict[str, Position] = {}
    n = max(1, len(names))
    for i, name in enumerate(names):
        d = (i + 0.5) * perimeter / n
        if d < width:
            out[name] = (d, 0.0)
        elif d < width + height:
            out[name] = (width, d - width)
        elif d < 2 * width + height:
            out[name] = (2 * width + height - d, height)
        else:
            out[name] = (0.0, perimeter - d)
    return out


@dataclass
class _Region:
    col0: int
    col1: int  # exclusive
    row0: int
    row1: int  # exclusive
    cells: List[str] = field(default_factory=list)

    @property
    def n_plbs(self) -> int:
        return (self.col1 - self.col0) * (self.row1 - self.row0)

    def center(self, tile: float) -> Position:
        return (
            (self.col0 + self.col1) / 2.0 * tile,
            (self.row0 + self.row1) / 2.0 * tile,
        )

    def is_leaf(self) -> bool:
        return self.n_plbs <= 1


def pack(
    netlist: Netlist,
    placement: Placement,
    arch: PLBArchitecture,
    cols: int,
    rows: int,
    criticality: Optional[Mapping[str, float]] = None,
) -> PackingResult:
    """Pack ``netlist`` into a ``cols`` x ``rows`` PLB array."""
    criticality = criticality or {}
    instances = netlist.instances
    if not region_fits(arch, list(instances.values()), cols * rows):
        raise PackingError(
            f"{netlist.name}: does not fit a {cols}x{rows} array of {arch.name} PLBs"
        )

    # Scale the ASIC placement onto the PLB array.  Instances the packing
    # loop created after placement (re-inserted buffers) take the centroid
    # of their placed neighbors.
    tile = arch.tile_side
    width, height = max(1e-9, placement.grid.width_um), max(1e-9, placement.grid.height_um)
    scaled: Dict[str, Position] = {}
    unplaced: List[str] = []
    for name in instances:
        if name in placement.sites:
            x, y = placement.position_of(name)
            scaled[name] = (x / width * cols * tile, y / height * rows * tile)
        else:
            unplaced.append(name)
    default = (cols * tile / 2.0, rows * tile / 2.0)
    for name in unplaced:
        neighbors: List[Position] = []
        inst = instances[name]
        for net in list(inst.input_nets()) + [inst.output_net]:
            net_obj = netlist.nets[net]
            if net_obj.driver is not None and net_obj.driver[0] in scaled:
                neighbors.append(scaled[net_obj.driver[0]])
            for sink_name, _pin in net_obj.sinks:
                if sink_name in scaled:
                    neighbors.append(scaled[sink_name])
        if neighbors:
            scaled[name] = (
                sum(p[0] for p in neighbors) / len(neighbors),
                sum(p[1] for p in neighbors) / len(neighbors),
            )
        else:
            scaled[name] = default

    def crit_of(name: str) -> float:
        return criticality.get(name, 0.0)

    root = _Region(0, cols, 0, rows, cells=list(instances))
    assignments: Dict[str, SlotAssignment] = {}
    total_displacement = 0.0
    moved = 0

    queue: List[_Region] = [root]
    while queue:
        region = queue.pop()
        if region.is_leaf():
            disp, spilled = _assign_leaf(
                region, instances, scaled, arch, assignments, cols, rows, tile
            )
            total_displacement += disp
            moved += spilled
            continue
        children = _split(region)
        # Geographic assignment of cells to children.
        for name in region.cells:
            x, y = scaled[name]
            best = min(
                children,
                key=lambda ch: _dist((x, y), ch.center(tile)),
            )
            best.cells.append(name)
        _balance_children(children, instances, scaled, arch, crit_of, tile)
        queue.extend(children)

    return PackingResult(
        arch=arch,
        cols=cols,
        rows=rows,
        assignments=assignments,
        total_displacement=total_displacement,
        moved_cells=moved,
    )


def _dist(a: Position, b: Position) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def _split(region: _Region) -> List[_Region]:
    cmid = (region.col0 + region.col1 + 1) // 2
    rmid = (region.row0 + region.row1 + 1) // 2
    children = []
    for c0, c1 in ((region.col0, cmid), (cmid, region.col1)):
        for r0, r1 in ((region.row0, rmid), (rmid, region.row1)):
            if c1 > c0 and r1 > r0:
                children.append(_Region(c0, c1, r0, r1))
    return children


def _balance_children(
    children: List[_Region],
    instances: Mapping[str, Instance],
    scaled: Mapping[str, Position],
    arch: PLBArchitecture,
    crit_of,
    tile: float,
) -> None:
    """Move overflow cells between sibling quadrants until all fit.

    Overflow candidates are chosen least-critical first, then by smallest
    displacement to the receiving quadrant — the paper's cost function.
    """
    pools = [SlotPool.for_plbs(arch, ch.n_plbs) for ch in children]
    overflow: List[Tuple[str, int]] = []  # (cell, source child index)

    kept: List[List[str]] = [[] for _ in children]
    for index, child in enumerate(children):
        # Most-constrained cells claim slots first; prefer keeping
        # critical cells in their home quadrant.
        ordered = sorted(
            child.cells,
            key=lambda n: (
                len(arch.hosting_slots(instances[n].cell.name)),
                -crit_of(n),
            ),
        )
        for name in ordered:
            slot = pools[index].can_host(arch, instances[name].cell.name)
            if slot is None:
                overflow.append((name, index))
            else:
                pools[index].take(slot)
                kept[index].append(name)

    # Least-critical overflow first.
    overflow.sort(key=lambda item: crit_of(item[0]))
    for name, source in overflow:
        candidates = []
        for index, child in enumerate(children):
            if index == source:
                continue
            slot = pools[index].can_host(arch, instances[name].cell.name)
            if slot is not None:
                displacement = _dist(scaled[name], child.center(tile))
                candidates.append((displacement, index, slot))
        if not candidates:
            # Greedy slot claims can block a feasible distribution (a
            # flexible cell took a scarce slot).  Fall through: keep the
            # cell in its home quadrant; the leaf-level spiral spill will
            # find it a PLB with space.
            kept[source].append(name)
            continue
        _d, index, slot = min(candidates)
        pools[index].take(slot)
        kept[index].append(name)

    for child, cells in zip(children, kept):
        child.cells = cells


def _assign_leaf(
    region: _Region,
    instances: Mapping[str, Instance],
    scaled: Mapping[str, Position],
    arch: PLBArchitecture,
    assignments: Dict[str, SlotAssignment],
    cols: int,
    rows: int,
    tile: float,
    ) -> Tuple[float, int]:
    """Bind a single-PLB region's cells to slots; spill if needed."""
    plb = (region.col0, region.row0)
    pool = SlotPool.for_plbs(arch, 1)
    displacement = 0.0
    spilled = 0
    center = ((plb[0] + 0.5) * tile, (plb[1] + 0.5) * tile)
    ordered = sorted(
        region.cells,
        key=lambda n: len(arch.hosting_slots(instances[n].cell.name)),
    )
    pending: List[str] = []
    for name in ordered:
        slot = pool.can_host(arch, instances[name].cell.name)
        if slot is None:
            pending.append(name)
            continue
        pool.take(slot)
        assignments[name] = SlotAssignment(plb=plb, slot=slot)
        displacement += _dist(scaled[name], center)
    for name in pending:
        # Spiral to the nearest PLB with space (its pool may not exist yet
        # if it is processed later; track shared pools lazily).
        placed = _spill(name, plb, instances, arch, assignments, cols, rows)
        if placed is None:
            raise PackingError(f"no PLB anywhere can host {name}")
        assignments[name] = placed
        target_center = ((placed.plb[0] + 0.5) * tile, (placed.plb[1] + 0.5) * tile)
        displacement += _dist(scaled[name], target_center)
        spilled += 1
    return displacement, spilled


def _spill(
    name: str,
    origin: Tuple[int, int],
    instances: Mapping[str, Instance],
    arch: PLBArchitecture,
    assignments: Mapping[str, SlotAssignment],
    cols: int,
    rows: int,
) -> Optional[SlotAssignment]:
    """Nearest-PLB spiral search accounting for already-made assignments."""
    # Rebuild occupancy lazily (spills are rare).
    occupancy: Dict[Tuple[int, int], SlotPool] = {}
    for assigned in assignments.values():
        pool = occupancy.setdefault(
            assigned.plb, SlotPool.for_plbs(arch, 1)
        )
        pool.used[assigned.slot] = pool.used.get(assigned.slot, 0) + 1
    for radius in range(1, cols + rows):
        ring = _ring(origin, radius, cols, rows)
        for plb in ring:
            pool = occupancy.setdefault(plb, SlotPool.for_plbs(arch, 1))
            slot = pool.can_host(arch, instances[name].cell.name)
            if slot is not None:
                return SlotAssignment(plb=plb, slot=slot)
    return None


def _ring(
    origin: Tuple[int, int], radius: int, cols: int, rows: int
) -> List[Tuple[int, int]]:
    out = []
    c0, r0 = origin
    for dc in range(-radius, radius + 1):
        for dr in (-radius, radius):
            plb = (c0 + dc, r0 + dr)
            if 0 <= plb[0] < cols and 0 <= plb[1] < rows:
                out.append(plb)
    for dr in range(-radius + 1, radius):
        for dc in (-radius, radius):
            plb = (c0 + dc, r0 + dr)
            if 0 <= plb[0] < cols and 0 <= plb[1] < rows:
                out.append(plb)
    return out
