"""The packing <-> physical-synthesis iteration (paper Section 3.1).

"In order to further minimize the loss in performance due to the motion of
the component cells, we use the packing algorithm in an iterative loop
with the physical synthesis tool. ... This iteration loop is repeated
until all the components have been allotted legal locations in the PLB
array."

Each iteration packs from the current placement, derives cell
criticalities from post-pack timing, re-runs buffer insertion where the
packed wiring overloads drivers, and feeds the updated criticalities back
into the next packing pass, so critical cells are perturbed least.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cells.characterize import TimingLibrary
from ..cells.library import Library
from ..core.plb import PLBArchitecture
from ..netlist.core import Netlist
from ..place.buffers import insert_buffers
from ..place.sa import Placement
from ..timing.sta import TimingReport, analyze
from ..timing.wires import WireModel, wire_model_from_placement
from .quadrisection import PackingResult, pack
from .resources import size_array


@dataclass
class PackedDesign:
    """Final legalized design on the PLB array."""

    netlist: Netlist
    packing: PackingResult
    wires: WireModel
    timing: TimingReport

    @property
    def die_area(self) -> float:
        return self.packing.die_area


def run_packing_loop(
    netlist: Netlist,
    placement: Placement,
    arch: PLBArchitecture,
    library: Library,
    timing_library: TimingLibrary,
    period: float,
    iterations: int = 2,
    headroom: float = 1.15,
) -> PackedDesign:
    """Legalize ``netlist`` into a PLB array; returns the packed design.

    Mutates ``netlist`` when buffer re-insertion is required.
    """
    cols, rows = size_array(arch, netlist, headroom=headroom)
    criticality: Dict[str, float] = {}
    packing: Optional[PackingResult] = None
    wires: Optional[WireModel] = None
    report: Optional[TimingReport] = None

    for iteration in range(max(1, iterations)):
        packing = pack(netlist, placement, arch, cols, rows, criticality)
        wires = wire_model_from_placement(packing.net_pin_points(netlist))
        report = analyze(netlist, timing_library, wires, period=period)
        if iteration == max(1, iterations) - 1:
            break
        # Criticality per cell: worst arrival fraction of its output net.
        worst = report.critical_path_delay or 1.0
        criticality = {
            inst.name: min(1.0, report.arrival.get(inst.output_net, 0.0) / worst)
            for inst in netlist.instances.values()
        }
        # "redo buffer insertion ... where necessary" — packed wiring may
        # overload drivers the ASIC placement did not.
        added = insert_buffers(netlist, library, placement=None)
        if added:
            # Array may need to grow for the new buffers.
            cols, rows = size_array(arch, netlist, headroom=headroom)

    assert packing is not None and wires is not None and report is not None
    return PackedDesign(netlist=netlist, packing=packing, wires=wires, timing=report)
