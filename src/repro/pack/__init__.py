"""Packing substrate: PLB resources, quadrisection, iterative legalization."""

from .resources import PackingError, SlotPool, min_plbs, region_fits, size_array
from .quadrisection import PackingResult, SlotAssignment, pack
from .iterative import PackedDesign, run_packing_loop

__all__ = [
    "PackingError",
    "SlotPool",
    "min_plbs",
    "region_fits",
    "size_array",
    "PackingResult",
    "SlotAssignment",
    "pack",
    "PackedDesign",
    "run_packing_loop",
]
