"""Layout visualization: SVG rendering of flow artifacts.

The paper's flow "produces a GDSII description of the layout in the form
of a regular array of PLBs with ASIC-style custom routing on the upper
metal layers"; this module renders that artifact for inspection — PLB
tiles shaded by slot utilization, component occupancy marks, and the
routed nets overlaid as upper-metal segments.

No drawing dependencies: output is plain SVG text.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, TextIO, Tuple

from .pack.quadrisection import PackingResult
from .route.pathfinder import RoutingResult

#: Fill colors per slot class.
SLOT_COLORS = {
    "LUT3": "#8da0cb",
    "ND3WI": "#66c2a5",
    "MUX2": "#fc8d62",
    "XOA": "#e78ac3",
    "DFF": "#a6d854",
    "POLBUF": "#ffd92f",
}

_TILE_FILL = "#f4f4f0"
_TILE_EDGE = "#999999"
_WIRE_COLOR = "#4466bb"


def _esc(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def render_packing_svg(
    packing: PackingResult,
    routing: Optional[RoutingResult] = None,
    scale: float = 4.0,
    title: str = "",
) -> str:
    """Render a packed design (and optionally its routing) as SVG text."""
    tile = packing.arch.tile_side * scale
    width = packing.cols * tile
    height = packing.rows * tile

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width + 20:.0f}" height="{height + 40:.0f}" '
        f'viewBox="-10 -30 {width + 20:.0f} {height + 40:.0f}">',
        f'<text x="0" y="-12" font-family="monospace" font-size="14">'
        f'{_esc(title or packing.arch.name)} — '
        f'{packing.plbs_used}/{packing.n_plbs} PLBs used</text>',
    ]

    # Occupancy per PLB, grouped by slot.
    occupancy: Dict[Tuple[int, int], Dict[str, int]] = defaultdict(
        lambda: defaultdict(int)
    )
    for assignment in packing.assignments.values():
        occupancy[assignment.plb][assignment.slot] += 1

    for row in range(packing.rows):
        for col in range(packing.cols):
            x, y = col * tile, row * tile
            slots = occupancy.get((col, row), {})
            used = sum(slots.values())
            capacity = max(1, sum(packing.arch.slots.values()))
            shade = 1.0 - 0.6 * min(1.0, used / capacity)
            fill = _TILE_FILL if not slots else (
                f"rgb({int(244 * shade)},{int(244 * shade)},{int(240 * shade)})"
            )
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{tile:.1f}" '
                f'height="{tile:.1f}" fill="{fill}" stroke="{_TILE_EDGE}" '
                f'stroke-width="0.5"/>'
            )
            # Slot occupancy marks: one small square per occupied slot.
            mark = tile / 6.0
            index = 0
            for slot_name in sorted(slots):
                color = SLOT_COLORS.get(slot_name, "#cccccc")
                for _ in range(slots[slot_name]):
                    mx = x + 2 + (index % 5) * (mark + 1)
                    my = y + 2 + (index // 5) * (mark + 1)
                    parts.append(
                        f'<rect x="{mx:.1f}" y="{my:.1f}" width="{mark:.1f}" '
                        f'height="{mark:.1f}" fill="{color}">'
                        f"<title>{_esc(slot_name)}</title></rect>"
                    )
                    index += 1

    if routing is not None:
        parts.append('<g stroke-linecap="round" opacity="0.45">')
        for net in routing.nets.values():
            for (a, b) in net.edges:
                ax = (a[0] + 0.5) * tile
                ay = (a[1] + 0.5) * tile
                bx = (b[0] + 0.5) * tile
                by = (b[1] + 0.5) * tile
                parts.append(
                    f'<line x1="{ax:.1f}" y1="{ay:.1f}" x2="{bx:.1f}" '
                    f'y2="{by:.1f}" stroke="{_WIRE_COLOR}" stroke-width="0.8"/>'
                )
        parts.append("</g>")

    parts.append("</svg>")
    return "\n".join(parts)


def write_packing_svg(
    stream: TextIO,
    packing: PackingResult,
    routing: Optional[RoutingResult] = None,
    scale: float = 4.0,
    title: str = "",
) -> None:
    """Write :func:`render_packing_svg` output to ``stream``."""
    stream.write(render_packing_svg(packing, routing, scale=scale, title=title))
