"""Flow-as-a-service HTTP server (stdlib only).

One :class:`ReproServer` owns three cooperating parts:

* a :class:`~repro.serve.queue.JobQueue` (persistent, coalescing),
* an :class:`Executor` — a bounded pool of in-process worker threads
  that drive the existing flow (``run_design`` / ``run_cells``) with the
  cancellation and progress hooks added for this subsystem,
* a ``ThreadingHTTPServer`` exposing the REST API:

  ====== ============================= =================================
  POST   /v1/jobs                      submit (400 invalid, 429 full,
                                       503 draining)
  GET    /v1/jobs                      list job summaries
  GET    /v1/jobs/{id}                 status + result JSON
  GET    /v1/jobs/{id}/events          progress stream (long-poll with
                                       ``since`` / ``wait`` params)
  DELETE /v1/jobs/{id}                 cancel (queued: immediate;
                                       running: next stage boundary)
  GET    /v1/healthz                   liveness + queue counters
  GET    /v1/metrics                   Prometheus exposition
  ====== ============================= =================================

**Graceful drain** (SIGTERM/SIGINT through :func:`run_server`, or
:meth:`ReproServer.drain` in-process): stop admitting (503), interrupt
running jobs at their next stage boundary, checkpoint them back to the
queue — their completed stages are in the content-addressed stage
cache, so a restarted server (same queue root) resumes them warm — then
exit 0.

Wall-clock reads here are intentional (timestamps and deadlines are a
job server's business) — the determinism linter exempts ``serve``
alongside ``obs``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from ..obs.export import prometheus_text
from ..obs.journal import tail_journal
from ..obs.metrics import Metrics
from .jobs import Job, JobSpec, derive_request_key
from .queue import JobQueue, QueueFull

DEFAULT_PORT = 8157

#: Executor threads run full flow stages in-process; synthesis recursion
#: needs more than the default thread stack (the CLI main thread gets a
#: large stack from the OS, worker threads must ask for one).
_THREAD_STACK_BYTES = 512 * 1024 * 1024

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_-]+)(/events)?$")

_MAX_BODY_BYTES = 1 << 20


def default_queue_dir() -> Path:
    """``$REPRO_QUEUE_DIR`` or ``<cache root>/serve``."""
    override = os.environ.get("REPRO_QUEUE_DIR")
    if override:
        return Path(override).expanduser()
    from ..flow.cache import default_cache_dir

    return default_cache_dir() / "serve"


@dataclass
class ServeConfig:
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: Executor threads (concurrent jobs).
    workers: int = 1
    #: Total subprocess budget shared by running ``tables`` jobs.
    flow_jobs: int = 1
    #: Admission limit on *queued* jobs (0 = reject every submission
    #: that cannot start or coalesce immediately... i.e. always 429s).
    queue_limit: int = 16
    #: Retry-After header value for 429 responses, seconds.
    retry_after: int = 2
    queue_dir: Optional[Path] = None

    def resolved_queue_dir(self) -> Path:
        return Path(self.queue_dir) if self.queue_dir else default_queue_dir()


class _Budget:
    """Counting allocator for the shared subprocess budget."""

    def __init__(self, total: int) -> None:
        self._free = max(0, total)
        self._lock = threading.Lock()

    def acquire(self, want: int) -> int:
        """Grant up to ``want`` workers; 0 means run serially in-thread."""
        with self._lock:
            granted = min(max(0, want), self._free)
            self._free -= granted
            return granted

    def release(self, granted: int) -> None:
        with self._lock:
            self._free += granted


class Executor:
    """Bounded pool of job-executing threads over a :class:`JobQueue`."""

    def __init__(self, queue: JobQueue, config: ServeConfig,
                 metrics: Metrics, metrics_lock: threading.Lock) -> None:
        self.queue = queue
        self.config = config
        self.metrics = metrics
        self._metrics_lock = metrics_lock
        self._budget = _Budget(config.flow_jobs)
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._threads: List[threading.Thread] = []

    def start(self) -> None:
        previous = threading.stack_size()
        try:
            threading.stack_size(_THREAD_STACK_BYTES)
        except (ValueError, RuntimeError):  # platform refuses: keep default
            pass
        try:
            for index in range(max(1, self.config.workers)):
                thread = threading.Thread(
                    target=self._loop, name=f"serve-exec-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        finally:
            try:
                threading.stack_size(previous)
            except (ValueError, RuntimeError):
                pass

    def drain(self) -> None:
        """Stop claiming, checkpoint running jobs, join all threads."""
        self._draining.set()
        self._stop.set()
        for thread in self._threads:
            thread.join()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def _count(self, name: str, n: int = 1) -> None:
        with self._metrics_lock:
            self.metrics.counter(name).inc(n)

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim(timeout=0.2)
            if job is None:
                continue
            self._execute(job)

    # -- one job -------------------------------------------------------

    def _execute(self, job: Job) -> None:
        from ..flow.flow import FlowCancelled
        from ..flow.scheduler import SchedulerInterrupted

        spec = job.spec
        self.queue.emit(job.id, "job.state", id=job.id, state="running",
                        kind=spec.kind)
        self._count("serve.jobs.started")
        deadline = (
            time.monotonic() + spec.timeout_seconds
            if spec.timeout_seconds else None
        )
        timed_out = False

        def should_stop() -> bool:
            nonlocal timed_out
            if job.cancel_requested or self._draining.is_set():
                return True
            if deadline is not None and time.monotonic() > deadline:
                timed_out = True
                return True
            return False

        started = time.monotonic()
        try:
            result = self._run_spec(job, should_stop)
        except (FlowCancelled, SchedulerInterrupted) as exc:
            if timed_out:
                self.queue.fail(
                    job.id,
                    f"timeout after {spec.timeout_seconds}s ({exc})",
                )
                self.queue.emit(job.id, "job.state", id=job.id,
                                state="failed", reason="timeout")
                self._count("serve.jobs.timeout")
            elif self._draining.is_set() and not job.cancel_requested:
                self.queue.requeue(job.id)
                self.queue.emit(job.id, "job.state", id=job.id,
                                state="queued", reason="drain-checkpoint")
                self._count("serve.jobs.checkpointed")
            else:
                self.queue.mark_cancelled(job.id, str(exc))
                self.queue.emit(job.id, "job.state", id=job.id,
                                state="cancelled")
                self._count("serve.jobs.cancelled")
        except Exception:
            self.queue.fail(job.id, traceback.format_exc(limit=20))
            self.queue.emit(job.id, "job.state", id=job.id, state="failed")
            self._count("serve.jobs.failed")
        else:
            self.queue.finish(job.id, result)
            self.queue.emit(job.id, "job.state", id=job.id, state="done",
                            seconds=round(time.monotonic() - started, 6))
            self._count("serve.jobs.done")
            with self._metrics_lock:
                self.metrics.histogram("serve.job.seconds").observe(
                    time.monotonic() - started
                )

    def _run_spec(
        self, job: Job, should_stop: Callable[[], bool]
    ) -> Dict[str, Any]:
        from ..flow.experiments import (
            ARCHES, DESIGNS, Matrix, build_design, run_table1, run_table2,
        )
        from ..flow.flow import run_design
        from ..flow.parallel import run_cells

        spec = job.spec

        def progress(stage: str, cached: bool, seconds: float) -> None:
            self.queue.emit(
                job.id, "job.stage", id=job.id, stage=stage,
                cached=cached, seconds=round(seconds, 6),
            )

        if spec.kind in ("flow", "check"):
            if spec.design is None:  # unreachable past admission
                raise ValueError(f"kind {spec.kind!r} requires a design")
            options = spec.flow_options()
            netlist = build_design(spec.design, spec.scale)
            run = run_design(
                netlist, spec.arch, options,
                cancel=should_stop, progress=progress,
            )
            result: Dict[str, Any] = {"metrics": run.metrics()}
            if spec.kind == "check":
                from ..check import check_design_run

                report = check_design_run(run)
                result["check"] = report.to_json()
            return result

        # tables: the full evaluation matrix as one job.  The shared
        # subprocess budget decides the fan-out; an exhausted budget
        # degrades to the exact serial path, never to a queue stall.
        cells = [(d, a) for d in DESIGNS for a in ARCHES]
        granted = self._budget.acquire(self.config.flow_jobs)
        try:
            runs = run_cells(
                cells, spec.scale, spec.flow_options(),
                jobs=max(1, granted), cancel=should_stop,
            )
        finally:
            self._budget.release(granted)
        matrix = Matrix(runs=runs)
        return {
            "metrics": {
                f"{design}/{arch}": run.metrics()
                for (design, arch), run in runs.items()
            },
            "table1": run_table1(matrix).format(),
            "table2": run_table2(matrix).format(),
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes /v1/* onto the owning :class:`ReproServer`."""

    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        self.server.repro.log(f"{self.address_string()} {format % args}")

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(
            payload, indent=2, sort_keys=True, default=str
        ).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: Optional[Dict[str, str]] = None) -> None:
        self._send_json(status, {"error": message}, headers)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return payload

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parts = urlsplit(self.path)
        repro = self.server.repro
        if parts.path == "/v1/healthz":
            self._send_json(200, repro.health())
            return
        if parts.path == "/v1/metrics":
            self._send_text(200, repro.metrics_text())
            return
        if parts.path == "/v1/jobs":
            jobs = [j.to_dict(with_result=False) for j in repro.queue.jobs()]
            self._send_json(200, {"jobs": jobs})
            return
        match = _JOB_PATH.match(parts.path)
        if match:
            job = repro.queue.get(match.group(1))
            if job is None:
                self._error(404, f"no such job {match.group(1)!r}")
                return
            if match.group(2):  # /events
                query = parse_qs(parts.query)
                since = int(query.get("since", ["0"])[0])
                wait = min(30.0, float(query.get("wait", ["0"])[0]))
                self._send_json(200, repro.events(job, since, wait))
                return
            self._send_json(200, job.to_dict())
            return
        self._error(404, f"no route for GET {parts.path}")

    def do_POST(self) -> None:  # noqa: N802
        parts = urlsplit(self.path)
        repro = self.server.repro
        if parts.path != "/v1/jobs":
            self._error(404, f"no route for POST {parts.path}")
            return
        if repro.draining:
            self._error(503, "server is draining; resubmit after restart")
            return
        payload = self._read_body()
        if payload is None:
            return
        try:
            spec = JobSpec.from_payload(payload)
            key = derive_request_key(spec)
        except ValueError as exc:
            self._error(400, str(exc))
            return
        try:
            job = repro.queue.submit(spec, key)
        except QueueFull as exc:
            repro.count("serve.jobs.rejected")
            self._error(
                429, str(exc),
                headers={"Retry-After": str(repro.config.retry_after)},
            )
            return
        repro.count("serve.jobs.submitted")
        if job.coalesced_into:
            repro.count("serve.jobs.coalesced")
        self._send_json(201, {
            "id": job.id,
            "key": job.key,
            "state": job.state,
            "coalesced_into": job.coalesced_into,
        })

    def do_DELETE(self) -> None:  # noqa: N802
        parts = urlsplit(self.path)
        repro = self.server.repro
        match = _JOB_PATH.match(parts.path)
        if not match or match.group(2):
            self._error(404, f"no route for DELETE {parts.path}")
            return
        state = repro.queue.cancel(match.group(1))
        if state is None:
            self._error(404, f"no such job {match.group(1)!r}")
            return
        repro.count("serve.jobs.cancel_requests")
        self._send_json(200, {"id": match.group(1), "state": state})


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    repro: "ReproServer"


class ReproServer:
    """The assembled service: queue + executor + HTTP front end."""

    def __init__(self, config: ServeConfig,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.config = config
        self.queue = JobQueue(
            config.resolved_queue_dir(), limit=config.queue_limit
        )
        self.metrics = Metrics()
        self._metrics_lock = threading.Lock()
        self.executor = Executor(
            self.queue, config, self.metrics, self._metrics_lock
        )
        self._log = log or (lambda message: None)
        self._started_at = time.time()
        self._drained = threading.Event()
        self.httpd = _HTTPServer((config.host, config.port), _Handler)
        self.httpd.repro = self

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        return int(self.httpd.server_address[1])

    @property
    def draining(self) -> bool:
        return self.executor.draining

    def start(self) -> None:
        """Start executor threads and the HTTP accept thread."""
        self.executor.start()
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever, name="serve-http", daemon=True
        )
        self._http_thread.start()

    def serve_forever(self) -> None:
        """Run the HTTP loop on the calling thread (CLI path)."""
        self.executor.start()
        try:
            self.httpd.serve_forever()
        finally:
            self.httpd.server_close()

    def drain(self) -> None:
        """Stop admitting, checkpoint running jobs, stop the HTTP loop."""
        if self._drained.is_set():
            return
        self.log("drain requested: refusing new jobs")
        self.executor.drain()
        counts = self.queue.counts()
        self.log(f"drain complete: {counts}")
        self.httpd.shutdown()
        self._drained.set()

    def close(self) -> None:
        """In-process shutdown (tests): drain and release the socket."""
        self.drain()
        self.httpd.server_close()

    def log(self, message: str) -> None:
        self._log(message)

    # -- handler support -----------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        with self._metrics_lock:
            self.metrics.counter(name).inc(n)

    def health(self) -> Dict[str, Any]:
        counts = self.queue.counts()
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "queued": self.queue.depth(),
            "running": self.queue.running(),
            "jobs": counts,
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
        }

    def metrics_text(self) -> str:
        with self._metrics_lock:
            self.metrics.gauge("serve.queue.depth").set(self.queue.depth())
            self.metrics.gauge("serve.jobs.running").set(
                self.queue.running()
            )
            self.metrics.gauge("serve.uptime.seconds").set(
                time.time() - self._started_at
            )
            events = self.metrics.snapshot_events(os.getpid(), time.time())
        return prometheus_text(events) + "\n"

    def events(self, job: Job, since: int, wait: float) -> Dict[str, Any]:
        """Tail a job's progress stream, long-polling up to ``wait``."""
        path = self.queue.events_path(job.id)
        deadline = time.monotonic() + max(0.0, wait)
        while True:
            events, offset = tail_journal(path, since)
            current = self.queue.get(job.id)
            state = current.state if current else job.state
            remaining = deadline - time.monotonic()
            if events or remaining <= 0 or (
                current is not None and current.terminal
            ):
                return {
                    "id": job.id,
                    "state": state,
                    "events": events,
                    "next_offset": offset,
                }
            self.queue.wait_for_change(
                lambda: self.queue.events_path(job.id).stat().st_size > since
                if self.queue.events_path(job.id).exists() else False,
                timeout=min(0.25, remaining),
            )


def run_server(
    config: ServeConfig, log: Callable[[str], None]
) -> int:
    """CLI entry: serve until SIGTERM/SIGINT, drain gracefully, exit 0.

    Prints the listening address through ``log`` first, so wrappers
    (tests, CI, scripts) can discover an ephemeral ``--port 0``.
    """
    server = ReproServer(config, log=log)

    def handle(signum: int, _frame: Any) -> None:
        log(f"signal {signal.Signals(signum).name}: draining")
        threading.Thread(target=server.drain, daemon=True).start()

    # Handlers go in before the listening line: a wrapper that signals
    # the instant it sees the port must already get the graceful path.
    previous: Dict[int, Any] = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, handle)
    log(
        f"repro-serve listening on http://{config.host}:{server.port} "
        f"(queue: {server.queue.root}, workers: {config.workers}, "
        f"queue-limit: {config.queue_limit})"
    )
    try:
        server.serve_forever()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    log("repro-serve exited cleanly")
    return 0
