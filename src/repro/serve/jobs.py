"""Job model for the flow-as-a-service subsystem.

A *job* is one client-submitted unit of work: a single-design flow run
(``kind="flow"``), the full paper evaluation matrix (``kind="tables"``),
or a flow run plus the static-verification audit (``kind="check"``).
Specs are plain JSON in and out; validation happens at admission so a
malformed submission is rejected with a 400 before it can occupy queue
space.

Every job carries a **request key**: a sha256 identity derived from the
content-addressed stage-cache key chain
(:func:`repro.flow.flow.request_key`), prefixed by the job kind.  Two
submissions with equal keys are, by the cache's own contract, the same
computation — the queue coalesces them onto one execution and both
submitters receive the result.  Performance knobs (the fields in
:data:`repro.flow.options.PERF_KNOBS`) are excluded from stage keys and
therefore from request keys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from dataclasses import fields as dataclass_fields

from ..flow.cache import StageCache, stable_hash
from ..flow.flow import request_key
from ..flow.options import PERF_KNOBS, FlowOptions

#: Job kinds, in the order the README documents them.
KINDS = ("flow", "tables", "check")

#: Priority classes: lower rank dispatches first.
PRIORITIES: Dict[str, int] = {"high": 0, "normal": 1, "low": 2}

#: Job lifecycle: queued -> running -> done | failed | cancelled.
#: A drained job moves running -> queued (checkpointed; finished stages
#: are in the stage cache, so the rerun resumes warm).
STATES = ("queued", "running", "done", "failed", "cancelled")

TERMINAL_STATES = ("done", "failed", "cancelled")

#: Perf knobs a submission may set anyway.  ``check`` never changes
#: computed results (it only audits stage artifacts and aborts on fatal
#: findings), but whether to pay for the audit is a per-request choice,
#: not server policy — so it is re-admitted here.  Must stay a subset
#: of :data:`repro.flow.options.PERF_KNOBS` (enforced by rule CK004).
_SUBMITTABLE_PERF_KNOBS = ("check",)

#: Flow-option fields a submission may set: every semantic (cache-keyed)
#: field, plus the re-admitted perf knobs above.  Derived from the
#: dataclass and :data:`~repro.flow.options.PERF_KNOBS` so a new
#: FlowOptions field is submittable by default and a new perf knob is
#: excluded by default — no hand-maintained list to drift.  ``arch`` is
#: top-level on the spec (rejecting it here keeps one source of truth).
_SUBMITTABLE_OPTIONS = tuple(sorted(
    ({f.name for f in dataclass_fields(FlowOptions)} - PERF_KNOBS
     - {"arch"})
    | set(_SUBMITTABLE_PERF_KNOBS)
))


def known_designs() -> List[str]:
    from ..designs import DESIGN_BUILDERS

    return sorted(DESIGN_BUILDERS)


@dataclass(frozen=True)
class JobSpec:
    """One validated job submission (the POST /v1/jobs body)."""

    kind: str = "flow"
    design: Optional[str] = None
    arch: str = "granular"
    scale: float = 0.5
    options: Dict[str, Any] = field(default_factory=dict)
    priority: str = "normal"
    timeout_seconds: Optional[float] = None

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Validate a JSON submission; raises ValueError on any defect."""
        if not isinstance(payload, dict):
            raise ValueError("job submission must be a JSON object")
        known = {
            "kind", "design", "arch", "scale", "options", "priority",
            "timeout_seconds",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown field(s) {unknown} (choices: {sorted(known)})"
            )
        kind = payload.get("kind", "flow")
        if kind not in KINDS:
            raise ValueError(f"unknown kind {kind!r} (choices: {KINDS})")
        design = payload.get("design")
        if kind == "tables":
            if design is not None:
                raise ValueError(
                    "kind 'tables' runs the full matrix; drop 'design'"
                )
        else:
            if design not in known_designs():
                raise ValueError(
                    f"unknown design {design!r} "
                    f"(choices: {known_designs()})"
                )
        arch = payload.get("arch", "granular")
        if arch not in ("lut", "granular"):
            raise ValueError(
                f"unknown arch {arch!r} (choices: ['granular', 'lut'])"
            )
        try:
            scale = float(payload.get("scale", 0.5))
        except (TypeError, ValueError):
            raise ValueError("scale must be a number") from None
        if not 0.0 < scale <= 4.0:
            raise ValueError(f"scale {scale} out of range (0, 4]")
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ValueError("options must be a JSON object")
        bad = sorted(set(options) - set(_SUBMITTABLE_OPTIONS))
        if bad:
            raise ValueError(
                f"unsubmittable option(s) {bad} "
                f"(choices: {sorted(_SUBMITTABLE_OPTIONS)})"
            )
        priority = payload.get("priority", "normal")
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r} "
                f"(choices: {sorted(PRIORITIES)})"
            )
        timeout = payload.get("timeout_seconds")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise ValueError("timeout_seconds must be a number") from None
            if timeout <= 0:
                raise ValueError("timeout_seconds must be positive")
        return cls(
            kind=kind, design=design, arch=arch, scale=scale,
            options=dict(options), priority=priority,
            timeout_seconds=timeout,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "design": self.design,
            "arch": self.arch,
            "scale": self.scale,
            "options": dict(self.options),
            "priority": self.priority,
            "timeout_seconds": self.timeout_seconds,
        }

    def flow_options(self, arch: Optional[str] = None) -> FlowOptions:
        """The effective FlowOptions for this spec (validated fields)."""
        options = FlowOptions.from_dict(dict(self.options))
        return replace(options, arch=arch or self.arch)


def derive_request_key(spec: JobSpec) -> str:
    """The coalescing identity of one submission.

    Chained from the stage-cache keys, so it changes exactly when any
    stage of the request would recompute — and never with perf knobs.
    The (never-read) :class:`StageCache` here only supplies ``key()``;
    no cache I/O happens during derivation.
    """
    from ..flow.experiments import ARCHES, DESIGNS, build_design

    cache = StageCache(enabled=False)
    if spec.kind == "tables":
        keys = []
        for design in DESIGNS:
            netlist = build_design(design, spec.scale)
            for arch in ARCHES:
                keys.append(request_key(
                    cache, netlist, spec.flow_options(arch)
                ))
        return stable_hash("tables", *keys)
    if spec.design is None:  # unreachable past admission validation
        raise ValueError(f"kind {spec.kind!r} requires a design")
    netlist = build_design(spec.design, spec.scale)
    return stable_hash(
        spec.kind, request_key(cache, netlist, spec.flow_options())
    )


@dataclass
class Job:
    """One queued/running/finished job and its full lifecycle record."""

    id: str
    seq: int
    spec: JobSpec
    key: str
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Primary job this submission coalesced onto (None = runs itself).
    coalesced_into: Optional[str] = None
    #: Ids of later submissions attached to this (primary) job.
    attached: List[str] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Times this job was checkpointed back to the queue by a drain.
    requeues: int = 0
    #: Set by DELETE while running; the executor cancels at the next
    #: stage boundary.  Never persisted — a restart clears it.
    cancel_requested: bool = False

    @property
    def rank(self) -> int:
        return PRIORITIES[self.spec.priority]

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, with_result: bool = True) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "id": self.id,
            "seq": self.seq,
            "spec": self.spec.to_dict(),
            "key": self.key,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "coalesced_into": self.coalesced_into,
            "attached": list(self.attached),
            "requeues": self.requeues,
            "error": self.error,
        }
        if with_result:
            doc["result"] = self.result
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Job":
        return cls(
            id=doc["id"],
            seq=doc["seq"],
            spec=JobSpec.from_payload(doc["spec"]),
            key=doc["key"],
            state=doc.get("state", "queued"),
            submitted_at=doc.get("submitted_at", 0.0),
            started_at=doc.get("started_at"),
            finished_at=doc.get("finished_at"),
            coalesced_into=doc.get("coalesced_into"),
            attached=list(doc.get("attached") or []),
            result=doc.get("result"),
            error=doc.get("error"),
            requeues=doc.get("requeues", 0),
        )


def job_id_for(seq: int, key: str) -> str:
    """Stable, human-scannable job ids: sequence plus key prefix."""
    return f"j{seq:05d}-{key[:10]}"
