"""Persistent job queue with priority classes and request coalescing.

The queue is a priority heap (priority rank, then submission order) in
front of a JSONL journal.  Every mutation — submission, state change,
result — appends one line to ``queue.jsonl`` under the queue root, so a
server restart replays the journal and resumes exactly where it left
off: terminal jobs keep their results, queued jobs stay queued, and jobs
that were *running* when the process died go back to queued (their
finished stages live in the content-addressed stage cache, so the rerun
resumes warm).

**Coalescing**: a submission whose request key matches a queued or
running job does not enqueue a second execution.  It becomes an
*attached* job — a full record with its own id — that receives a copy
of the primary's result (or error) the moment the primary finishes.

Progress events stream through per-job files under ``events/<id>.jsonl``
in the obs journal format, tailed incrementally by the
``/v1/jobs/{id}/events`` endpoint via
:func:`repro.obs.journal.tail_journal`.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .jobs import Job, JobSpec, job_id_for


class QueueFull(RuntimeError):
    """Admission control: queue depth is at the configured limit."""

    def __init__(self, depth: int, limit: int, retry_after: int = 2) -> None:
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after
        super().__init__(
            f"queue full: {depth} job(s) queued, limit {limit}"
        )


class JobQueue:
    """Thread-safe persistent priority queue of :class:`Job` records."""

    def __init__(self, root: Path, limit: int = 16) -> None:
        self.root = Path(root)
        self.limit = limit
        self.root.mkdir(parents=True, exist_ok=True)
        self.events_dir = self.root / "events"
        self.events_dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / "queue.jsonl"
        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        #: (rank, seq) heap of job ids awaiting a worker.
        self._heap: List[Tuple[int, int, str]] = []
        #: request key -> id of the non-terminal primary for that key.
        self._by_key: Dict[str, str] = {}
        self._seq = 0
        self._replay()

    # -- persistence ---------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        """Append one journal line (caller holds the lock).

        Writing under the lock is deliberate: journal order must equal
        state-mutation order or a replay reconstructs a different
        queue.  The cost is bounded (one line + fsync) and admission
        control bounds the rate.
        """
        with self.journal_path.open("a", encoding="utf-8") as handle:  # check: allow(CC002)
            handle.write(json.dumps(record, sort_keys=True, default=str))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())  # check: allow(CC002)

    def _replay(self) -> None:
        """Rebuild queue state from the journal (startup only)."""
        if not self.journal_path.exists():
            return
        with self.journal_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final write from a killed server
                self._replay_record(record)
        # Jobs that were running when the previous server died resume
        # from the queue; their completed stages replay from the cache.
        for job in self._jobs.values():
            if job.state == "running":
                job.state = "queued"
                job.started_at = None
                job.requeues += 1
        for job in sorted(self._jobs.values(), key=lambda j: j.seq):
            if job.state == "queued" and job.coalesced_into is None:
                heapq.heappush(self._heap, (job.rank, job.seq, job.id))
            if not job.terminal:
                primary = job.coalesced_into or job.id
                self._by_key.setdefault(job.key, primary)

    def _replay_record(self, record: Dict[str, Any]) -> None:
        kind = record.get("rec")
        if kind == "submit":
            try:
                job = Job.from_dict(record["job"])
            except (KeyError, ValueError):
                return
            self._jobs[job.id] = job
            self._seq = max(self._seq, job.seq + 1)
            if job.coalesced_into is not None:
                primary = self._jobs.get(job.coalesced_into)
                if primary is not None and job.id not in primary.attached:
                    primary.attached.append(job.id)
        elif kind == "state":
            job = self._jobs.get(record.get("id", ""))
            if job is None:
                return
            job.state = record.get("state", job.state)
            for attr in ("started_at", "finished_at", "error"):
                if record.get(attr) is not None:
                    setattr(job, attr, record[attr])
            if record.get("result") is not None:
                job.result = record["result"]

    def _persist_state(self, job: Job, with_result: bool = False) -> None:
        record: Dict[str, Any] = {
            "rec": "state",
            "id": job.id,
            "state": job.state,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "error": job.error,
        }
        if with_result:
            record["result"] = job.result
        self._append(record)

    # -- submission / coalescing ---------------------------------------

    def submit(self, spec: JobSpec, key: str) -> Job:
        """Admit one job; may coalesce onto an active identical request.

        Raises :class:`QueueFull` when the number of *queued* primaries
        is at the limit (running jobs don't count — the queue, not the
        execution capacity, is what admission protects).  A coalesced
        submission always fits: it occupies no queue slot.
        """
        with self._cond:
            primary_id = self._by_key.get(key)
            primary = self._jobs.get(primary_id) if primary_id else None
            if primary is not None and primary.terminal:
                primary = None
            if primary is None and len(self._heap) >= self.limit:
                raise QueueFull(len(self._heap), self.limit)
            seq = self._seq
            self._seq += 1
            job = Job(id=job_id_for(seq, key), seq=seq, spec=spec, key=key)
            if primary is not None:
                job.coalesced_into = primary.id
                job.state = primary.state if not primary.terminal else "queued"
                primary.attached.append(job.id)
            else:
                self._by_key[key] = job.id
                heapq.heappush(self._heap, (job.rank, job.seq, job.id))
            self._jobs[job.id] = job
            self._append({"rec": "submit", "job": job.to_dict()})
            self._cond.notify_all()
            return job

    # -- worker side ---------------------------------------------------

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the highest-priority queued job and mark it running.

        Blocks up to ``timeout`` seconds for work; returns None on
        timeout so executor loops can poll their stop flag.
        """
        with self._cond:
            # wait_for re-checks the predicate in a loop, so a spurious
            # wakeup (or a wakeup for a job another worker claims first)
            # goes back to sleep for the remaining timeout instead of
            # returning None early.
            self._cond.wait_for(lambda: bool(self._heap), timeout)
            while self._heap:
                _rank, _seq, job_id = heapq.heappop(self._heap)
                job = self._jobs[job_id]
                if job.state != "queued":
                    continue  # cancelled while queued
                job.state = "running"
                job.started_at = time.time()
                self._persist_state(job)
                self._propagate_state(job)
                self._cond.notify_all()
                return job
            return None

    def finish(self, job_id: str, result: Dict[str, Any]) -> None:
        self._finalize(job_id, "done", result=result)

    def fail(self, job_id: str, error: str) -> None:
        self._finalize(job_id, "failed", error=error)

    def mark_cancelled(self, job_id: str, error: str) -> None:
        """Executor-side completion of a running job's cancellation."""
        self._finalize(job_id, "cancelled", error=error)

    def _finalize(
        self,
        job_id: str,
        state: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        with self._cond:
            job = self._jobs[job_id]
            job.state = state
            job.finished_at = time.time()
            job.result = result
            job.error = error
            self._persist_state(job, with_result=result is not None)
            if self._by_key.get(job.key) == job.id:
                del self._by_key[job.key]
            self._propagate_state(job)
            self._cond.notify_all()

    def _propagate_state(self, primary: Job) -> None:
        """Mirror a primary's progress onto its attached jobs.

        Caller holds the lock.  Attached jobs that were individually
        cancelled keep their cancelled state and never see the result.
        """
        for attached_id in primary.attached:
            attached = self._jobs.get(attached_id)
            if attached is None or attached.state == "cancelled":
                continue
            attached.state = primary.state
            attached.started_at = primary.started_at
            attached.finished_at = primary.finished_at
            attached.result = primary.result
            attached.error = primary.error
            self._persist_state(
                attached, with_result=primary.result is not None
            )

    def requeue(self, job_id: str) -> None:
        """Checkpoint a running job back to queued (drain path)."""
        with self._cond:
            job = self._jobs[job_id]
            job.state = "queued"
            job.started_at = None
            job.requeues += 1
            heapq.heappush(self._heap, (job.rank, job.seq, job.id))
            self._persist_state(job)
            self._propagate_state(job)
            self._cond.notify_all()

    def cancel(self, job_id: str) -> Optional[str]:
        """Request cancellation; returns the resulting state.

        A queued job cancels immediately.  A running job gets its
        ``cancel_requested`` flag set — the executor interrupts it at
        the next stage boundary — and reports ``"cancelling"``.  A
        coalesced job detaches alone; the primary keeps running for the
        other submitters.  Returns None for unknown ids, and the
        terminal state unchanged for already-finished jobs.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.terminal:
                return job.state
            if job.coalesced_into is not None or job.state == "queued":
                job.state = "cancelled"
                job.finished_at = time.time()
                self._persist_state(job)
                if self._by_key.get(job.key) == job.id:
                    del self._by_key[job.key]
                self._propagate_state(job)
                self._cond.notify_all()
                return "cancelled"
            job.cancel_requested = True
            self._cond.notify_all()
            return "cancelling"

    # -- introspection -------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def depth(self) -> int:
        """Queued primaries awaiting a worker (the admission metric)."""
        with self._cond:
            return sum(
                1 for _r, _s, job_id in self._heap
                if self._jobs[job_id].state == "queued"
            )

    def running(self) -> int:
        with self._cond:
            return sum(
                1 for job in self._jobs.values()
                if job.state == "running" and job.coalesced_into is None
            )

    def counts(self) -> Dict[str, int]:
        with self._cond:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def wait_for_change(
        self, predicate: Callable[[], bool], timeout: float
    ) -> bool:
        """Block until ``predicate()`` or timeout (long-poll support)."""
        with self._cond:
            return self._cond.wait_for(predicate, timeout)

    # -- progress events -----------------------------------------------

    def events_path(self, job_id: str) -> Path:
        """The progress stream for a job (a coalesced job follows its
        primary's stream — there is only one execution to report)."""
        job = self.get(job_id)
        if job is not None and job.coalesced_into is not None:
            job_id = job.coalesced_into
        return self.events_dir / f"{job_id}.jsonl"

    def emit(self, job_id: str, name: str, **attrs: Any) -> None:
        """Append one obs-format point to a job's progress stream."""
        event = {
            "ev": "point",
            "name": name,
            "pid": os.getpid(),
            "ts": time.time(),
            "attrs": attrs,
        }
        path = self.events_dir / f"{job_id}.jsonl"
        # The executor thread running the job is the only writer of its
        # stream, so the append needs no lock — holding the queue
        # condition across disk I/O would stall every submit/claim for
        # the duration of the write.  The condition is taken only to
        # wake long-pollers once the line is durable.
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, sort_keys=True, default=str))
            handle.write("\n")
        with self._cond:
            self._cond.notify_all()
