"""Flow-as-a-service: a stdlib-only job server over the repro flow.

``repro serve`` runs the daemon; ``repro submit`` / ``repro jobs`` are
the CLI clients; :class:`~repro.serve.client.ServeClient` is the
library interface.  DESIGN.md §9 documents the architecture (REST API,
persistent coalescing queue, bounded executor, graceful drain).
"""

from .client import ServeClient, ServeError
from .jobs import KINDS, PRIORITIES, Job, JobSpec, derive_request_key
from .queue import JobQueue, QueueFull
from .server import (
    DEFAULT_PORT,
    Executor,
    ReproServer,
    ServeConfig,
    default_queue_dir,
    run_server,
)

__all__ = [
    "DEFAULT_PORT",
    "Executor",
    "Job",
    "JobQueue",
    "JobSpec",
    "KINDS",
    "PRIORITIES",
    "QueueFull",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "default_queue_dir",
    "derive_request_key",
    "run_server",
]
