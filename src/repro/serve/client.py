"""Thin urllib client for the repro job server.

Used by the ``repro submit`` / ``repro jobs`` CLI subcommands,
``examples/serve_sweep.py``, and the test suite.  Zero dependencies —
``urllib.request`` plus JSON — so any machine that can run the flow can
also talk to a server.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, cast


class ServeError(RuntimeError):
    """An HTTP-level failure, carrying the status and decoded body."""

    def __init__(self, status: int, payload: Any, url: str) -> None:
        self.status = status
        self.payload = payload
        self.url = url
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status} from {url}: {detail}")

    @property
    def retry_after(self) -> Optional[int]:
        if isinstance(self.payload, dict):
            value = self.payload.get("retry_after")
            if isinstance(value, int):
                return value
        return None


class ServeClient:
    """Synchronous client bound to one server base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                return self._decode(response)
        except urllib.error.HTTPError as exc:
            body = self._decode(exc)
            retry_after = exc.headers.get("Retry-After")
            if isinstance(body, dict) and retry_after is not None:
                body = dict(body, retry_after=int(retry_after))
            raise ServeError(exc.code, body, url) from None
        except urllib.error.URLError as exc:
            raise ServeError(0, {"error": str(exc.reason)}, url) from None

    @staticmethod
    def _decode(response: Any) -> Any:
        raw = response.read()
        content_type = response.headers.get("Content-Type", "")
        text = raw.decode("utf-8", errors="replace")
        if "json" in content_type:
            try:
                return json.loads(text)
            except json.JSONDecodeError:
                return text
        return text

    # -- API -----------------------------------------------------------

    def submit(
        self,
        kind: str = "flow",
        design: Optional[str] = None,
        arch: str = "granular",
        scale: float = 0.5,
        options: Optional[Dict[str, Any]] = None,
        priority: str = "normal",
        timeout_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": kind, "arch": arch, "scale": scale,
            "options": options or {}, "priority": priority,
        }
        if design is not None:
            payload["design"] = design
        if timeout_seconds is not None:
            payload["timeout_seconds"] = timeout_seconds
        return cast(
            Dict[str, Any], self._request("POST", "/v1/jobs", payload)
        )

    def job(self, job_id: str) -> Dict[str, Any]:
        return cast(
            Dict[str, Any], self._request("GET", f"/v1/jobs/{job_id}")
        )

    def jobs(self) -> List[Dict[str, Any]]:
        return cast(
            List[Dict[str, Any]],
            self._request("GET", "/v1/jobs")["jobs"],
        )

    def events(
        self, job_id: str, since: int = 0, wait: float = 0.0
    ) -> Dict[str, Any]:
        return cast(Dict[str, Any], self._request(
            "GET",
            f"/v1/jobs/{job_id}/events?since={since}&wait={wait}",
            timeout=max(self.timeout, wait + 10.0),
        ))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return cast(
            Dict[str, Any], self._request("DELETE", f"/v1/jobs/{job_id}")
        )

    def healthz(self) -> Dict[str, Any]:
        return cast(Dict[str, Any], self._request("GET", "/v1/healthz"))

    def metrics_text(self) -> str:
        return cast(str, self._request("GET", "/v1/metrics"))

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll: float = 5.0,
        on_event: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Block until the job is terminal; returns its full record.

        Progress is consumed through the long-poll events endpoint (so
        waiting is mostly server-side, not a client spin); ``on_event``
        receives each progress event as it arrives.
        """
        deadline = time.monotonic() + timeout if timeout else None
        offset = 0
        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still not terminal after {timeout}s"
                )
            chunk = self.events(job_id, since=offset, wait=poll)
            offset = chunk["next_offset"]
            if on_event is not None:
                for event in chunk["events"]:
                    on_event(event)
            if chunk["state"] in ("done", "failed", "cancelled"):
                return self.job(job_id)
