"""Granularity exploration over arbitrary PLB architectures.

The paper's conclusion calls for exploring PLB composition (mix of WI-NAND
gates, XOR-capable MUXes, and flip-flop ratio) per application domain.
:class:`GranularityExplorer` provides that study as an API: define a
candidate PLB from component slots, and get architecture-level metrics —
area, 3-input function coverage without a LUT, full-adder packability, and
an intrinsic-delay profile — plus a ranking across candidates.

This powers the ablation benchmark (``bench_ablation_granularity``) and the
``granularity_exploration.py`` example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cells.celltypes import CellType, make_dff, make_lut3, make_mux2, make_nd3wi, make_xoa
from ..cells.characterize import characterize_cell
from ..logic.truthtable import TruthTable, all_functions
from .configs import granular_configs, lut_arch_configs
from .plb import PLBArchitecture, granular_plb, lut_plb

#: Reference load (unit-inverter loads) for intrinsic-delay comparisons.
REFERENCE_LOAD = 4.0


@dataclass(frozen=True)
class CandidatePLB:
    """A candidate architecture for exploration.

    ``slots`` maps component cell names to per-PLB counts; components may
    be any of LUT3 / ND3WI / MUX2 / XOA / DFF.
    """

    name: str
    slots: Mapping[str, int]

    def component_cells(self) -> Dict[str, CellType]:
        makers = {
            "LUT3": make_lut3,
            "ND3WI": make_nd3wi,
            "MUX2": make_mux2,
            "XOA": make_xoa,
            "DFF": make_dff,
        }
        cells = {}
        for slot in self.slots:
            if slot not in makers:
                raise ValueError(f"unknown component {slot!r}")
            cells[slot] = makers[slot]()
        return cells


@dataclass(frozen=True)
class ArchitectureMetrics:
    """Evaluation of one candidate PLB."""

    name: str
    combinational_area: float
    total_area: float
    mux_count: int
    nand_count: int
    lut_count: int
    dff_count: int
    #: 3-input functions implementable without using a LUT slot.
    lut_free_coverage: int
    #: 3-input functions implementable at all within one PLB.
    total_coverage: int
    #: Whether one PLB fits a full adder (sum + carry).
    full_adder_in_one_plb: bool
    #: Mean intrinsic delay (ns at the reference load) over all 256
    #: 3-input functions, using the fastest covering structure.
    mean_function_delay: float
    #: DFF area share — the Firewire axis of the paper's conclusion.
    sequential_fraction: float


def _config_delay(config_levels: int, base_delay: float) -> float:
    return config_levels * base_delay


class GranularityExplorer:
    """Evaluate and rank candidate PLB architectures."""

    def __init__(self, reference_load: float = REFERENCE_LOAD):
        self.reference_load = reference_load

    # ------------------------------------------------------------------
    def evaluate(self, candidate: CandidatePLB) -> ArchitectureMetrics:
        cells = candidate.component_cells()
        slots = dict(candidate.slots)
        mux_total = slots.get("MUX2", 0) + slots.get("XOA", 0)
        nand_total = slots.get("ND3WI", 0)
        lut_total = slots.get("LUT3", 0)
        dff_total = slots.get("DFF", 0)

        comb_area = sum(
            cells[s].area * n for s, n in slots.items() if not cells[s].is_sequential
        )
        seq_area = sum(
            cells[s].area * n for s, n in slots.items() if cells[s].is_sequential
        )

        structures = self._structures(mux_total, nand_total, lut_total)
        lut_free = set()
        total_cover = set()
        delays: Dict[int, float] = {}
        for functions, uses_lut, delay in structures:
            for table in functions:
                total_cover.add(table.mask)
                if not uses_lut:
                    lut_free.add(table.mask)
                if table.mask not in delays or delay < delays[table.mask]:
                    delays[table.mask] = delay

        covered_delays = [delays[t.mask] for t in all_functions(3) if t.mask in delays]
        mean_delay = sum(covered_delays) / len(covered_delays) if covered_delays else float("inf")

        return ArchitectureMetrics(
            name=candidate.name,
            combinational_area=comb_area,
            total_area=comb_area + seq_area,
            mux_count=mux_total,
            nand_count=nand_total,
            lut_count=lut_total,
            dff_count=dff_total,
            lut_free_coverage=len(lut_free),
            total_coverage=len(total_cover),
            full_adder_in_one_plb=self._fits_full_adder(mux_total, nand_total, lut_total),
            mean_function_delay=mean_delay,
            sequential_fraction=seq_area / (comb_area + seq_area) if comb_area + seq_area else 0.0,
        )

    # ------------------------------------------------------------------
    def _structures(
        self, muxes: int, nands: int, luts: int
    ) -> List[Tuple[Iterable[TruthTable], bool, float]]:
        """(function set, uses_lut, delay-at-reference-load) tuples."""
        mux_delay = characterize_cell(make_mux2()).delay(self.reference_load)
        nd3_delay = characterize_cell(make_nd3wi()).delay(self.reference_load)
        lut_delay = characterize_cell(make_lut3()).delay(self.reference_load)

        by_name = {c.name: c for c in granular_configs()}
        structures: List[Tuple[Iterable[TruthTable], bool, float]] = []
        if nands >= 1:
            structures.append((by_name["ND3"].functions, False, nd3_delay))
        if muxes >= 1:
            structures.append((by_name["MX"].functions, False, mux_delay))
        if muxes >= 1 and nands >= 1:
            structures.append((by_name["NDMX"].functions, False, nd3_delay + mux_delay))
        if muxes >= 2:
            structures.append((by_name["XOAMX"].functions, False, 2 * mux_delay))
        if muxes >= 2 and nands >= 1:
            structures.append(
                (by_name["XOANDMX"].functions, False, nd3_delay + 2 * mux_delay)
            )
        if luts >= 1:
            lut_cfg = [c for c in lut_arch_configs() if c.name == "LUT3"][0]
            structures.append((lut_cfg.functions, True, lut_delay))
        return structures

    def _fits_full_adder(self, muxes: int, nands: int, luts: int) -> bool:
        """Full adder needs 3 muxes + 1 nand (the paper's packing), or two
        LUT-capable slots."""
        if muxes >= 3 and nands >= 1:
            return True
        return luts >= 2

    # ------------------------------------------------------------------
    def functions_per_plb(
        self,
        candidate: CandidatePLB,
        mix: Optional[Dict[str, float]] = None,
    ) -> float:
        """Expected 3-input functions one PLB packs for a function mix.

        ``mix`` gives fractions per function class: ``and_type`` (fits a
        WI-NAND gate), ``mux_type`` (fits one mux), ``other`` (needs a LUT
        or a multi-mux composite).  The default mix reflects the prior-work
        profiling the paper builds on ([6], [7]): LUT-mapped designs are
        dominated by simple AND/NAND/OR/NOR-type functions.
        """
        mix = mix or DEFAULT_FUNCTION_MIX
        slots = dict(candidate.slots)
        muxes = slots.get("MUX2", 0) + slots.get("XOA", 0)
        nands = slots.get("ND3WI", 0)
        luts = slots.get("LUT3", 0)

        # Per packed function, the slot demand by class (greedy: AND-type
        # prefers NAND slots, mux-type prefers mux slots, "other" needs a
        # LUT or two muxes).
        best = 0.0
        n = 1
        while True:
            need_nand = n * mix["and_type"]
            need_mux = n * mix["mux_type"]
            need_other = n * mix["other"]
            # Place "other": LUTs first, then two muxes each.
            lut_used = min(luts, need_other)
            mux_for_other = 2.0 * (need_other - lut_used)
            # Place mux-type: mux slots, then LUTs.
            mux_used = need_mux + mux_for_other
            # AND-type: NAND slots, overflow to muxes or LUTs.
            nand_used = min(nands, need_nand)
            overflow = need_nand - nand_used
            mux_used += overflow
            feasible = (
                mux_used <= muxes + max(0, luts - lut_used)
                and lut_used <= luts
                and need_other - lut_used <= muxes / 2.0 + 1e-9
            )
            if feasible:
                best = float(n)
                n += 1
                if n > 64:
                    break
            else:
                break
        return best

    def rank(
        self,
        candidates: Sequence[CandidatePLB],
        datapath_weight: float = 0.5,
    ) -> List[Tuple[CandidatePLB, ArchitectureMetrics, float]]:
        """Rank candidates by area-per-packed-function x mean delay.

        Lower is better.  Density (functions per PLB under the default
        mix) is the paper's packing-efficiency argument; incomplete
        3-input coverage is penalized, and single-PLB full-adder packing
        earns a bonus scaled by ``datapath_weight`` (datapath designs are
        adder-rich).
        """
        scored = []
        for candidate in candidates:
            metrics = self.evaluate(candidate)
            density = max(0.25, self.functions_per_plb(candidate))
            penalty = 4.0 if metrics.total_coverage < 256 else 1.0
            adder_bonus = (
                1.0 - 0.25 * datapath_weight
                if metrics.full_adder_in_one_plb
                else 1.0
            )
            area = metrics.total_area + plb_interconnect_overhead(candidate)
            score = (
                (area / density) * metrics.mean_function_delay * penalty * adder_bonus
            )
            scored.append((candidate, metrics, score))
        scored.sort(key=lambda item: item[2])
        return scored


#: Function-class mix from the prior-work profiling the paper cites.
DEFAULT_FUNCTION_MIX = {"and_type": 0.55, "mux_type": 0.25, "other": 0.20}

#: Interconnect-overhead model fitted to the paper's two published PLB
#: ratios: overhead = ALPHA * (comb component count) ** GAMMA.  Captures
#: the superlinear cost of configurability ("greater configurability only
#: results in an increase in potential via sites").
OVERHEAD_ALPHA = 0.0977
OVERHEAD_GAMMA = 4.11


def plb_interconnect_overhead(candidate: CandidatePLB) -> float:
    """Local-interconnect area overhead for a candidate PLB (um^2)."""
    comb = sum(
        count
        for slot, count in candidate.slots.items()
        if slot in ("LUT3", "ND3WI", "MUX2", "XOA")
    )
    return OVERHEAD_ALPHA * comb ** OVERHEAD_GAMMA


def paper_candidates() -> Tuple[CandidatePLB, ...]:
    """The paper's two architectures plus nearby design points."""
    return (
        CandidatePLB("lut_plb", {"LUT3": 1, "ND3WI": 2, "DFF": 1}),
        CandidatePLB("granular_plb", {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 1}),
        CandidatePLB("mux_only", {"MUX2": 3, "XOA": 1, "DFF": 1}),
        CandidatePLB("nand_heavy", {"MUX2": 1, "XOA": 1, "ND3WI": 3, "DFF": 1}),
        CandidatePLB("seq_heavy", {"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 2}),
        CandidatePLB("lut_plus_mux", {"LUT3": 1, "MUX2": 1, "ND3WI": 1, "DFF": 1}),
    )


def paper_architectures() -> Tuple[PLBArchitecture, PLBArchitecture]:
    """(lut, granular) — the two architectures the paper compares."""
    return lut_plb(), granular_plb()
