"""The paper's primary contribution: PLB granularity analysis.

Section 2 of the paper, as executable code: the 3-input function analysis,
the S3 structure and its five infeasible categories (Figure 2), the
modified S3 cell (Figure 3), the two PLB architectures (Figures 1 and 4),
the granular logic configurations (Section 2.3), the full-adder packing
argument (Section 2.2), the 3-LUT-to-three-MUX split (Figure 5), and a
granularity explorer for arbitrary candidate PLBs.
"""

from .functions3 import (
    SELECT_INDEX,
    cofactors_about_select,
    from_cofactors,
    is_and_type,
    is_xor_type,
    mux2_implementable_2in,
    mux2_implementable_3in,
    nd2wi_implementable_2in,
    nd3wi_implementable_3in,
)
from .s3 import (
    ModifiedS3Config,
    S3Category,
    category_counts,
    classify_infeasible,
    find_modified_s3_config,
    infeasible_by_category,
    modified_s3_implementable,
    s3_feasible,
    s3_feasible_set,
    s3_infeasible_set,
)
from .configs import (
    LogicConfig,
    best_config,
    coverage_summary,
    granular_configs,
    lut_arch_configs,
    mx_functions,
    nd3_functions,
    ndmx_functions,
    xoamx_functions,
    xoandmx_functions,
)
from .plb import (
    BUFFER_SLOTS,
    COMB_AREA_RATIO,
    PLB_AREA_RATIO,
    PLBArchitecture,
    custom_plb,
    granular_plb,
    interconnect_overhead,
    lut_plb,
)
from .adder import (
    AdderFunctions,
    carry_is_majority,
    carry_nd3wi_feasible,
    granular_configs_for_adder,
    granular_full_adder,
    lut_full_adder,
)
from .lut_decompose import (
    Leaf,
    LUTDecomposition,
    decompose_lut3,
    lut3_as_mux_netlist,
)
from .explorer import (
    ArchitectureMetrics,
    CandidatePLB,
    GranularityExplorer,
    paper_architectures,
    paper_candidates,
)

__all__ = [
    "SELECT_INDEX",
    "cofactors_about_select",
    "from_cofactors",
    "is_and_type",
    "is_xor_type",
    "mux2_implementable_2in",
    "mux2_implementable_3in",
    "nd2wi_implementable_2in",
    "nd3wi_implementable_3in",
    "ModifiedS3Config",
    "S3Category",
    "category_counts",
    "classify_infeasible",
    "find_modified_s3_config",
    "infeasible_by_category",
    "modified_s3_implementable",
    "s3_feasible",
    "s3_feasible_set",
    "s3_infeasible_set",
    "LogicConfig",
    "best_config",
    "coverage_summary",
    "granular_configs",
    "lut_arch_configs",
    "mx_functions",
    "nd3_functions",
    "ndmx_functions",
    "xoamx_functions",
    "xoandmx_functions",
    "BUFFER_SLOTS",
    "COMB_AREA_RATIO",
    "PLB_AREA_RATIO",
    "PLBArchitecture",
    "custom_plb",
    "granular_plb",
    "interconnect_overhead",
    "lut_plb",
    "AdderFunctions",
    "carry_is_majority",
    "carry_nd3wi_feasible",
    "granular_configs_for_adder",
    "granular_full_adder",
    "lut_full_adder",
    "Leaf",
    "LUTDecomposition",
    "decompose_lut3",
    "lut3_as_mux_netlist",
    "ArchitectureMetrics",
    "CandidatePLB",
    "GranularityExplorer",
    "paper_architectures",
    "paper_candidates",
]

from .vias import (
    DesignViaStats,
    PLBViaBudget,
    configured_vias,
    design_via_stats,
    granularity_cost_comparison,
    plb_via_budget,
)

__all__ += [
    "DesignViaStats",
    "PLBViaBudget",
    "configured_vias",
    "design_via_stats",
    "granularity_cost_comparison",
    "plb_via_budget",
]
