"""Configuration-via accounting for via-patterned fabrics.

The paper's central economic argument: "greater configurability only
results in an increase in potential via sites for via-patterned fabrics,
[so] the cost of higher granularity is significantly lower for the VPGA
fabric than for SRAM programmed FPGAs."  This module quantifies that
cost: potential via sites per PLB, configured vias per design, and the
SRAM-bit equivalent an FPGA would need for the same programmability.

Model
-----
* each combinational component needs ``ceil(log2(|feasible set|))``
  function-selection sites (polarity/config vias) plus one via per pin
  for the local input connection;
* the PLB's local interconnect contributes sites proportional to its
  calibrated overhead area (one potential site per
  :data:`SITE_AREA_UM2`);
* an SRAM FPGA pays :data:`SRAM_AREA_RATIO` times more area per
  configuration bit than a potential via site costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from ..netlist.core import Netlist
from .plb import PLBArchitecture

#: Area of one potential via site (um^2) — essentially free in upper metal.
SITE_AREA_UM2 = 0.25
#: Area ratio of an SRAM configuration bit to a potential via site.
SRAM_AREA_RATIO = 20.0


def cell_config_sites(cell) -> int:
    """Function-selection via sites for one component cell."""
    if cell.feasible is None:
        return 1  # a DFF's scan/init option
    return max(1, math.ceil(math.log2(max(2, len(cell.feasible)))))


def cell_total_sites(cell) -> int:
    """Config sites plus one input-connection via per pin (plus output)."""
    return cell_config_sites(cell) + cell.n_inputs + 1


@dataclass(frozen=True)
class PLBViaBudget:
    """Potential via sites of one PLB architecture."""

    arch_name: str
    component_sites: int
    interconnect_sites: int

    @property
    def total(self) -> int:
        return self.component_sites + self.interconnect_sites

    @property
    def sram_equivalent_area(self) -> float:
        """Area an SRAM-programmed block would spend on the same bits."""
        return self.total * SITE_AREA_UM2 * SRAM_AREA_RATIO

    @property
    def via_site_area(self) -> float:
        return self.total * SITE_AREA_UM2


def plb_via_budget(arch: PLBArchitecture) -> PLBViaBudget:
    """Potential via sites for one PLB of ``arch``."""
    component_sites = 0
    for slot, count in arch.slots.items():
        cell = arch.slot_cells[slot]
        component_sites += count * cell_total_sites(cell)
    interconnect_sites = int(
        (arch.comb_overhead + arch.seq_overhead) / SITE_AREA_UM2
    )
    return PLBViaBudget(
        arch_name=arch.name,
        component_sites=component_sites,
        interconnect_sites=interconnect_sites,
    )


@dataclass(frozen=True)
class DesignViaStats:
    """Configured-via statistics for a packed design."""

    design: str
    arch_name: str
    configured_vias: int
    potential_sites: int

    @property
    def utilization(self) -> float:
        if self.potential_sites == 0:
            return 0.0
        return self.configured_vias / self.potential_sites


def configured_vias(netlist: Netlist) -> int:
    """Vias actually placed to configure ``netlist``'s instances.

    Per instance: one via per connected pin (input selection + output),
    plus the function-selection vias implied by its configuration (the
    index of the chosen function within the cell's feasible set, in
    bits).
    """
    total = 0
    for inst in netlist.instances.values():
        total += inst.cell.n_inputs + 1
        total += cell_config_sites(inst.cell)
    return total


def design_via_stats(
    netlist: Netlist, arch: PLBArchitecture, n_plbs: int, design: str = ""
) -> DesignViaStats:
    """Via statistics for a design packed into ``n_plbs`` PLBs."""
    budget = plb_via_budget(arch)
    return DesignViaStats(
        design=design or netlist.name,
        arch_name=arch.name,
        configured_vias=configured_vias(netlist),
        potential_sites=n_plbs * budget.total,
    )


def granularity_cost_comparison() -> Dict[str, Mapping[str, float]]:
    """The paper's cost argument, quantified for both architectures.

    Returns per-architecture: potential sites per PLB, their silicon
    cost, and what the same programmability would cost in SRAM bits —
    demonstrating why heterogeneity is cheap for VPGAs.
    """
    from .plb import granular_plb, lut_plb

    out: Dict[str, Mapping[str, float]] = {}
    for arch in (lut_plb(), granular_plb()):
        budget = plb_via_budget(arch)
        out[arch.name] = {
            "potential_sites": float(budget.total),
            "via_site_area_um2": budget.via_site_area,
            "sram_equivalent_area_um2": budget.sram_equivalent_area,
            "plb_area_um2": arch.area,
            "site_area_fraction": budget.via_site_area / arch.area,
            "sram_area_fraction": budget.sram_equivalent_area / arch.area,
        }
    return out
