"""Logic configurations of the granular PLB (paper Section 2.3).

The higher granularity of the proposed PLB lets several 3-input functions
be implemented with structures that are faster and denser than a 3-LUT.
The paper lists five such configurations:

1. **MX**       — a single 2:1 MUX;
2. **ND3**      — a single ND3WI gate;
3. **NDMX**     — a 2:1 MUX driven by a single ND2WI gate;
4. **XOAMX**    — a 2:1 MUX driven by another 2:1 MUX;
5. **XOANDMX**  — a 2:1 MUX driven by a 2:1 MUX and a ND3WI gate.

Each configuration owns a *function set* (computed by enumeration over its
via-configuration space), a resource footprint in PLB component slots, and
area/delay figures used by compaction to choose the cheapest realization.
The LUT architecture's analogous configurations (LUT3, ND3) are defined
here too so both architectures share one matching interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from ..cells.celltypes import (
    make_lut3,
    make_mux2,
    make_nd2wi,
    make_nd3wi,
    make_xoa,
)
from ..logic.truthtable import TruthTable, all_functions
from .functions3 import (
    literal_sources_3in,
    mux2_implementable_3in,
    nd2wi_sources_3in,
    nd3wi_implementable_3in,
)


@dataclass(frozen=True)
class LogicConfig:
    """One PLB logic configuration.

    ``resources`` maps component-slot names (``MUX2``, ``XOA``, ``ND3WI``,
    ``LUT3``) to the number of slots the configuration occupies in a single
    PLB.  ``levels`` is the logic depth in component cells, used by the
    delay-oriented matcher.
    """

    name: str
    resources: Mapping[str, int]
    functions: FrozenSet[TruthTable]
    area: float
    levels: int

    def implements(self, table: TruthTable) -> bool:
        if table.n_inputs != 3:
            table = table.extend(3) if table.n_inputs < 3 else table
        return table in self.functions


def _mux_over(
    leg_sources: Sequence[TruthTable], other_sources: Sequence[TruthTable]
) -> FrozenSet[TruthTable]:
    """MUX(select-literal; leg, other) over 3-input tables, both orders."""
    selects = [t for t in literal_sources_3in() if not t.is_constant()]
    found = set()
    for s in selects:
        for leg in leg_sources:
            for other in other_sources:
                found.add(TruthTable.mux(s, leg, other))
                found.add(TruthTable.mux(s, other, leg))
    return frozenset(found)


@lru_cache(maxsize=None)
def mx_functions() -> FrozenSet[TruthTable]:
    """Config 1 — a single 2:1 MUX."""
    return mux2_implementable_3in()


@lru_cache(maxsize=None)
def nd3_functions() -> FrozenSet[TruthTable]:
    """Config 2 — a single ND3WI gate."""
    return nd3wi_implementable_3in()


@lru_cache(maxsize=None)
def ndmx_functions() -> FrozenSet[TruthTable]:
    """Config 3 — a 2:1 MUX with one data leg from an ND2WI gate."""
    literals = literal_sources_3in()
    nd_legs = tuple(nd2wi_sources_3in())
    return _mux_over(nd_legs, literals)


@lru_cache(maxsize=None)
def xoamx_functions() -> FrozenSet[TruthTable]:
    """Config 4 — a 2:1 MUX with one data leg from another 2:1 MUX.

    Includes the "two 2:1 MUXes and an inverter" wiring of Section 2.1's
    category-5 functions: the inner mux output feeds one leg directly and
    the other leg through a programmable polarity buffer, which realizes
    the 3-input XOR/XNOR.
    """
    literals = literal_sources_3in()
    mux_legs = tuple(mux2_implementable_3in())
    plain = _mux_over(mux_legs, literals)
    selects = [t for t in literal_sources_3in() if not t.is_constant()]
    both_legs = set()
    for s in selects:
        for m in mux_legs:
            both_legs.add(TruthTable.mux(s, m, ~m))
            both_legs.add(TruthTable.mux(s, ~m, m))
    return frozenset(plain | both_legs)


@lru_cache(maxsize=None)
def xoandmx_functions() -> FrozenSet[TruthTable]:
    """Config 5 — a 2:1 MUX fed by a 2:1 MUX and an ND3WI gate."""
    mux_legs = tuple(mux2_implementable_3in())
    nd3_legs = tuple(nd3wi_implementable_3in())
    return _mux_over(mux_legs, nd3_legs)


@lru_cache(maxsize=None)
def lut3_functions() -> FrozenSet[TruthTable]:
    """The LUT architecture's catch-all: every 3-input function."""
    return frozenset(all_functions(3))


def granular_configs() -> Tuple[LogicConfig, ...]:
    """The granular PLB's configurations, cheapest-area first.

    Area figures are the component-cell areas; a MUX-slot function may be
    realized by either a MUX2 or the XOA, so the resource entry ``MUX``
    denotes "any mux slot" and the packer resolves it.
    """
    mux_area = make_mux2().area
    xoa_area = make_xoa().area
    nd3_area = make_nd3wi().area
    nd2_area = make_nd2wi().area
    return (
        LogicConfig("ND3", {"ND3WI": 1}, nd3_functions(), nd3_area, 1),
        LogicConfig("MX", {"MUX": 1}, mx_functions(), mux_area, 1),
        LogicConfig("NDMX", {"MUX": 1, "ND3WI": 1}, ndmx_functions(),
                    mux_area + nd2_area, 2),
        LogicConfig("XOAMX", {"MUX": 2}, xoamx_functions(),
                    mux_area + xoa_area, 2),
        LogicConfig("XOANDMX", {"MUX": 2, "ND3WI": 1}, xoandmx_functions(),
                    mux_area + xoa_area + nd3_area, 2),
    )


def lut_arch_configs() -> Tuple[LogicConfig, ...]:
    """The LUT-based PLB's configurations (paper Figure 1 architecture)."""
    nd3_area = make_nd3wi().area
    lut_area = make_lut3().area
    return (
        LogicConfig("ND3", {"ND3WI": 1}, nd3_functions(), nd3_area, 1),
        LogicConfig("LUT3", {"LUT3": 1}, lut3_functions(), lut_area, 1),
    )


def best_config(
    table: TruthTable, configs: Sequence[LogicConfig]
) -> Optional[LogicConfig]:
    """Cheapest-area configuration implementing ``table`` (3 inputs max)."""
    if table.n_inputs > 3:
        return None
    lifted = table.extend(3)
    candidates = [c for c in configs if lifted in c.functions]
    if not candidates:
        return None
    return min(candidates, key=lambda c: (c.area, c.levels, c.name))


@lru_cache(maxsize=None)
def coverage_summary() -> Dict[str, int]:
    """How many of the 256 3-input functions each granular config covers."""
    return {config.name: len(config.functions) for config in granular_configs()}
