"""Analysis of the 256 3-input Boolean functions (paper Section 2.1).

Everything here is computed by exhaustive enumeration — none of the
paper's published counts (14 ND2WI-implementable 2-input functions, 196
S3-feasible 3-input functions, ...) is hard-coded.  The enumerated sets are
the foundation for the S3 analysis (:mod:`repro.core.s3`), the granular
logic configurations (:mod:`repro.core.configs`) and supernode matching in
compaction (:mod:`repro.synth.compaction`).

Conventions
-----------
3-input tables use input order ``(a, b, s)`` = indices ``(0, 1, 2)``; ``s``
(index 2) is the Shannon select variable of the paper's S3 structure.
"Implementable by X" always assumes the VPGA fabric context: every signal
is available in both polarities (the PLB's programmable input buffers) and
constants can be wired by vias.
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Tuple

from ..logic.truthtable import TruthTable

#: Index of the Shannon select input in 3-input tables.
SELECT_INDEX = 2


# ----------------------------------------------------------------------
# 2-input building blocks
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def xor2_tables() -> FrozenSet[TruthTable]:
    """The 2-input XOR and XNOR tables."""
    a, b = TruthTable.inputs(2)
    return frozenset({a ^ b, ~(a ^ b)})


@lru_cache(maxsize=None)
def nd2wi_implementable_2in() -> FrozenSet[TruthTable]:
    """2-input functions one ND2WI gate can produce in the fabric.

    Enumerates ``(x NAND y)`` with free input/output polarity where each
    gate input is wired (by via) to one of ``a``, ``b``, or a constant —
    tying both inputs to the same signal or to constants yields the
    degenerate literal/constant functions.  The paper's count: 14 of the 16
    2-input functions; the two missing ones are XOR and XNOR.
    """
    a, b = TruthTable.inputs(2)
    zero, one = TruthTable.constant(2, False), TruthTable.constant(2, True)
    sources = (a, ~a, b, ~b, zero, one)
    found = set()
    for x in sources:
        for y in sources:
            nand = ~(x & y)
            found.add(nand)
            found.add(~nand)
    return frozenset(found)


@lru_cache(maxsize=None)
def mux2_implementable_2in() -> FrozenSet[TruthTable]:
    """2-input functions one 2:1 MUX can produce in the fabric.

    Select and data pins draw from literals of both polarities and
    constants.  The paper's observation: "a 2:1 MUX can implement all
    2-input functions, including XOR and XNOR" — all 16.
    """
    a, b = TruthTable.inputs(2)
    zero, one = TruthTable.constant(2, False), TruthTable.constant(2, True)
    sources = (a, ~a, b, ~b, zero, one)
    found = set()
    for s in sources:
        for d0 in sources:
            for d1 in sources:
                found.add(TruthTable.mux(s, d0, d1))
    return frozenset(found)


# ----------------------------------------------------------------------
# 3-input source sets (over inputs a, b, c)
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def literal_sources_3in() -> Tuple[TruthTable, ...]:
    """Literals of both polarities plus constants, as 3-input tables."""
    a, b, c = TruthTable.inputs(3)
    return (
        a, ~a, b, ~b, c, ~c,
        TruthTable.constant(3, False), TruthTable.constant(3, True),
    )


@lru_cache(maxsize=None)
def nd2wi_sources_3in() -> FrozenSet[TruthTable]:
    """Every 3-input table an ND2WI can produce over inputs drawn from
    ``{a, b, c}`` (with polarities, constants, and ties)."""
    sources = literal_sources_3in()
    found = set()
    for x in sources:
        for y in sources:
            nand = ~(x & y)
            found.add(nand)
            found.add(~nand)
    return frozenset(found)


@lru_cache(maxsize=None)
def nd3wi_implementable_3in() -> FrozenSet[TruthTable]:
    """3-input tables one ND3WI gate can produce (with ties/constants).

    The non-degenerate core is the 16 polarity variants of NAND3 — the
    "simple logic functions like two and three input AND, NAND, OR, NOR"
    that dominate LUT-mapped designs ([6], [7]).
    """
    sources = literal_sources_3in()
    found = set()
    for x in sources:
        for y in sources:
            for z in sources:
                nand = ~(x & y & z)
                found.add(nand)
                found.add(~nand)
    return frozenset(found)


@lru_cache(maxsize=None)
def mux2_implementable_3in() -> FrozenSet[TruthTable]:
    """3-input tables one 2:1 MUX can produce (the paper's MX config)."""
    sources = literal_sources_3in()
    found = set()
    for s in sources:
        for d0 in sources:
            for d1 in sources:
                found.add(TruthTable.mux(s, d0, d1))
    return frozenset(found)


# ----------------------------------------------------------------------
# Cofactor helpers
# ----------------------------------------------------------------------

def cofactors_about_select(table: TruthTable) -> Tuple[TruthTable, TruthTable]:
    """Shannon cofactors ``(g, h)`` of a 3-input table about the select.

    ``f(a, b, s) = s'*g(a, b) + s*h(a, b)`` — paper Section 2.1.
    """
    if table.n_inputs != 3:
        raise ValueError("cofactors_about_select expects a 3-input table")
    return table.cofactor(SELECT_INDEX, 0), table.cofactor(SELECT_INDEX, 1)


def from_cofactors(g: TruthTable, h: TruthTable) -> TruthTable:
    """Rebuild ``f(a, b, s)`` from its cofactors about the select."""
    if g.n_inputs != 2 or h.n_inputs != 2:
        raise ValueError("cofactors must be 2-input tables")
    s = TruthTable.input_var(3, SELECT_INDEX)
    return TruthTable.mux(s, g.extend(3), h.extend(3))


def is_xor_type(table: TruthTable) -> bool:
    """True for the 2-input XOR or XNOR table."""
    return table in xor2_tables()


# ----------------------------------------------------------------------
# Simple-function statistics (the motivation in [6], [7])
# ----------------------------------------------------------------------

def is_and_type(table: TruthTable) -> bool:
    """True when ``table`` is an AND/NAND/OR/NOR-style product of literals.

    These are the functions the paper's prior work found dominating
    LUT-mapped designs, and exactly what the WI gates implement natively.
    """
    shrunk, _ = table.shrink_to_support()
    if shrunk.n_inputs == 0:
        return False
    n = shrunk.n_inputs
    for flips in range(1 << n):
        candidate = shrunk
        for i in range(n):
            if (flips >> i) & 1:
                candidate = candidate.flip_input(i)
        if candidate.minterm_count() == 1 and candidate(*([1] * n)) == 1:
            return True
        if (~candidate).minterm_count() == 1 and (~candidate)(*([1] * n)) == 1:
            return True
    return False
