"""Splitting the 3-LUT into its component MUXes (paper Figure 5).

A via-patterned 3-LUT is a tree of three 2:1 MUXes whose leaf data inputs
are via-selected from ``{0, 1, A, ~A}``: by Shannon decomposition about
inputs ``B`` and ``C``, every 3-input function's four (B,C)-cofactors are
functions of ``A`` alone, hence one of those four leaves.  The paper's
point is that re-arranging these three MUXes as *individually accessible*
components (rather than a hard-wired tree) yields the granular PLB's
flexibility at no functional cost.

:func:`decompose_lut3` produces the three-mux realization of an arbitrary
3-input function; the test suite verifies equivalence for all 256.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from ..cells.celltypes import make_inv, make_mux2
from ..logic.truthtable import TruthTable
from ..netlist.core import Netlist


class Leaf(Enum):
    """The via-selected leaf data options of the split LUT."""

    ZERO = "0"
    ONE = "1"
    A = "a"
    NOT_A = "~a"

    def table(self) -> TruthTable:
        a = TruthTable.input_var(1, 0)
        return {
            Leaf.ZERO: TruthTable.constant(1, False),
            Leaf.ONE: TruthTable.constant(1, True),
            Leaf.A: a,
            Leaf.NOT_A: ~a,
        }[self]


@dataclass(frozen=True)
class LUTDecomposition:
    """The three-mux form: ``f = MUX(C; MUX(B; d00, d01), MUX(B; d10, d11))``.

    ``leaves[(b, c)]`` is the leaf for cofactor ``f|B=b, C=c``.
    """

    leaves: Tuple[Tuple[Leaf, Leaf], Tuple[Leaf, Leaf]]

    def evaluate(self) -> TruthTable:
        a = TruthTable.input_var(3, 0)
        b = TruthTable.input_var(3, 1)
        c = TruthTable.input_var(3, 2)

        def leaf3(leaf: Leaf) -> TruthTable:
            return {
                Leaf.ZERO: TruthTable.constant(3, False),
                Leaf.ONE: TruthTable.constant(3, True),
                Leaf.A: a,
                Leaf.NOT_A: ~a,
            }[leaf]

        low = TruthTable.mux(b, leaf3(self.leaves[0][0]), leaf3(self.leaves[1][0]))
        high = TruthTable.mux(b, leaf3(self.leaves[0][1]), leaf3(self.leaves[1][1]))
        return TruthTable.mux(c, low, high)


def _classify_cofactor(cofactor: TruthTable) -> Leaf:
    """Map a 1-input cofactor onto its leaf option."""
    a = TruthTable.input_var(1, 0)
    if cofactor == a:
        return Leaf.A
    if cofactor == ~a:
        return Leaf.NOT_A
    if cofactor == TruthTable.constant(1, True):
        return Leaf.ONE
    return Leaf.ZERO


def decompose_lut3(table: TruthTable) -> LUTDecomposition:
    """Shannon-decompose ``table`` about (B, C) into the three-mux form."""
    if table.n_inputs != 3:
        raise ValueError("decompose_lut3 expects a 3-input function")
    leaves = []
    for b_val in (0, 1):
        row = []
        for c_val in (0, 1):
            cofactor = table.cofactor(2, c_val).cofactor(1, b_val)
            row.append(_classify_cofactor(cofactor))
        leaves.append(tuple(row))
    return LUTDecomposition(leaves=(leaves[0], leaves[1]))


def lut3_as_mux_netlist(table: TruthTable) -> Netlist:
    """A netlist of three MUX2 cells (plus polarity inverters for the
    ``~A`` leaves) realizing ``table`` — the physical Figure-5 split."""
    decomp = decompose_lut3(table)
    mux, inv = make_mux2(), make_inv()
    s, d0, d1 = TruthTable.inputs(3)
    mux_fn = TruthTable.mux(s, d0, d1)
    identity = TruthTable.input_var(1, 0)

    net = Netlist(f"lut3_split_{table.mask:02x}")
    a = net.add_input("a")
    b = net.add_input("b")
    c = net.add_input("c")

    a_n = None

    def leaf_net(leaf: Leaf) -> str:
        nonlocal a_n
        if leaf is Leaf.A:
            return a
        if leaf is Leaf.NOT_A:
            if a_n is None:
                a_n = net.add_instance(inv, {"A": a}, config=~identity).output_net
            return a_n
        # Constants are via-wired in silicon; model them as the tied-off
        # AND/OR of `a` through a configured inverter-like buffer pair.
        const = TruthTable.constant(1, leaf is Leaf.ONE)
        from ..netlist.build import _const_cell

        return net.add_instance(_const_cell(leaf is Leaf.ONE), {"A": a}, config=const).output_net

    low = net.add_instance(
        mux,
        {"S": b, "A": leaf_net(decomp.leaves[0][0]), "B": leaf_net(decomp.leaves[1][0])},
        config=mux_fn,
    ).output_net
    high = net.add_instance(
        mux,
        {"S": b, "A": leaf_net(decomp.leaves[0][1]), "B": leaf_net(decomp.leaves[1][1])},
        config=mux_fn,
    ).output_net
    out = net.add_instance(mux, {"S": c, "A": low, "B": high}, config=mux_fn).output_net
    net.add_output(out)
    return net
