"""The S3 structure and its feasibility analysis (paper Section 2.1).

The **S3 gate** is a 2:1 MUX whose data legs are driven by two ND2WI
gates; by Shannon co-factoring, ``f(a,b,s) = s'*g(a,b) + s*h(a,b)``, it
implements every 3-input function whose cofactors ``g`` and ``h`` are both
ND2WI-implementable — 196 of the 256.

The 60 infeasible functions (one or both cofactors XOR/XNOR) fall into the
**five categories of paper Figure 2**:

1. ``g`` ND2WI-implementable, ``h`` in {XOR, XNOR};
2. ``g`` in {XOR, XNOR}, ``h`` ND2WI-implementable;
3. ``g = h = XOR``     — simplifies to a 2-input XOR (one MUX);
4. ``g = h = XNOR``    — simplifies to a 2-input XNOR (one MUX);
5. ``g = complement(h)``, both XOR-type — the 3-input XOR/XNOR
   (two MUXes and an inverter).

The **modified S3 cell** (paper Figure 3) replaces one ND2WI with a 2:1
MUX carrying a programmable output inverter; this covers all 256
functions, verified here by exhaustive enumeration of the configuration
space.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Dict, FrozenSet, Optional, Tuple

from ..logic.truthtable import TruthTable, all_functions
from .functions3 import (
    cofactors_about_select,
    is_xor_type,
    literal_sources_3in,
    mux2_implementable_2in,
    nd2wi_implementable_2in,
)


class S3Category(Enum):
    """The five categories of S3-infeasible functions (paper Figure 2)."""

    ND2WI_COFACTOR_WITH_XOR = 1      #: g implementable, h is XOR/XNOR
    XOR_COFACTOR_WITH_ND2WI = 2      #: g is XOR/XNOR, h implementable
    BOTH_XOR = 3                     #: g = h = XOR  -> 2-input XOR
    BOTH_XNOR = 4                    #: g = h = XNOR -> 2-input XNOR
    COMPLEMENTARY_XOR = 5            #: g = h' (both XOR-type) -> 3-input XOR/XNOR


def s3_feasible(table: TruthTable) -> bool:
    """True when the plain S3 gate implements ``table``.

    Feasibility about the paper's fixed select (input index 2): both
    Shannon cofactors must be ND2WI-implementable.
    """
    if table.n_inputs != 3:
        raise ValueError("S3 analysis is defined on 3-input functions")
    g, h = cofactors_about_select(table)
    feasible = nd2wi_implementable_2in()
    return g in feasible and h in feasible


@lru_cache(maxsize=None)
def s3_feasible_set() -> FrozenSet[TruthTable]:
    """All S3-feasible 3-input functions.  The paper's count: 196."""
    return frozenset(t for t in all_functions(3) if s3_feasible(t))


@lru_cache(maxsize=None)
def s3_infeasible_set() -> FrozenSet[TruthTable]:
    """The complement: 60 functions with an XOR/XNOR cofactor."""
    return frozenset(t for t in all_functions(3) if not s3_feasible(t))


def classify_infeasible(table: TruthTable) -> S3Category:
    """Assign an S3-infeasible function to its Figure-2 category."""
    if s3_feasible(table):
        raise ValueError(f"{table!r} is S3-feasible; no category applies")
    g, h = cofactors_about_select(table)
    g_xor, h_xor = is_xor_type(g), is_xor_type(h)
    if g_xor and h_xor:
        if g == h:
            a, b = TruthTable.inputs(2)
            return S3Category.BOTH_XOR if g == (a ^ b) else S3Category.BOTH_XNOR
        return S3Category.COMPLEMENTARY_XOR
    if h_xor:
        return S3Category.ND2WI_COFACTOR_WITH_XOR
    return S3Category.XOR_COFACTOR_WITH_ND2WI


@lru_cache(maxsize=None)
def infeasible_by_category() -> Dict[S3Category, FrozenSet[TruthTable]]:
    """The Figure-2 partition of the 60 infeasible functions."""
    buckets: Dict[S3Category, set] = {category: set() for category in S3Category}
    for table in s3_infeasible_set():
        buckets[classify_infeasible(table)].add(table)
    return {category: frozenset(members) for category, members in buckets.items()}


def category_counts() -> Dict[S3Category, int]:
    """Function count per Figure-2 category."""
    return {cat: len(members) for cat, members in infeasible_by_category().items()}


# ----------------------------------------------------------------------
# The modified S3 cell (paper Figure 3)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ModifiedS3Config:
    """One via configuration of the modified S3 cell.

    ``select`` is the (3-input) table wired to the output MUX select —
    a literal of either polarity.  ``nd_leg`` is the ND2WI output table; it
    drives data leg 0 unless ``use_inner_for_both`` is set, in which case
    the inner MUX drives both legs (once through the programmable
    inverter) — the two-MUX-plus-inverter trick of category 5.
    ``inner_mux`` is the inner MUX's table and ``invert_inner`` the state
    of its programmable output inverter.
    """

    select: TruthTable
    nd_leg: Optional[TruthTable]
    inner_mux: TruthTable
    invert_inner: bool
    use_inner_for_both: bool = False

    def output(self) -> TruthTable:
        inner = ~self.inner_mux if self.invert_inner else self.inner_mux
        if self.use_inner_for_both:
            d0 = ~inner
        else:
            assert self.nd_leg is not None
            d0 = self.nd_leg
        return TruthTable.mux(self.select, d0, inner)


@lru_cache(maxsize=None)
def modified_s3_implementable() -> FrozenSet[TruthTable]:
    """Every 3-input function the modified S3 cell can realize.

    Enumerates the full configuration space: select from any literal of
    either polarity, ND2WI leg from its implementable set, inner MUX from
    its implementable set, programmable inner inverter on or off, and the
    category-5 both-legs-from-inner wiring.  Paper claim: all 256.
    """
    literal_selects = [t for t in literal_sources_3in() if not t.is_constant()]
    nd_options = _lift_2in(nd2wi_implementable_2in())
    mux_options = _lift_2in(mux2_implementable_2in())
    found = set()
    for select in literal_selects:
        for inner in mux_options:
            for invert_inner in (False, True):
                for nd in nd_options:
                    config = ModifiedS3Config(select, nd, inner, invert_inner)
                    found.add(config.output())
                both = ModifiedS3Config(
                    select, None, inner, invert_inner, use_inner_for_both=True
                )
                found.add(both.output())
    return frozenset(found)


def find_modified_s3_config(table: TruthTable) -> ModifiedS3Config:
    """A concrete modified-S3 configuration realizing ``table``.

    Raises :class:`ValueError` when no configuration exists (never happens
    for 3-input tables — the cell is universal — but kept as a guard).
    """
    if table.n_inputs != 3:
        raise ValueError("modified S3 is defined on 3-input functions")
    literal_selects = [t for t in literal_sources_3in() if not t.is_constant()]
    nd_options = _lift_2in(nd2wi_implementable_2in())
    mux_options = _lift_2in(mux2_implementable_2in())
    for select in literal_selects:
        for inner in mux_options:
            for invert_inner in (False, True):
                both = ModifiedS3Config(
                    select, None, inner, invert_inner, use_inner_for_both=True
                )
                if both.output() == table:
                    return both
                for nd in nd_options:
                    config = ModifiedS3Config(select, nd, inner, invert_inner)
                    if config.output() == table:
                        return config
    raise ValueError(f"no modified-S3 configuration for {table!r}")


@lru_cache(maxsize=None)
def _lift_2in(tables: FrozenSet[TruthTable]) -> Tuple[TruthTable, ...]:
    """Lift 2-input tables over (a, b) to 3-input tables (select unused).

    The S3 data legs see only ``a`` and ``b``; within the cell the select
    variable cannot feed a data leg, so the lift is the plain extension.
    """
    return tuple(sorted((t.extend(3) for t in tables), key=lambda t: t.mask))
