"""PLB architecture models (paper Figures 1 and 4).

A :class:`PLBArchitecture` describes one patternable logic block: its
component-cell slots, which netlist cell instances each slot can host, the
logic configurations it supports, and its layout area.

Area calibration
----------------
The paper publishes two PLB-level ratios rather than absolute areas:

* the granular PLB is about **20% larger** than the LUT-based PLB;
* the granular PLB has **26.6% more combinational logic area**.

Component-cell areas alone (LUT3 + 2xND3WI vs 2xMUX2 + XOA + ND3WI) do not
produce those ratios — the remainder is local-interconnect and programmable
-buffer overhead, which the granular PLB has much more of (both-polarity
input buffers and many more potential via sites; Section 2 notes the cost
of higher granularity is "an increase in the number of configuration vias
and total layout area").  :func:`_solve_overheads` computes the two
overhead terms from the published ratios, so the model's PLB areas satisfy
them *exactly*; the test suite asserts this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Mapping, Tuple

from ..cells.celltypes import (
    CellType,
    make_dff,
    make_lut3,
    make_mux2,
    make_nd3wi,
    make_xoa,
)
from ..cells.library import Library, granular_plb_library, lut_plb_library
from .configs import LogicConfig, granular_configs, lut_arch_configs

#: Published ratio: granular PLB area / LUT PLB area.
PLB_AREA_RATIO = 1.20
#: Published ratio: granular combinational area / LUT combinational area.
COMB_AREA_RATIO = 1.266

#: Per-PLB programmable buffer/inverter slots (polarity generation plus
#: output buffering).  Generous but finite — packing tracks them.
BUFFER_SLOTS = 8


@dataclass(frozen=True, eq=False)
class PLBArchitecture:
    """One patternable-logic-block architecture.

    Parameters
    ----------
    name:
        ``"lut"`` or ``"granular"`` for the paper's two candidates; the
        explorer creates ad-hoc variants.
    slots:
        Component-slot name -> count per PLB.  Slot names are component
        cell names, with ``MUX`` grouping the granular PLB's mux slots
        (two plain MUX2 plus the up-sized XOA).
    slot_compat:
        Netlist cell-type name -> tuple of slot names that can host it,
        in preference order.  E.g. an ``ND2WI`` instance occupies an
        ``ND3WI`` slot (tied pin), or a mux slot in the granular PLB
        ("a 2-input Nand function ... can be mapped into a MUX").
    configs:
        The architecture's logic configurations, for compaction matching.
    comb_overhead / seq_overhead:
        Local-interconnect + buffer area not attributable to a component.
    library:
        The restricted component library for synthesis targeting this PLB.
    """

    name: str
    slots: Mapping[str, int]
    slot_compat: Mapping[str, Tuple[str, ...]]
    configs: Tuple[LogicConfig, ...]
    comb_overhead: float
    seq_overhead: float
    library: Library = field(compare=False, hash=False)
    slot_cells: Mapping[str, CellType] = field(compare=False, hash=False)

    # ------------------------------------------------------------------
    # Areas
    # ------------------------------------------------------------------
    @property
    def combinational_area(self) -> float:
        """Combinational component area + interconnect overhead (um^2)."""
        area = 0.0
        for slot, count in self.slots.items():
            cell = self.slot_cells[slot]
            if not cell.is_sequential:
                area += count * cell.area
        return area + self.comb_overhead

    @property
    def sequential_area(self) -> float:
        area = 0.0
        for slot, count in self.slots.items():
            cell = self.slot_cells[slot]
            if cell.is_sequential:
                area += count * cell.area
        return area + self.seq_overhead

    @property
    def area(self) -> float:
        """Total PLB tile area (um^2)."""
        return self.combinational_area + self.sequential_area

    @property
    def tile_side(self) -> float:
        """Side of the square PLB tile (um)."""
        return self.area ** 0.5

    # ------------------------------------------------------------------
    # Resource queries
    # ------------------------------------------------------------------
    def hosting_slots(self, cell_name: str) -> Tuple[str, ...]:
        """Slots that can host an instance of ``cell_name`` (may be empty)."""
        return self.slot_compat.get(cell_name, ())

    def capacity(self) -> Dict[str, int]:
        """Copy of the per-PLB slot capacities."""
        return dict(self.slots)

    def dff_per_plb(self) -> int:
        return self.slots.get("DFF", 0)

    def comb_slot_count(self) -> int:
        return sum(
            count for slot, count in self.slots.items()
            if not self.slot_cells[slot].is_sequential and slot != "POLBUF"
        )


def _component_cells() -> Dict[str, CellType]:
    """Slot name -> representative component cell."""
    mux = make_mux2()
    return {
        "LUT3": make_lut3(),
        "ND3WI": make_nd3wi(),
        "MUX2": mux,
        "MUX": mux,          # generic mux slot (area of the plain MUX2)
        "XOA": make_xoa(),
        "DFF": make_dff(),
    }


@lru_cache(maxsize=None)
def _solve_overheads() -> Tuple[float, float]:
    """Per-PLB interconnect overheads (lut_comb, granular_comb).

    Solves::

        comb_G = COMB_AREA_RATIO * comb_L
        comb_G + seq = PLB_AREA_RATIO * (comb_L + seq)

    where ``seq`` is the shared DFF area, ``comb_L = raw_L + over_L`` and
    ``comb_G = raw_G + over_G``.  The LUT-side overhead is one free
    parameter; it is pinned at 10% of the LUT PLB's raw component area
    (modest local interconnect), and the equations give the rest.
    """
    lut3, nd3, mux, xoa, dff = (
        make_lut3(), make_nd3wi(), make_mux2(), make_xoa(), make_dff(),
    )
    raw_lut = lut3.area + 2 * nd3.area
    raw_gran = 2 * mux.area + xoa.area + nd3.area
    seq = dff.area

    # comb_L such that the two target ratios are simultaneously exact:
    # COMB_AREA_RATIO*c + seq = PLB_AREA_RATIO*(c + seq)
    comb_l = seq * (PLB_AREA_RATIO - 1.0) / (COMB_AREA_RATIO - PLB_AREA_RATIO)
    comb_g = COMB_AREA_RATIO * comb_l
    over_l = comb_l - raw_lut
    over_g = comb_g - raw_gran
    if over_l < 0 or over_g < 0:
        raise RuntimeError(
            "PLB area calibration failed: raw component areas exceed the "
            "calibrated combinational budget"
        )
    return over_l, over_g


@lru_cache(maxsize=None)
def lut_plb() -> PLBArchitecture:
    """The LUT-based heterogeneous PLB of paper Figure 1.

    One 3-LUT, two ND3WI gates, one DFF, plus programmable buffers.
    """
    over_l, _ = _solve_overheads()
    return PLBArchitecture(
        name="lut",
        slots={"LUT3": 1, "ND3WI": 2, "DFF": 1, "POLBUF": BUFFER_SLOTS},
        slot_compat={
            "LUT3": ("LUT3",),
            "ND3WI": ("ND3WI",),
            "ND2WI": ("ND3WI",),
            "INV": ("POLBUF",),
            "BUF": ("POLBUF",),
            "DFF": ("DFF",),
        },
        configs=lut_arch_configs(),
        comb_overhead=over_l,
        seq_overhead=0.0,
        library=lut_plb_library(),
        slot_cells={**_component_cells(), "POLBUF": _polbuf_cell()},
    )


@lru_cache(maxsize=None)
def granular_plb() -> PLBArchitecture:
    """The granular heterogeneous PLB of paper Figure 4.

    Three 2:1 MUXes (one up-sized XOA), one ND3WI, one DFF, programmable
    buffers; all primary inputs available in both polarities.  A plain
    MUX2 instance may also occupy the XOA slot, and an ND2WI instance may
    occupy any mux slot ("a 2-input Nand function on a non-critical path
    can be mapped into a MUX ... allowing an extra function to be packed"),
    which is the packing flexibility Section 2.3 highlights.
    """
    _, over_g = _solve_overheads()
    return PLBArchitecture(
        name="granular",
        slots={"MUX2": 2, "XOA": 1, "ND3WI": 1, "DFF": 1, "POLBUF": BUFFER_SLOTS},
        slot_compat={
            "MUX2": ("MUX2", "XOA"),
            "XOA": ("XOA",),
            "ND3WI": ("ND3WI",),
            "ND2WI": ("ND3WI", "XOA", "MUX2"),
            "INV": ("POLBUF",),
            "BUF": ("POLBUF",),
            "DFF": ("DFF",),
        },
        configs=granular_configs(),
        comb_overhead=over_g,
        seq_overhead=0.0,
        library=granular_plb_library(),
        slot_cells={**_component_cells(), "POLBUF": _polbuf_cell()},
    )


#: Interconnect-overhead model fitted to the paper's two published PLB
#: ratios: overhead = ALPHA * (comb component count) ** GAMMA, capturing
#: the superlinear cost of configurability ("greater configurability only
#: results in an increase in potential via sites").
OVERHEAD_ALPHA = 0.0977
OVERHEAD_GAMMA = 4.11


def interconnect_overhead(n_comb_components: int) -> float:
    """Fitted local-interconnect overhead for a custom PLB (um^2)."""
    return OVERHEAD_ALPHA * max(0, n_comb_components) ** OVERHEAD_GAMMA


def custom_plb(name: str, components: Mapping[str, int]) -> PLBArchitecture:
    """Build a runnable architecture from an arbitrary component mix.

    ``components`` maps component names (``LUT3``, ``ND3WI``, ``MUX2``,
    ``XOA``, ``DFF``) to per-PLB counts.  The returned architecture has a
    full restricted library (the listed components plus ND2WI, INV, BUF
    and a DFF slot if requested), a generated slot-compatibility table,
    matching logic configurations, and interconnect overhead from the
    model fitted to the paper's two published PLB ratios — so the whole
    Figure-6 flow runs on it.  This realizes the paper's proposed
    future work: application-domain-specific PLB exploration.
    """
    from ..cells.celltypes import make_buf, make_inv, make_nd2wi
    from ..cells.library import Library
    from .configs import granular_configs, lut_arch_configs

    allowed = {"LUT3", "ND3WI", "MUX2", "XOA", "DFF"}
    unknown = set(components) - allowed
    if unknown:
        raise ValueError(f"unknown PLB components: {sorted(unknown)}")
    cells = _component_cells()

    slots: Dict[str, int] = {
        comp: count for comp, count in components.items() if count > 0
    }
    slots["POLBUF"] = BUFFER_SLOTS
    has_mux = slots.get("MUX2", 0) + slots.get("XOA", 0) > 0
    mux_slots = tuple(
        s for s in ("ND3WI", "XOA", "MUX2") if slots.get(s, 0) > 0
    )

    slot_compat: Dict[str, Tuple[str, ...]] = {
        "INV": ("POLBUF",),
        "BUF": ("POLBUF",),
    }
    if "LUT3" in slots:
        slot_compat["LUT3"] = ("LUT3",)
    if "ND3WI" in slots:
        slot_compat["ND3WI"] = ("ND3WI",)
    if "MUX2" in slots or "XOA" in slots:
        mux_hosting = tuple(s for s in ("MUX2", "XOA") if s in slots)
        slot_compat["MUX2"] = mux_hosting
        if "XOA" in slots:
            slot_compat["XOA"] = ("XOA",)
    if mux_slots:
        slot_compat["ND2WI"] = mux_slots
    elif "LUT3" in slots:
        slot_compat["ND2WI"] = ("LUT3",)
    if "DFF" in slots:
        slot_compat["DFF"] = ("DFF",)

    configs = []
    if "ND3WI" in slots:
        configs.extend(c for c in granular_configs() if c.name == "ND3")
    if has_mux:
        configs.extend(
            c for c in granular_configs()
            if c.name in ("MX", "NDMX", "XOAMX", "XOANDMX")
            and ("ND3WI" in slots or "ND" not in c.name)
        )
    if "LUT3" in slots:
        configs.extend(c for c in lut_arch_configs() if c.name == "LUT3")

    library_cells = [make_nd2wi(), make_inv(), make_buf()]
    for comp in ("LUT3", "ND3WI", "MUX2", "XOA", "DFF"):
        if comp in slots:
            library_cells.append(cells[comp])
    if "DFF" not in slots:
        library_cells.append(cells["DFF"])  # flows need a register cell
    library = Library(f"custom_{name}", library_cells)

    n_comb = sum(
        count for comp, count in slots.items()
        if comp in ("LUT3", "ND3WI", "MUX2", "XOA")
    )
    return PLBArchitecture(
        name=name,
        slots=slots,
        slot_compat=slot_compat,
        configs=tuple(configs),
        comb_overhead=interconnect_overhead(n_comb),
        seq_overhead=0.0,
        library=library,
        slot_cells={**cells, "POLBUF": _polbuf_cell()},
    )


@lru_cache(maxsize=None)
def _polbuf_cell() -> CellType:
    """The programmable polarity/output buffer slot.

    Its area is folded into the PLB overhead terms, so the slot itself is
    free; it exists so INV/BUF instances have somewhere to live.
    """
    from ..logic.truthtable import TruthTable

    return CellType(
        name="POLBUF",
        pins=("A",),
        feasible=frozenset({TruthTable.input_var(1, 0), ~TruthTable.input_var(1, 0)}),
        area=0.0,
        input_caps={"A": 1.0},
        logical_effort=1.0,
        parasitic=1.5,
    )
