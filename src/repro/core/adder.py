"""Full-adder implementation on each PLB architecture (paper Section 2.2).

The granular PLB packs a full adder into a **single PLB**:

* the XOA mux computes the propagate ``P = A xor B``;
* a second mux computes ``Sum = P xor Cin``;
* the third mux computes ``Cout = P ? Cin : G`` with the generate
  ``G = A and B`` coming from the ND3WI gate.

The LUT-based PLB cannot: Sum is a 3-input XOR (LUT-only there) and Cout is
the majority function, which is not ND3WI-implementable, so a full adder
needs the LUTs of **two** PLBs.  Both constructions below are real netlists
checked for correctness by simulation in the tests, and the PLB counts are
confirmed end-to-end by the packer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..cells.celltypes import make_inv, make_lut3, make_mux2, make_nd3wi, make_xoa
from ..logic.truthtable import TruthTable
from ..netlist.core import Netlist
from .configs import granular_configs
from .functions3 import nd3wi_implementable_3in


@dataclass(frozen=True)
class AdderFunctions:
    """The full adder's constituent functions over inputs (A, B, Cin)."""

    sum_table: TruthTable
    carry_table: TruthTable
    propagate: TruthTable
    generate: TruthTable

    @staticmethod
    def build() -> "AdderFunctions":
        a, b, cin = TruthTable.inputs(3)
        return AdderFunctions(
            sum_table=a ^ b ^ cin,
            carry_table=(a & b) | (cin & (a ^ b)),
            propagate=a ^ b,
            generate=a & b,
        )


def carry_is_majority() -> bool:
    """The carry equals the majority function (sanity anchor)."""
    a, b, cin = TruthTable.inputs(3)
    funcs = AdderFunctions.build()
    return funcs.carry_table == ((a & b) | (b & cin) | (a & cin))


def carry_nd3wi_feasible() -> bool:
    """Whether a single ND3WI can implement the carry (it cannot)."""
    return AdderFunctions.build().carry_table in nd3wi_implementable_3in()


def granular_full_adder() -> Netlist:
    """Full adder as granular-PLB component cells: 3 muxes + 1 ND3WI.

    Mirrors the paper's construction exactly; the four combinational cells
    fit the granular PLB's 2xMUX2 + 1xXOA + 1xND3WI slots, so the packer
    places the whole adder in one PLB.
    """
    mux, xoa, nd3, inv = make_mux2(), make_xoa(), make_nd3wi(), make_inv()
    s, d0, d1 = TruthTable.inputs(3)
    mux_fn = TruthTable.mux(s, d0, d1)

    net = Netlist("full_adder_granular")
    a = net.add_input("a")
    b = net.add_input("b")
    cin = net.add_input("cin")

    # ~B for the XOA's XOR configuration (a polarity buffer in the PLB).
    b_n = net.add_instance(inv, {"A": b}, config=~TruthTable.input_var(1, 0)).output_net
    # P = A ? ~B : B  =  A xor B   (the XOA used as an XOR)
    p = net.add_instance(xoa, {"S": a, "A": b, "B": b_n}, config=mux_fn).output_net
    # ~Cin for the sum mux.
    cin_n = net.add_instance(
        inv, {"A": cin}, config=~TruthTable.input_var(1, 0)
    ).output_net
    # Sum = P ? ~Cin : Cin  =  P xor Cin
    total = net.add_instance(
        mux, {"S": p, "A": cin, "B": cin_n}, config=mux_fn
    ).output_net
    # G = A and B  (the ND3WI with a tied pin, configured as AND)
    and3 = TruthTable.input_var(3, 0) & TruthTable.input_var(3, 1) & TruthTable.input_var(3, 2)
    g = net.add_instance(nd3, {"A": a, "B": a, "C": b}, config=and3).output_net
    # Cout = P ? Cin : G
    cout = net.add_instance(mux, {"S": p, "A": g, "B": cin}, config=mux_fn).output_net

    net.add_output(total)
    net.add_output(cout)
    return net


def lut_full_adder() -> Netlist:
    """Full adder on the LUT architecture: two 3-LUTs (hence two PLBs)."""
    lut = make_lut3()
    funcs = AdderFunctions.build()

    net = Netlist("full_adder_lut")
    a = net.add_input("a")
    b = net.add_input("b")
    cin = net.add_input("cin")

    total = net.add_instance(
        lut, {"A": a, "B": b, "C": cin}, config=funcs.sum_table
    ).output_net
    cout = net.add_instance(
        lut, {"A": a, "B": b, "C": cin}, config=funcs.carry_table
    ).output_net

    net.add_output(total)
    net.add_output(cout)
    return net


def granular_configs_for_adder() -> Tuple[str, str]:
    """Which granular configs realize the sum and carry (paper's XOAMX)."""
    funcs = AdderFunctions.build()
    sum_config = carry_config = ""
    for config in granular_configs():
        if not sum_config and funcs.sum_table in config.functions:
            sum_config = config.name
        if not carry_config and funcs.carry_table in config.functions:
            carry_config = config.name
    return sum_config, carry_config
