"""Timing substrate: wire models and static timing analysis."""

from .sta import (
    DEFAULT_CLOCK_PERIOD_NS,
    TOP_PATHS,
    PathPoint,
    TimingPath,
    TimingReport,
    analyze,
)
from .wires import (
    VIA_RES,
    WIRE_CAP_PER_UM,
    WIRE_RES_PER_UM,
    WireModel,
    hpwl,
    wire_model_from_placement,
    zero_wire_model,
)

__all__ = [
    "DEFAULT_CLOCK_PERIOD_NS",
    "TOP_PATHS",
    "PathPoint",
    "TimingPath",
    "TimingReport",
    "analyze",
    "VIA_RES",
    "WIRE_CAP_PER_UM",
    "WIRE_RES_PER_UM",
    "WireModel",
    "hpwl",
    "wire_model_from_placement",
    "zero_wire_model",
]
