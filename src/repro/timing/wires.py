"""Wire parasitics and delay models.

Two estimation modes mirror the flow stages:

* **pre-route**: net capacitance and delay from placement half-perimeter
  wirelength (what physical synthesis optimizes against);
* **post-route**: from extracted, routed wirelength (the paper's
  "post-layout extraction" feeding final STA).

Units: distance um, capacitance in normalized unit-inverter loads,
delay ns.  Constants are calibrated to a 0.18um-class metal stack: a
100 um net is almost free, a 1000 um net costs ~0.2 ns — the regime in
which placement quality shows up in cycle time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Tuple

#: Wire capacitance per um, in unit loads.
WIRE_CAP_PER_UM = 0.05
#: Wire resistance coefficient: ns of Elmore delay per um per unit load.
WIRE_RES_PER_UM = 2.0e-5
#: Via resistance penalty per routed bend/via, ns per unit load.
VIA_RES = 1.0e-4


@dataclass(frozen=True)
class WireModel:
    """RC wire model used by STA.

    ``length_of`` maps net name -> routed/estimated length (um);
    ``via_count_of`` optionally adds per-net via counts (post-route).
    """

    lengths: Mapping[str, float]
    via_counts: Optional[Mapping[str, int]] = None

    def length(self, net: str) -> float:
        return self.lengths.get(net, 0.0)

    def capacitance(self, net: str) -> float:
        """Wire load added to the driver, unit loads."""
        return WIRE_CAP_PER_UM * self.length(net)

    def delay(self, net: str, sink_load: float) -> float:
        """Elmore wire delay to a sink carrying ``sink_load`` (ns)."""
        length = self.length(net)
        resistance = WIRE_RES_PER_UM * length
        if self.via_counts is not None:
            resistance += VIA_RES * self.via_counts.get(net, 0)
        wire_cap = self.capacitance(net)
        return resistance * (wire_cap / 2.0 + sink_load)


def zero_wire_model() -> WireModel:
    """No wire parasitics (pure-logic STA, used by unit tests)."""
    return WireModel(lengths={})


def hpwl(points: Iterable[Tuple[float, float]]) -> float:
    """Half-perimeter wirelength of a point set (um)."""
    xs, ys = [], []
    for x, y in points:
        xs.append(x)
        ys.append(y)
    if not xs:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def wire_model_from_placement(
    net_pins: Mapping[str, Iterable[Tuple[float, float]]],
) -> WireModel:
    """Pre-route model: net length = HPWL of its pin locations."""
    return WireModel(
        lengths={net: hpwl(points) for net, points in net_pins.items()}
    )
