"""Static timing analysis.

Single-clock STA over a mapped netlist: arrival times propagate from
primary inputs (time 0) and DFF outputs (clock-to-Q) through the
characterized cell delays plus Elmore wire delays; required times
propagate back from primary outputs (the clock period) and DFF data pins
(period minus setup).  Endpoint slacks and the paper's reporting metric —
the average slack over the top-N critical paths — come out of one pass.

The paper: "The cycle time for all the designs is .5 ns.  We compare the
average slack over the top 10 critical paths in the design."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cells.celltypes import DFF_CLK_TO_Q_NS, DFF_SETUP_NS
from ..cells.characterize import TimingLibrary
from ..netlist.core import Instance, Netlist
from .wires import WireModel, zero_wire_model

#: The paper's cycle-time target (ns).
DEFAULT_CLOCK_PERIOD_NS = 0.5

#: Default number of critical paths in the slack report (paper: 10).
TOP_PATHS = 10


@dataclass(frozen=True)
class PathPoint:
    """One hop of a reported critical path."""

    instance: str
    cell: str
    net: str
    arrival: float


@dataclass(frozen=True)
class TimingPath:
    """A reported endpoint with its worst path."""

    endpoint: str          # net at the endpoint (PO net or DFF D net)
    endpoint_kind: str     # "output" | "register"
    arrival: float
    required: float
    points: Tuple[PathPoint, ...]

    @property
    def slack(self) -> float:
        return self.required - self.arrival


@dataclass
class TimingReport:
    """Full STA result."""

    period: float
    arrival: Dict[str, float]
    endpoint_slack: Dict[str, float]
    paths: List[TimingPath] = field(default_factory=list)

    @property
    def worst_slack(self) -> float:
        if not self.endpoint_slack:
            return self.period
        return min(self.endpoint_slack.values())

    @property
    def critical_path_delay(self) -> float:
        if not self.arrival:
            return 0.0
        return max(self.arrival.values())

    def average_slack(self, top_n: int = TOP_PATHS) -> float:
        """Mean slack over the ``top_n`` most critical endpoints."""
        if not self.endpoint_slack:
            return self.period
        worst = sorted(self.endpoint_slack.values())[:top_n]
        return sum(worst) / len(worst)


def _net_load(
    netlist: Netlist, timing: TimingLibrary, wires: WireModel, net: str
) -> float:
    load = wires.capacitance(net)
    for sink_name, pin in netlist.nets[net].sinks:
        sink = netlist.instances[sink_name]
        if sink.cell.name in timing.library:
            load += timing.pin_cap(sink.cell.name, pin)
        else:
            load += max(sink.cell.input_caps.values())
    return load


def analyze(
    netlist: Netlist,
    timing: TimingLibrary,
    wires: Optional[WireModel] = None,
    period: float = DEFAULT_CLOCK_PERIOD_NS,
    top_n: int = TOP_PATHS,
) -> TimingReport:
    """Run STA; returns arrivals, endpoint slacks and top-N paths."""
    wires = wires if wires is not None else zero_wire_model()

    arrival: Dict[str, float] = {}
    worst_fanin: Dict[str, Tuple[Optional[str], str]] = {}

    for name in netlist.inputs:
        arrival[name] = 0.0
        worst_fanin[name] = (None, name)
    for dff in netlist.sequential_instances():
        arrival[dff.output_net] = DFF_CLK_TO_Q_NS
        worst_fanin[dff.output_net] = (dff.name, dff.output_net)

    for inst in netlist.topological_order():
        out_net = inst.output_net
        load = _net_load(netlist, timing, wires, out_net)
        if inst.cell.name in timing.library:
            gate_delay = timing.delay(inst.cell.name, load)
        else:
            gate_delay = inst.cell.delay(load)
        best_arrival = 0.0
        best_net = None
        for in_net in inst.input_nets():
            pin_cap = (
                timing.pin_cap(inst.cell.name, _pin_of(inst, in_net))
                if inst.cell.name in timing.library
                else max(inst.cell.input_caps.values())
            )
            at_pin = arrival[in_net] + wires.delay(in_net, pin_cap)
            if best_net is None or at_pin > best_arrival:
                best_arrival = at_pin
                best_net = in_net
        arrival[out_net] = best_arrival + gate_delay
        worst_fanin[out_net] = (inst.name, best_net if best_net is not None else out_net)

    # Endpoints.
    endpoint_slack: Dict[str, float] = {}
    endpoint_kind: Dict[str, str] = {}
    for out in netlist.outputs:
        at = arrival[out] + wires.delay(out, 1.0)
        endpoint_slack[out] = period - at
        endpoint_kind[out] = "output"
    for dff in netlist.sequential_instances():
        d_net = dff.pin_nets["D"]
        pin_cap = dff.cell.input_caps["D"]
        at = arrival[d_net] + wires.delay(d_net, pin_cap)
        key = f"{dff.name}/D"
        endpoint_slack[key] = period - DFF_SETUP_NS - at
        endpoint_kind[key] = "register"

    # Top-N paths by slack.
    ranked = sorted(endpoint_slack.items(), key=lambda item: item[1])[:top_n]
    paths: List[TimingPath] = []
    for endpoint, slack in ranked:
        if endpoint_kind[endpoint] == "register":
            dff_name = endpoint.rsplit("/", 1)[0]
            net = netlist.instances[dff_name].pin_nets["D"]
        else:
            net = endpoint
        points = _trace_path(netlist, arrival, worst_fanin, net)
        paths.append(
            TimingPath(
                endpoint=endpoint,
                endpoint_kind=endpoint_kind[endpoint],
                arrival=period - slack - (DFF_SETUP_NS if endpoint_kind[endpoint] == "register" else 0.0),
                required=period - (DFF_SETUP_NS if endpoint_kind[endpoint] == "register" else 0.0),
                points=tuple(points),
            )
        )

    return TimingReport(
        period=period,
        arrival=arrival,
        endpoint_slack=endpoint_slack,
        paths=paths,
    )


def _pin_of(inst: Instance, net: str) -> str:
    for pin in inst.cell.pins:
        if inst.pin_nets[pin] == net:
            return pin
    raise KeyError(f"{inst.name}: no input pin on net {net!r}")


def _trace_path(
    netlist: Netlist,
    arrival: Dict[str, float],
    worst_fanin: Dict[str, Tuple[Optional[str], str]],
    net: str,
) -> List[PathPoint]:
    points: List[PathPoint] = []
    current = net
    guard = 0
    while guard < 10_000:
        guard += 1
        inst_name, prev_net = worst_fanin.get(current, (None, current))
        points.append(
            PathPoint(
                instance=inst_name or "<port>",
                cell=(
                    netlist.instances[inst_name].cell.name
                    if inst_name is not None and inst_name in netlist.instances
                    else "PI"
                ),
                net=current,
                arrival=arrival.get(current, 0.0),
            )
        )
        if inst_name is None or prev_net == current:
            break
        current = prev_net
    points.reverse()
    return points
